"""``python -m repro.serve`` — run the network front door.

Loads (or generates) documents into an :class:`~repro.core.dbms.XmlDbms`
and serves them over TCP with :class:`~repro.net.server.NetworkServer`::

    # a throwaway database with a synthetic DBLP document
    python -m repro.serve --generate dblp=dblp:200 --port 7878

    # an existing database file, loading documents from XML files
    python -m repro.serve --db library.db --load dblp=dblp.xml \\
        --workers 8 --max-pending 128 --time-limit 5

On success one line is printed to stdout before serving::

    LISTENING <host> <port>

which spawners (the integration tests, ``benchmarks/bench_server.py``)
wait for; with ``--port 0`` the kernel-assigned port is what they parse.
Structured observability lines go to stderr via the ``repro.net``
logger every ``--log-interval`` seconds.  SIGINT/SIGTERM shut down
cleanly: connections drop, the worker pool drains, the database closes.
"""

from __future__ import annotations

import argparse
import logging
import signal
import sys
import tempfile
import threading
from pathlib import Path

from repro.core.dbms import XmlDbms
from repro.net.server import NetworkServer
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.treebank import TreebankConfig, generate_treebank


def _parse_spec(spec: str, flag: str) -> tuple[str, str]:
    name, sep, rest = spec.partition("=")
    if not sep or not name or not rest:
        raise SystemExit(f"{flag} expects NAME=VALUE, got {spec!r}")
    return name, rest


def _generate(spec: str) -> str:
    """``dblp:articles[:inproceedings[:name_pool]]`` or
    ``treebank:sentences`` → document XML text."""
    kind, *params = spec.split(":")
    try:
        numbers = [int(value) for value in params]
        if kind == "dblp":
            articles = numbers[0] if numbers else 100
            config = DblpConfig(
                articles=articles,
                inproceedings=(numbers[1] if len(numbers) > 1
                               else max(1, articles * 3 // 10)),
                name_pool=numbers[2] if len(numbers) > 2 else 40)
            return generate_dblp(config)
        if kind == "treebank":
            return generate_treebank(TreebankConfig(
                sentences=numbers[0] if numbers else 50))
    except (ValueError, IndexError):
        pass
    raise SystemExit(f"--generate expects NAME=dblp:N[:M[:P]] or "
                     f"NAME=treebank:N, got generator {spec!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve an XML database over the wire protocol.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="0 picks a free port (printed on stdout)")
    parser.add_argument("--db", default=None,
                        help="database file (default: a temp file)")
    parser.add_argument("--load", action="append", default=[],
                        metavar="NAME=XMLPATH",
                        help="load a document from an XML file "
                             "(repeatable)")
    parser.add_argument("--generate", action="append", default=[],
                        metavar="NAME=KIND:N",
                        help="load a synthetic document, e.g. "
                             "dblp=dblp:200 or tb=treebank:50 "
                             "(repeatable)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--max-pending", type=int, default=64,
                        help="admission-control queue depth")
    parser.add_argument("--profile", default="m4")
    parser.add_argument("--time-limit", type=float, default=30.0,
                        help="per-query deadline in seconds, counted "
                             "from submission (0 = unlimited)")
    parser.add_argument("--memory-budget", type=int, default=None,
                        help="per-query memory budget in bytes")
    parser.add_argument("--page-size", type=int, default=64,
                        help="default rows per streamed cursor page")
    parser.add_argument("--log-interval", type=float, default=30.0,
                        help="seconds between structured stats log "
                             "lines (0 disables)")
    parser.add_argument("--buffer-capacity", type=int, default=1024,
                        help="buffer-pool frames for the database")
    parser.add_argument("--shard-id", type=int, default=None,
                        help="serve as member N of a sharded cluster; "
                             "echoed in HELLO_OK so the mediator can "
                             "verify it dialed the right process")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="log a structured line (with the span "
                             "tree, if traced) for every query slower "
                             "than this many milliseconds")
    args = parser.parse_args(argv)

    logging.basicConfig(
        stream=sys.stderr, level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")

    db_path = args.db or str(
        Path(tempfile.mkdtemp(prefix="repro-serve-")) / "serve.db")
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *__: stop.set())

    with XmlDbms(db_path, buffer_capacity=args.buffer_capacity) as dbms:
        for spec in args.load:
            name, path = _parse_spec(spec, "--load")
            dbms.load(name, path=path)
        for spec in args.generate:
            name, generator = _parse_spec(spec, "--generate")
            dbms.load(name, xml=_generate(generator))
        server = NetworkServer(
            dbms, host=args.host, port=args.port,
            workers=args.workers, max_pending=args.max_pending,
            profile=args.profile,
            time_limit=args.time_limit or None,
            memory_budget=args.memory_budget,
            page_size=args.page_size,
            log_interval=args.log_interval,
            shard_id=args.shard_id,
            slow_query_seconds=(None if args.slow_query_ms is None
                                else args.slow_query_ms / 1e3))
        host, port = server.start()
        print(f"LISTENING {host} {port}", flush=True)
        try:
            stop.wait()
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
