"""The :class:`XmlDbms` facade — the system the course set out to build.

One instance owns one database file and exposes the full lifecycle:

* :meth:`load` — shred an XML document into XASR relations with indexes
  and statistics (milestone 2); reloading an existing name replaces the
  document and invalidates every cached engine and plan for it;
* :meth:`session` — the primary client API: prepared queries, external
  variables, streaming cursors, and a per-session plan cache
  (see :mod:`repro.core.session`);
* :meth:`query` / :meth:`execute` — one-shot evaluation under any engine
  profile (milestones 1–4), kept as thin wrappers over a default session;
* :meth:`explain` — the TPM translation and the chosen physical plans;
* :meth:`statistics` / :meth:`documents` — introspection.

The paper scoped updates out ("keep updates as simple as possible and
completely disregard concurrency control and recovery"); this system
scopes them back in: :meth:`update` runs an XQuery Update subset
(``insert node``, ``delete node``, ``replace value of node``, ``rename
node``) atomically and durably — every update commits through the
write-ahead log (:mod:`repro.storage.wal`), so a crash mid-commit never
loses an acknowledged update or corrupts a page.  Concurrency is
likewise scoped back in by the serving layer: one ``XmlDbms`` may be
shared by any number of threads.  The engine cache, catalog versions and
default session are guarded by a dbms-level lock, the storage layer
latches pages and trees (see :mod:`repro.storage.latch`), and
:meth:`load` replacing a document is well-defined against concurrent
readers — executions already running (and open cursors) finish on the
*old* snapshot, whose pages are never reclaimed, while sessions touching
the document afterwards see the new version (a dropped document raises
:class:`~repro.errors.CatalogError`).  For a bounded worker pool with
admission control on top, see :class:`repro.core.server.QueryServer`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from collections.abc import Iterator

from repro.core.session import ExecutionOptions, Session
from repro.engine.engine import XQEngine
from repro.physical.context import DEFAULT_BATCH_SIZE
from repro.engine.profiles import ENGINE_PROFILES, EngineProfile
from repro.errors import CatalogError, UpdateError
from repro.storage.db import Database
from repro.storage.latch import SharedLatch
from repro.storage.pager import PAGE_SIZE
from repro.updates import UpdateResult, apply_pul, collect_pul
from repro.xasr import schema
from repro.xasr.document import StoredDocument
from repro.xasr.loader import (
    DocumentStatistics,
    build_value_index,
    load_document,
)
from repro.xmlkit.dom import Node
from repro.xmlkit.tokenizer import iterparse, iterparse_file
from repro.xq.ast import Program, Query, UpdateExpr
from repro.xq.parser import parse_program

__all__ = ["XmlDbms", "ExecutionOptions", "Session", "PROFILES",
           "UpdateResult"]


class XmlDbms:
    """A single-file native XML database."""

    def __init__(self, path: str, buffer_capacity: int = 256,
                 page_size: int = PAGE_SIZE):
        self.db = Database(path, buffer_capacity=buffer_capacity,
                           page_size=page_size)
        #: Engine cache keyed ``(document, profile, catalog version)``:
        #: a snapshot reader holding an older catalog version gets (or
        #: rebuilds) the engine of *its* generation, while new readers
        #: get the current one — two generations coexist during an
        #: update's drain window.  Old generations are pruned once the
        #: version moves on (rebuilding one for a long-lived snapshot is
        #: correct: construction reads the catalog through the bound
        #: snapshot).
        self._engines: dict[tuple[str, str, int], XQEngine] = {}
        #: Monotonic per-document catalog versions; bumped by load/drop so
        #: session plan caches invalidate without explicit wiring.
        self._versions: dict[str, int] = {}
        self._default_session: Session | None = None
        #: Guards catalog mutation (load/drop) and the version counters.
        #: Held across a whole load/drop, so readers either see the old
        #: document (their engines keep the old pages alive) or the new
        #: one — never a half-replaced catalog.
        self._lock = threading.RLock()
        #: Short-held lock for the engine cache and default session —
        #: deliberately separate from ``_lock`` so query setup on *any*
        #: document never stalls behind an in-progress multi-second
        #: ``load()``.  Lock order: ``_lock`` → ``_engine_lock`` (from
        #: ``_invalidate``); nothing acquires them the other way.
        self._engine_lock = threading.Lock()
        #: Per-document shared/exclusive latches.  Since MVCC snapshot
        #: reads landed, ``update()`` no longer takes the exclusive side
        #: — served readers run against a pinned snapshot and never
        #: block on (or are blocked by) a concurrent update.  The
        #: exclusive side remains the quiesce mechanism for operations
        #: that rewrite storage *outside* the version store:
        #: ``create_index``/``drop_index`` (bulk builds bypass the WAL)
        #: still drain readers through it, and every served read holds
        #: the shared side for exactly that reason.
        self._doc_latches: dict[str, SharedLatch] = {}
        #: The calling thread's active :class:`ReadTicket`, if any —
        #: bound by :meth:`read_ticket`, consulted by
        #: :meth:`catalog_version` and :meth:`engine` so plan-cache
        #: lookups and engine construction agree with the pinned
        #: snapshot instead of racing a concurrent commit's bump.
        self._tickets = threading.local()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "XmlDbms":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- documents -------------------------------------------------------------

    def load(self, name: str, xml: str | None = None,
             path: str | None = None,
             strip_whitespace: bool = True,
             bulk: bool = True) -> DocumentStatistics:
        """Load a document from text or a file; returns its statistics.

        Loading over an already-loaded ``name`` *replaces* the document:
        the old relations, indexes and statistics are dropped, and every
        cached engine (including any milestone-1 DOM) and cached plan for
        the name is invalidated.  The new input is fully validated
        *before* the old document is touched, so a malformed replacement
        leaves the existing document intact.
        """
        # Validate a *replacement* before taking the dbms lock: parsing
        # the input can dwarf the load itself, and nothing it does needs
        # the lock.  The existence check is repeated under the lock — if
        # the document appeared (or vanished) meanwhile, the rare race
        # just validates again inside.
        validated = False
        if self.db.exists(schema.table_name(name)):
            self._validate_source(xml, path)
            validated = True
        with self._lock:
            # Bulk loads bypass the WAL; dropping the log first means no
            # stale record can ever replay over the load's raw writes,
            # and the closing checkpoint makes the load itself durable.
            self.db.checkpoint()
            if self.db.exists(schema.table_name(name)):
                if not validated:
                    self._validate_source(xml, path)
                self.drop(name)
            stats = load_document(self.db, name, xml=xml, path=path,
                                  strip_whitespace=strip_whitespace,
                                  bulk=bulk)
            self.db.checkpoint()
            self._invalidate(name)
            return stats

    @staticmethod
    def _validate_source(xml: str | None, path: str | None) -> None:
        """Fully parse a replacement input before the old document is
        touched, so a malformed replacement leaves it intact."""
        sources = [source for source in (xml, path)
                   if source is not None]
        if len(sources) != 1:
            raise ValueError("pass exactly one of xml=, path=")
        for __ in (iterparse(xml) if xml is not None
                   else iterparse_file(path)):
            pass

    def documents(self) -> list[str]:
        """Names of loaded documents."""
        prefix = "xasr:"
        suffix = ":primary"
        names = []
        for entry in self.db.list_names():
            if entry.startswith(prefix) and entry.endswith(suffix):
                names.append(entry[len(prefix):-len(suffix)])
        return names

    def drop(self, name: str) -> None:
        """Remove a document (and its value indexes) from the catalog."""
        with self._lock:
            if not self.db.exists(schema.table_name(name)):
                raise CatalogError(f"document {name!r} is not loaded")
            self.db.checkpoint()
            object_names = [schema.table_name(name),
                            schema.index_label_name(name),
                            schema.index_parent_name(name),
                            schema.stats_name(name)]
            catalog = self.db.get_meta(
                schema.value_index_catalog_name(name))
            if catalog is not None:
                object_names.append(schema.value_index_catalog_name(name))
                object_names.extend(
                    schema.value_index_name(name, label)
                    for label in catalog.get("labels", []))
            for object_name in object_names:
                if self.db.exists(object_name):
                    self.db.drop(object_name)
            self.db.checkpoint()
            self._invalidate(name)

    def _invalidate(self, name: str) -> None:
        """Forget cached engines for ``name`` and bump its version."""
        with self._lock:
            with self._engine_lock:
                self._engines = {key: engine
                                 for key, engine in self._engines.items()
                                 if key[0] != name}
            self._versions[name] = self._versions.get(name, 0) + 1

    def catalog_version(self, name: str) -> int:
        """Version counter for a document; changes on every load, drop
        and update.

        Deliberately lock-free: this sits on every execution's hot path
        (the prepared-query staleness check), and a single ``dict.get``
        is atomic under the GIL — readers must not stall behind an
        in-progress multi-second ``load()`` of some other document.

        A thread inside :meth:`read_ticket` gets the version observed
        atomically with its snapshot pin, not the live counter: its plan
        cache hits, prepared-query staleness checks and engine lookups
        all resolve against the generation its snapshot actually sees.
        """
        ticket = getattr(self._tickets, "current", None)
        if ticket is not None and ticket.document == name:
            return ticket.catalog_version
        return self._versions.get(name, 0)

    # -- snapshot read tickets -------------------------------------------------

    @contextmanager
    def read_ticket(self, document: str) -> Iterator["ReadTicket"]:
        """Admit a read against a stable snapshot of ``document``.

        For the ``with`` block, the calling thread holds the document
        latch *shared* (so index builds can still quiesce readers), a
        pinned buffer-pool snapshot (every page read resolves against
        the version store at the pinned commit LSN — concurrent updates
        neither block this reader nor bleed into it), and the catalog
        version observed atomically with the pin.  Tickets do not nest.
        """
        with self.document_latch(document).shared():
            pool = self.db.buffer_pool
            snapshot, version = pool.pin_snapshot(
                observe=lambda: self._versions.get(document, 0))
            try:
                with pool.reading(snapshot):
                    ticket = ReadTicket(document, snapshot, version)
                    previous = getattr(self._tickets, "current", None)
                    if previous is not None:
                        raise UpdateError(
                            "read tickets do not nest: thread already "
                            f"holds one for {previous.document!r}")
                    self._tickets.current = ticket
                    try:
                        yield ticket
                    finally:
                        self._tickets.current = None
            finally:
                pool.release_snapshot(snapshot)

    # -- updates --------------------------------------------------------------

    def document_latch(self, name: str) -> SharedLatch:
        """The document's reader/updater latch (see ``_doc_latches``)."""
        with self._engine_lock:
            return self._doc_latches.setdefault(name, SharedLatch())

    def update(self, document: str, statement: str | Program | UpdateExpr,
               bindings: dict[str, object] | None = None) -> UpdateResult:
        """Run an updating statement against a stored document.

        ``statement`` is XQuery Update text (``insert node``, ``delete
        node``, ``replace value of node``, ``rename node``), a parsed
        updating :class:`~repro.xq.ast.Program`, or a bare
        :class:`~repro.xq.ast.UpdateExpr`.  Target paths evaluate
        against the pre-update snapshot; the resulting pending update
        list is validated and applied atomically inside a WAL
        transaction, with the label/parent indexes and the document
        statistics maintained incrementally.  On success the document's
        catalog version is bumped, so every cached plan and engine for
        it invalidates; the returned
        :class:`~repro.updates.UpdateResult` carries per-kind node
        counts and the new version.

        Updates never block served readers: queries running through a
        :class:`~repro.core.server.QueryServer` read a pinned snapshot
        (see :meth:`read_ticket`), so the old exclusive document latch
        is gone from this path.  Updates still serialize with each other
        (and with load/drop) under the dbms lock, but the commit's
        fsync is awaited *outside* every lock — concurrent updaters
        pipeline into the WAL's group committer and share fsyncs.
        """
        program = self._parse_update(statement)
        self._check_update_bindings(program, bindings)
        with self._lock:
            stored = StoredDocument(self.db, document)
            pul = collect_pul(stored, program.body,
                              bindings=bindings).validated()
            try:
                with self.db.transaction(wait=False) as txn:
                    counts = apply_pul(self.db, stored, pul)
                    self.db.put_meta(
                        schema.stats_name(document),
                        stored.statistics.to_payload())
                    # The version bump runs inside publish's critical
                    # section, atomically with the commit-LSN
                    # assignment: a snapshot pinned at LSN < ours
                    # observes the old version, one at >= ours the new —
                    # never a torn pairing.
                    txn.on_publish(
                        lambda: self._bump_version_unlocked(document))
            except BaseException:
                # The transaction rolled back; cached engines hold
                # node caches that saw aborted frames (already
                # pruned by evict callbacks), but drop them anyway
                # so nothing keeps the poisoned tree instances.
                self._invalidate(document)
                raise
            self._prune_engines(document)
            version = self._versions.get(document, 0)
        # Durability wait happens with no dbms lock held: while this
        # fsync is in flight, other updaters append and park behind it,
        # and the next fsync covers them all (group commit).
        txn.wait_durable()
        self.db.maybe_checkpoint()
        return UpdateResult(stats_version=version,
                            commit_lsn=txn.commit_lsn, **counts)

    def _bump_version_unlocked(self, name: str) -> None:
        """Bump a document's catalog version from inside commit publish.

        Runs under the buffer pool's mutex (publish's critical section)
        — deliberately takes no dbms lock (lock order: dbms locks may be
        held while entering the pool, never the reverse).  Callers hold
        ``_lock``, so concurrent bumps cannot interleave.
        """
        self._versions[name] = self._versions.get(name, 0) + 1

    def _prune_engines(self, name: str, keep: int = 2) -> None:
        """Drop cached engines for generations no snapshot is likely to
        want — everything older than ``keep`` versions.  A long-lived
        snapshot that outlives the prune simply rebuilds its engine on
        demand (under its bound snapshot, so the rebuild is faithful)."""
        floor = self._versions.get(name, 0) - (keep - 1)
        with self._engine_lock:
            self._engines = {key: engine
                             for key, engine in self._engines.items()
                             if key[0] != name or key[2] >= floor}

    @staticmethod
    def _parse_update(statement: str | Program | UpdateExpr) -> Program:
        if isinstance(statement, str):
            program = parse_program(statement)
        elif isinstance(statement, UpdateExpr):
            program = Program(body=statement)
        else:
            program = statement
        if not isinstance(program, Program) or not program.is_updating:
            raise UpdateError("update() requires an updating statement "
                              "(insert/delete/replace/rename); use "
                              "query()/execute() for queries")
        return program

    @staticmethod
    def _check_update_bindings(program: Program,
                               bindings: dict[str, object] | None) -> None:
        provided = frozenset(bindings or ())
        required = program.required_variables()
        missing = required - provided
        if missing:
            names = ", ".join(f"${name}" for name in sorted(missing))
            raise UpdateError(f"missing bindings for external "
                              f"variable(s) {names}")
        extra = provided - required
        if extra:
            names = ", ".join(f"${name}" for name in sorted(extra))
            raise UpdateError(f"unexpected binding(s) {names}: not used "
                              f"by the update statement")

    # -- secondary value indexes ----------------------------------------------

    def create_index(self, document: str, label: str) -> None:
        """Create a secondary value index on ``label`` for ``document``.

        The index is a B+-tree mapping the text content of ``label``
        elements (one entry per child text node, keyed ``(value,
        element in, text in)``) to the element's in-interval; the
        planner uses it to answer equality and range predicates over
        those values with an index scan
        (:class:`~repro.physical.operators.ValueIndexScan`), and the
        update path maintains it incrementally inside the same WAL
        transaction as the document rewrite.

        The build is a bulk-load pass bracketed by checkpoints (like
        :meth:`load`); the index becomes visible atomically when its
        catalog registration is written *after* the build, so a crash
        mid-build leaves the document untouched and the index simply
        absent.  The document latch is held exclusively: served readers
        finish first, and queries prepared before the build pick up the
        index through the catalog-version bump.
        """
        with self.document_latch(document).exclusive():
            with self._lock:
                if not self.db.exists(schema.table_name(document)):
                    raise CatalogError(
                        f"document {document!r} is not loaded")
                catalog_name = schema.value_index_catalog_name(document)
                catalog = self.db.get_meta(catalog_name) or {"labels": []}
                if label in catalog["labels"]:
                    raise CatalogError(
                        f"document {document!r} already has a value "
                        f"index on label {label!r}")
                # Bulk builds bypass the WAL; checkpointing first means
                # no stale record can replay over the raw writes, and
                # the closing checkpoint makes the build durable.
                self.db.checkpoint()
                build_value_index(self.db, document, label)
                self.db.put_meta(catalog_name, {
                    "labels": sorted([*catalog["labels"], label])})
                self.db.checkpoint()
                self._invalidate(document)

    def drop_index(self, document: str, label: str) -> None:
        """Drop a value index; its pages return to the free list.

        Runs as one WAL transaction (deregistration and page frees
        commit atomically) under the document's exclusive latch, so no
        served reader can be mid-scan over the freed pages.
        """
        with self.document_latch(document).exclusive():
            with self._lock:
                catalog_name = schema.value_index_catalog_name(document)
                catalog = self.db.get_meta(catalog_name)
                if catalog is None or label not in catalog["labels"]:
                    raise CatalogError(
                        f"document {document!r} has no value index on "
                        f"label {label!r}")
                with self.db.transaction():
                    self.db.drop_btree(
                        schema.value_index_name(document, label))
                    self.db.put_meta(catalog_name, {
                        "labels": [entry for entry in catalog["labels"]
                                   if entry != label]})
                self._invalidate(document)

    def indexes(self, document: str) -> list[str]:
        """Labels of ``document`` carrying a value index, sorted."""
        if not self.db.exists(schema.table_name(document)):
            raise CatalogError(f"document {document!r} is not loaded")
        catalog = self.db.get_meta(
            schema.value_index_catalog_name(document))
        if catalog is None:
            return []
        return sorted(catalog.get("labels", []))

    def statistics(self, name: str) -> DocumentStatistics:
        """The statistics gathered when ``name`` was loaded."""
        payload = self.db.get_meta(schema.stats_name(name))
        if payload is None:
            raise CatalogError(f"document {name!r} is not loaded")
        return DocumentStatistics.from_payload(payload)

    # -- sessions -----------------------------------------------------------------

    def session(self, profile: EngineProfile | str = "m4",
                time_limit: float | None = None,
                memory_budget: int | None = None,
                batch_size: int = DEFAULT_BATCH_SIZE,
                plan_cache_capacity: int = 128) -> Session:
        """Open a client session (prepared queries, bindings, cursors)."""
        return Session(self, profile=profile, time_limit=time_limit,
                       memory_budget=memory_budget, batch_size=batch_size,
                       plan_cache_capacity=plan_cache_capacity)

    @property
    def _session(self) -> Session:
        """The default session backing the one-shot compatibility API."""
        with self._engine_lock:
            if self._default_session is None:
                self._default_session = self.session()
            return self._default_session

    # -- querying -----------------------------------------------------------------

    def engine(self, document: str,
               profile: EngineProfile | str = "m4") -> XQEngine:
        """A (cached) engine for a document under a profile.

        The cache key includes the document's catalog version — for a
        thread inside :meth:`read_ticket`, the version its snapshot
        observed, so a reader overlapping an update gets the engine of
        its own generation (and a cache miss builds one whose catalog
        reads resolve through the bound snapshot)."""
        profile_name = profile if isinstance(profile, str) else profile.name
        key = (document, profile_name, self.catalog_version(document))
        with self._engine_lock:
            engine = self._engines.get(key)
            if engine is not None:
                return engine
        try:
            # Built outside both locks: construction reads the catalog
            # and may take a while, and must not stall other documents.
            engine = XQEngine(self.db, document, profile)
        except CatalogError:
            # Possibly the mid-replacement window (old objects dropped,
            # new ones not yet complete — the statistics entry, written
            # last, is the completeness marker).  Retry serialized
            # against load/drop; a genuinely missing document raises
            # CatalogError again, now authoritatively.
            with self._lock:
                engine = XQEngine(self.db, document, profile)
        with self._engine_lock:
            return self._engines.setdefault(key, engine)

    def execute(self, document: str, query: str | Query,
                profile: EngineProfile | str = "m4",
                time_limit: float | None = None,
                memory_budget: int | None = None) -> list[Node]:
        """Evaluate a query; returns result nodes."""
        return self._session.execute(document, query, profile=profile,
                                     time_limit=time_limit,
                                     memory_budget=memory_budget)

    def query(self, document: str, query: str | Query,
              profile: EngineProfile | str = "m4",
              time_limit: float | None = None,
              memory_budget: int | None = None,
              indent: int | None = None) -> str:
        """Evaluate a query; returns serialized XML text."""
        return self._session.query(document, query, profile=profile,
                                   time_limit=time_limit,
                                   memory_budget=memory_budget,
                                   indent=indent)

    def explain(self, document: str, query: str | Query,
                profile: EngineProfile | str = "m4") -> str:
        """The TPM tree and physical plans the profile would run.

        Returns text for backward compatibility;
        :meth:`Session.explain` returns the structured
        :class:`~repro.core.session.ExplainReport` this is rendered from.
        """
        return str(self._session.explain(document, query, profile=profile))

    # -- accounting ----------------------------------------------------------------

    @property
    def buffer_stats(self):
        return self.db.stats

    def reset_buffer_stats(self) -> None:
        return self.db.reset_stats()

    def mvcc_stats(self) -> dict[str, int]:
        """Version-store and group-commit counters (see
        :meth:`repro.storage.db.Database.mvcc_stats`)."""
        return self.db.mvcc_stats()


class ReadTicket:
    """One admitted read: a pinned snapshot plus the catalog version
    observed atomically with the pin (see :meth:`XmlDbms.read_ticket`)."""

    __slots__ = ("document", "snapshot", "catalog_version")

    def __init__(self, document: str, snapshot, catalog_version: int):
        self.document = document
        self.snapshot = snapshot
        self.catalog_version = catalog_version

    @property
    def snapshot_lsn(self) -> int:
        """The commit LSN this read observes: every commit with LSN <=
        this value is visible, nothing later."""
        return self.snapshot.lsn

    def __repr__(self) -> str:
        return (f"ReadTicket(document={self.document!r}, "
                f"lsn={self.snapshot_lsn}, "
                f"catalog_version={self.catalog_version})")


#: Re-exported for convenience.
PROFILES = ENGINE_PROFILES
