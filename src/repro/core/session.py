"""The session-oriented client API: prepare once, bind, execute many.

This is the classic DBMS client surface layered over the engines::

    with XmlDbms("library.db") as dbms:
        dbms.load("dblp", path="dblp.xml")
        session = dbms.session(profile="m4")
        prepared = session.prepare("dblp", '''
            declare variable $who external;
            for $a in //author return
            if (some $t in $a/text() satisfies $t = $who)
            then <hit>{ $a }</hit> else ()
        ''')
        with prepared.execute(bindings={"who": "Wei Wang"}) as cursor:
            for node in cursor:          # streams, never materialises all
                ...

Three ideas, mirroring what every production database client exposes:

* **Sessions** own per-call defaults (:class:`ExecutionOptions`) and a
  **plan cache** keyed on ``(document, profile, canonical AST,
  statistics version)``.  Repeated queries — even textually different
  strings that desugar to the same core AST — skip the parse, translate
  and plan phases entirely.  Loading or dropping a document bumps its
  statistics version, so stale plans can never be served.

* **Prepared queries** carry *external variables* (``declare variable $x
  external;`` in the prolog, or implicitly any free variable of the
  query), so one compiled plan serves many parameterized executions.
  Bindings are validated eagerly: missing and unexpected names raise
  :class:`~repro.errors.BindingError` before execution starts.

* **Cursors** stream result nodes incrementally out of the evaluation
  pipelines and serialize lazily — the full result list never needs to
  exist in memory at once.  A half-consumed cursor can be closed early;
  closing releases materialised intermediates immediately.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from collections.abc import Iterator
from dataclasses import dataclass, field, replace

from repro.engine.algebraic import iter_relfors
from repro.engine.engine import CompiledQuery
from repro.engine.profiles import EngineProfile
from repro.errors import BindingError, CursorClosedError, UpdateError
from repro.obs.profile import PlanProfiler
from repro.physical.context import DEFAULT_BATCH_SIZE
from repro.physical.operators import PhysicalOp
from repro.xmlkit.dom import Node
from repro.xmlkit.serializer import serialize
from repro.xq.ast import Program, Query
from repro.xq.parser import parse_program

#: Sentinel distinguishing "not passed" from an explicit ``None`` (which
#: means "no limit") in per-execute overrides.
_UNSET = object()


@dataclass(frozen=True)
class ExecutionOptions:
    """Per-session defaults applied to every execution.

    ``profile`` selects the engine; ``time_limit`` (seconds) and
    ``memory_budget`` (bytes) are the resource caps of the grading
    testbed, ``None`` meaning unlimited.  ``batch_size`` is the block
    size of the vectorized execution protocol: physical operators
    exchange batches of up to this many binding tuples, and cursors
    buffer result nodes one block at a time.  The default (256) amortises
    Python per-row overhead to noise; ``1`` degrades to classic
    item-at-a-time execution.
    """

    profile: EngineProfile | str = "m4"
    time_limit: float | None = None
    memory_budget: int | None = None
    batch_size: int = DEFAULT_BATCH_SIZE

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}")

    @property
    def profile_name(self) -> str:
        return (self.profile if isinstance(self.profile, str)
                else self.profile.name)


@dataclass(frozen=True)
class CacheInfo:
    """Plan-cache statistics, in the spirit of ``functools.lru_cache``."""

    hits: int
    misses: int
    size: int
    capacity: int


@dataclass(frozen=True)
class PlanExplain:
    """One relfor's chosen physical plan, with the optimizer's estimates."""

    vartuple: tuple[str, ...]
    plan: PhysicalOp
    estimated_cost: float
    estimated_rows: float


@dataclass(frozen=True)
class ExplainReport:
    """Structured explain output.

    ``str()`` renders exactly the text the engines have always produced
    (the TPM tree followed by one physical plan per relfor, or the
    one-line notice for non-algebraic profiles), so existing string-based
    tooling keeps working; the fields expose the same information
    programmatically, plus whether this explain was served from the
    session's plan cache.
    """

    document: str
    profile: str
    evaluator: str
    tpm: object | None
    plans: tuple[PlanExplain, ...]
    cache_hit: bool
    #: With ``explain(analyze=True)``: per-operator execution profiles
    #: (``repro.obs.profile.PlanProfiler.profiles()`` dicts — batches,
    #: rows, wall ns, memory high-water per physical operator).
    profiles: tuple = ()
    _text: str = field(repr=False, default="")

    def __str__(self) -> str:
        return self._text

    @property
    def estimated_cost(self) -> float:
        """Total estimated cost over all relfor plans."""
        return sum(plan.estimated_cost for plan in self.plans)


class _PlanCache:
    """A small LRU cache of compiled queries.

    Thread-safe: the ``OrderedDict`` recency moves and trims are not
    atomic operations, so every access runs under the cache's own lock —
    this is the piece of a session that concurrent workers genuinely
    share.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: OrderedDict[tuple, CompiledQuery] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> CompiledQuery | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            self.misses += 1
            return None

    def put(self, key: tuple, compiled: CompiledQuery) -> None:
        with self._lock:
            self._entries[key] = compiled
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(hits=self.hits, misses=self.misses,
                             size=len(self._entries),
                             capacity=self.capacity)


class Session:
    """A client session over one :class:`~repro.core.dbms.XmlDbms`.

    Sessions are cheap — they share the database, buffer pool and engine
    instances with their ``XmlDbms`` — and own only defaults plus the plan
    cache.  ``prepare``/``execute``/``query`` are thread-safe (the plan
    cache and parse memo are locked), but prefer one session per thread
    of control, as with any DBMS connection: per-thread sessions also
    mean per-thread cache statistics.  The :class:`Cursor` objects an
    execution returns are **not** thread-safe — each cursor belongs to
    the one thread that drives it.
    """

    def __init__(self, dbms, profile: EngineProfile | str = "m4",
                 time_limit: float | None = None,
                 memory_budget: int | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 plan_cache_capacity: int = 128):
        self.dbms = dbms
        self.options = ExecutionOptions(profile=profile,
                                        time_limit=time_limit,
                                        memory_budget=memory_budget,
                                        batch_size=batch_size)
        self._cache = _PlanCache(plan_cache_capacity)
        self._parse_memo: OrderedDict[str, Program] = OrderedDict()
        self._parse_memo_capacity = plan_cache_capacity
        self._parse_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release the session's cached plans (the dbms stays open)."""
        self.clear_cache()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- plan cache -----------------------------------------------------------

    def cache_info(self) -> CacheInfo:
        return self._cache.info()

    def clear_cache(self) -> None:
        self._cache.clear()
        with self._parse_lock:
            self._parse_memo.clear()

    def _parse(self, query: str | Query | Program) -> Program:
        if isinstance(query, Program):
            return query
        if isinstance(query, Query):
            return Program(body=query)
        with self._parse_lock:
            program = self._parse_memo.get(query)
            if program is not None:
                self._parse_memo.move_to_end(query)
                return program
        # Parse outside the lock: texts are parsed at most twice under a
        # race, and a slow parse never stalls the other sessions.
        program = parse_program(query)
        with self._parse_lock:
            self._parse_memo[query] = program
            while len(self._parse_memo) > self._parse_memo_capacity:
                self._parse_memo.popitem(last=False)
        return program

    def _lookup(self, document: str, program: Program,
                options: ExecutionOptions
                ) -> tuple[CompiledQuery, bool]:
        """Fetch or build the compiled form; returns (compiled, cache_hit).

        The key includes the document's statistics version, so a
        ``load``/``drop`` of the document invalidates every cached plan
        for it without any explicit bookkeeping here.
        """
        key = (document, options.profile_name, program,
               self.dbms.catalog_version(document))
        compiled = self._cache.get(key)
        if compiled is not None:
            return compiled, True
        engine = self.dbms.engine(document, options.profile)
        compiled = engine.prepare(program)
        self._cache.put(key, compiled)
        return compiled, False

    def _options(self, profile, time_limit, memory_budget
                 ) -> ExecutionOptions:
        options = self.options
        if profile is not None:
            options = replace(options, profile=profile)
        if time_limit is not _UNSET:
            options = replace(options, time_limit=time_limit)
        if memory_budget is not _UNSET:
            options = replace(options, memory_budget=memory_budget)
        return options

    # -- the prepared-query API ----------------------------------------------

    def prepare(self, document: str, query: str | Query | Program,
                profile: EngineProfile | str | None = None
                ) -> "PreparedQuery":
        """Compile ``query`` against ``document`` (or reuse a cached plan)."""
        options = self._options(profile, _UNSET, _UNSET)
        program = self._parse(query)
        if program.is_updating:
            raise UpdateError("updating statements cannot be prepared; "
                              "run them with Session.update or "
                              "Session.execute")
        compiled, cache_hit = self._lookup(document, program, options)
        return PreparedQuery(self, document, compiled, options,
                             from_cache=cache_hit)

    def execute(self, document: str, query: str | Query | Program,
                bindings: dict[str, object] | None = None,
                profile: EngineProfile | str | None = None,
                time_limit: float | None = _UNSET,
                memory_budget: int | None = _UNSET,
                batch_size: int = _UNSET,
                trace=None):
        """Prepare (or reuse) and run; returns the full result list.

        An updating statement (``insert node`` …) is routed to the
        dbms's update path instead and returns its
        :class:`~repro.updates.UpdateResult`; the per-execution resource
        overrides do not apply to updates.

        ``trace`` takes a :class:`repro.obs.trace.TraceContext`: the
        execution is recorded as a span under its current position, with
        per-operator ANALYZE profiles attached as child spans.
        """
        program = self._parse(query)
        if program.is_updating:
            if trace is None:
                return self.dbms.update(document, program,
                                        bindings=bindings)
            with trace.span("update", document=document):
                return self.dbms.update(document, program,
                                        bindings=bindings)
        prepared = self.prepare(document, program, profile=profile)
        if trace is None:
            with prepared.execute(bindings=bindings,
                                  time_limit=time_limit,
                                  memory_budget=memory_budget,
                                  batch_size=batch_size) as cursor:
                return cursor.fetchall()
        profiler = PlanProfiler()
        with trace.span("execute", document=document) as span:
            with prepared.execute(bindings=bindings,
                                  time_limit=time_limit,
                                  memory_budget=memory_budget,
                                  batch_size=batch_size,
                                  profiler=profiler, trace=trace) as cursor:
                result = cursor.fetchall()
            span.attach(profiler.as_span_dicts())
            span.attributes["rows"] = len(result)
            span.attributes["plan_cache_hit"] = prepared.from_cache
        return result

    def update(self, document: str, statement: str | Program,
               bindings: dict[str, object] | None = None):
        """Run an updating statement (see :meth:`XmlDbms.update`)."""
        return self.dbms.update(document, self._parse(statement),
                                bindings=bindings)

    # -- secondary value indexes ----------------------------------------------

    def create_index(self, document: str, label: str) -> None:
        """Create a value index (see :meth:`XmlDbms.create_index`).

        Plans cached by this (and every other) session for the document
        are invalidated through the catalog-version bump, so the next
        execution replans against the new access path.
        """
        self.dbms.create_index(document, label)

    def drop_index(self, document: str, label: str) -> None:
        """Drop a value index (see :meth:`XmlDbms.drop_index`)."""
        self.dbms.drop_index(document, label)

    def indexes(self, document: str) -> list[str]:
        """Labels of ``document`` carrying a value index."""
        return self.dbms.indexes(document)

    def query(self, document: str, query: str | Query | Program,
              bindings: dict[str, object] | None = None,
              profile: EngineProfile | str | None = None,
              time_limit: float | None = _UNSET,
              memory_budget: int | None = _UNSET,
              batch_size: int = _UNSET,
              indent: int | None = None) -> str:
        """Prepare (or reuse) and run; returns serialized XML text."""
        prepared = self.prepare(document, query, profile=profile)
        with prepared.execute(bindings=bindings, time_limit=time_limit,
                              memory_budget=memory_budget,
                              batch_size=batch_size) as cursor:
            return cursor.serialize(indent=indent)

    def explain(self, document: str, query: str | Query | Program,
                profile: EngineProfile | str | None = None,
                analyze: bool = False,
                bindings: dict[str, object] | None = None
                ) -> ExplainReport:
        """The TPM tree and physical plans, as a structured report.

        With ``analyze=True`` the query is additionally *executed* (to
        completion, under ``bindings``) with a profiler attached, and
        the report carries per-operator actuals — batches, rows, wall
        time, memory high-water — in ``report.profiles`` and as an
        ``analyze:`` section of the rendered text.  Non-algebraic
        profiles have no physical operators, so their analyze run
        yields no profiles.
        """
        options = self._options(profile, _UNSET, _UNSET)
        program = self._parse(query)
        compiled, cache_hit = self._lookup(document, program, options)
        engine = compiled.engine
        if engine._algebraic is None:
            text = engine.explain(compiled.program.body)
            report = ExplainReport(document=document,
                                   profile=engine.profile.name,
                                   evaluator=engine.profile.evaluator,
                                   tpm=None, plans=(), cache_hit=cache_hit,
                                   _text=text)
        else:
            plans = []
            for relfor in iter_relfors(compiled.tpm):
                plan = engine._algebraic.plan_for(relfor, compiled.plans)
                plans.append(PlanExplain(vartuple=relfor.vartuple,
                                         plan=plan,
                                         estimated_cost=plan.estimated_cost,
                                         estimated_rows=plan.estimated_rows))
            text = engine._algebraic.explain_compiled(compiled.tpm,
                                                      compiled.plans)
            report = ExplainReport(document=document,
                                   profile=engine.profile.name,
                                   evaluator=engine.profile.evaluator,
                                   tpm=compiled.tpm, plans=tuple(plans),
                                   cache_hit=cache_hit, _text=text)
        if not analyze:
            return report
        prepared = PreparedQuery(self, document, compiled, options,
                                 from_cache=cache_hit)
        profiler = PlanProfiler()
        with prepared.execute(bindings=bindings,
                              profiler=profiler) as cursor:
            cursor.fetchall()
        profiles = tuple(profiler.profiles())
        text = str(report)
        if profiles:
            text += "\n\nanalyze:\n" + profiler.render()
        return replace(report, profiles=profiles, _text=text)


class PreparedQuery:
    """A compiled query, ready to execute many times with fresh bindings."""

    def __init__(self, session: Session, document: str,
                 compiled: CompiledQuery, options: ExecutionOptions,
                 from_cache: bool = False):
        self.session = session
        self.document = document
        self.compiled = compiled
        self.options = options
        #: True if this prepare was served from the session's plan cache.
        self.from_cache = from_cache
        self._version = session.dbms.catalog_version(document)
        self._refresh_lock = threading.Lock()

    def _refresh_if_stale(self) -> None:
        """Recompile against the current document if it changed.

        A held prepared query survives ``load``/``drop`` of its document:
        the catalog version captured at prepare time is checked before
        every execution, and a mismatch transparently re-prepares against
        the fresh document (or raises ``CatalogError`` if it was dropped)
        instead of silently serving results from the replaced one.  The
        check-and-swap runs under a lock so two threads executing one
        prepared query across a ``load`` agree on a single recompile.
        """
        if self.session.dbms.catalog_version(self.document) \
                == self._version:
            return
        with self._refresh_lock:
            current = self.session.dbms.catalog_version(self.document)
            if current == self._version:
                return
            compiled, __ = self.session._lookup(
                self.document, self.compiled.program, self.options)
            self.compiled = compiled
            self._version = current

    @property
    def externals(self) -> tuple[str, ...]:
        """Externals declared in the prolog, in declaration order."""
        return self.compiled.program.externals

    @property
    def required_variables(self) -> frozenset[str]:
        """All variables an execution must bind (declared + implicit)."""
        return self.compiled.required_variables

    def _check_bindings(self, bindings: dict[str, object] | None) -> None:
        provided = frozenset(bindings or ())
        required = self.required_variables
        missing = required - provided
        if missing:
            names = ", ".join(f"${name}" for name in sorted(missing))
            raise BindingError(f"missing bindings for external "
                               f"variable(s) {names}")
        extra = provided - required
        if extra:
            names = ", ".join(f"${name}" for name in sorted(extra))
            raise BindingError(f"unexpected binding(s) {names}: not "
                               f"declared external and not free in the "
                               f"query")

    def execute(self, bindings: dict[str, object] | None = None,
                time_limit: float | None = _UNSET,
                memory_budget: int | None = _UNSET,
                batch_size: int = _UNSET,
                analyze: bool = False,
                profiler=None, trace=None) -> "Cursor":
        """Run under ``bindings``; returns a streaming :class:`Cursor`.

        ``bindings`` maps external-variable names (without the ``$``) to
        strings or DOM text nodes.  The time limit starts counting here,
        not at the first fetch.  ``batch_size`` overrides the session's
        block size for this execution (the unit both the physical
        operators and the cursor's buffer work in).

        ``analyze=True`` attaches a fresh
        :class:`repro.obs.profile.PlanProfiler` so per-operator actuals
        are available from :meth:`Cursor.profile` once the cursor is
        drained (an existing ``profiler`` may be passed instead, e.g.
        the one a traced server task owns); without either, execution
        takes the zero-instrumentation fast path.

        Every execution runs a private instance of the compiled plans, so
        two open cursors from the same prepared query never share
        materialised state — interleaving them is safe.  Sessions, like
        DBMS connections, remain single-threaded.
        """
        self._refresh_if_stale()
        self._check_bindings(bindings)
        if analyze and profiler is None:
            profiler = PlanProfiler()
        time_limit = (self.options.time_limit if time_limit is _UNSET
                      else time_limit)
        memory_budget = (self.options.memory_budget
                         if memory_budget is _UNSET else memory_budget)
        if batch_size is _UNSET:
            batch_size = self.options.batch_size
        elif batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {batch_size}")
        deadline = (time.monotonic() + time_limit
                    if time_limit is not None else None)
        batches = self.compiled.engine.stream_compiled_batches(
            self.compiled, bindings=bindings, deadline=deadline,
            memory_budget=memory_budget, batch_size=batch_size,
            profiler=profiler, trace=trace)
        return Cursor(batches, profiler=profiler)

    def query(self, bindings: dict[str, object] | None = None,
              indent: int | None = None, **overrides) -> str:
        """Execute and serialize in one call."""
        with self.execute(bindings=bindings, **overrides) as cursor:
            return cursor.serialize(indent=indent)


class Cursor:
    """A streaming result: iterate, fetch in batches, serialize lazily.

    The cursor rides the vectorized pipeline: result nodes arrive in
    blocks of up to the execution's ``batch_size``, and ``fetch(n)``,
    iteration and ``serialize`` are all served from the current buffered
    block — the operator tree is only re-entered when the buffer runs
    dry, once per block rather than once per node.  Nothing beyond the
    current block (plus whatever the chosen physical plan materialises
    internally) is held in memory.  Closing the cursor — explicitly, via
    the context manager, or by exhausting it — shuts the pipeline down
    and releases materialised intermediates.
    """

    def __init__(self, batches: Iterator[list[Node]], profiler=None):
        self._batches = batches
        self._buffer: deque[Node] = deque()
        self._closed = False
        self._profiler = profiler

    # -- buffering -----------------------------------------------------------

    def _refill(self) -> bool:
        """Pull the next block off the pipeline into the buffer."""
        try:
            block = next(self._batches)
        except StopIteration:
            return False
        self._buffer.extend(block)
        return True

    def _remaining(self) -> Iterator[Node]:
        """Drain buffered nodes, refilling block by block."""
        buffer = self._buffer
        while True:
            while buffer:
                yield buffer.popleft()
            if not self._refill():
                return

    # -- iteration -----------------------------------------------------------

    def __iter__(self) -> "Cursor":
        return self

    def __next__(self) -> Node:
        if self._closed:
            raise CursorClosedError("cursor is closed")
        if not self._buffer and not self._refill():
            raise StopIteration
        return self._buffer.popleft()

    def fetch(self, count: int) -> list[Node]:
        """Up to ``count`` further result nodes (fewer at the end).

        Served from the currently buffered block; the pipeline is pulled
        (one block at a time) only when the buffer holds fewer than
        ``count`` nodes.
        """
        if self._closed:
            raise CursorClosedError("cursor is closed")
        buffer = self._buffer
        while len(buffer) < count and self._refill():
            pass
        if count >= len(buffer):
            out = list(buffer)
            buffer.clear()
            return out
        return [buffer.popleft() for __ in range(count)]

    def fetchall(self) -> list[Node]:
        """Every remaining result node."""
        if self._closed:
            raise CursorClosedError("cursor is closed")
        out = list(self._buffer)
        self._buffer.clear()
        for block in self._batches:
            out.extend(block)
        return out

    def serialize(self, indent: int | None = None) -> str:
        """Serialize the remaining results to XML text, block by block."""
        if self._closed:
            raise CursorClosedError("cursor is closed")
        return "".join(serialize(node, indent=indent)
                       for node in self._remaining())

    # -- EXPLAIN ANALYZE -------------------------------------------------------

    def profile(self) -> list[dict] | None:
        """Per-operator ANALYZE profiles, or None when not profiled.

        Only meaningful once the cursor has been drained (profiles of a
        half-consumed cursor cover the work done so far).  Each entry is
        an ``repro.obs.profile.OperatorProfile`` dict: ``op``,
        ``detail``, ``depth``, ``batches``, ``rows``, ``wall_ns``,
        ``memory_peak`` (plus ``plan`` naming the relfor vartuple).
        Available after :meth:`close` too — closing tears down the
        pipeline, not the collected profiles.
        """
        if self._profiler is None:
            return None
        return self._profiler.profiles()

    def profile_text(self) -> str | None:
        """The profiles as indented ANALYZE text (None when unprofiled)."""
        if self._profiler is None:
            return None
        return self._profiler.render()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Shut the pipeline down; further fetches raise.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._buffer.clear()
        closer = getattr(self._batches, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
