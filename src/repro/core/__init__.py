"""The public API: a native XML-DBMS with a session-oriented client layer.

>>> from repro.core import XmlDbms                       # doctest: +SKIP
>>> dbms = XmlDbms("/tmp/library.db")
>>> dbms.load("fig2", xml="<journal>...</journal>")
>>> session = dbms.session()
>>> prepared = session.prepare("fig2", "for $n in //name return $n")
>>> with prepared.execute() as cursor:
...     cursor.serialize()
'<name>Ana</name><name>Bob</name>'
"""

from repro.core.dbms import XmlDbms
from repro.core.server import (
    LatencyHistogram,
    LatencySnapshot,
    QueryServer,
    QueryStream,
    ServerStats,
)
from repro.core.session import (
    CacheInfo,
    Cursor,
    ExecutionOptions,
    ExplainReport,
    PlanExplain,
    PreparedQuery,
    Session,
)

__all__ = [
    "XmlDbms",
    "Session",
    "PreparedQuery",
    "Cursor",
    "ExecutionOptions",
    "ExplainReport",
    "PlanExplain",
    "CacheInfo",
    "QueryServer",
    "QueryStream",
    "ServerStats",
    "LatencyHistogram",
    "LatencySnapshot",
]
