"""The public API: a native XML-DBMS in one class.

>>> from repro.core import XmlDbms                       # doctest: +SKIP
>>> dbms = XmlDbms("/tmp/library.db")
>>> dbms.load("fig2", xml="<journal>...</journal>")
>>> dbms.query("fig2", "for $n in //name return $n")
'<name>Ana</name><name>Bob</name>'
"""

from repro.core.dbms import XmlDbms

__all__ = ["XmlDbms"]
