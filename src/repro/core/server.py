"""Concurrent query serving: a bounded worker pool over one ``XmlDbms``.

The paper's setting is many independent engines answering one workload;
the serving layer turns that into a single process answering many
clients::

    with XmlDbms("library.db") as dbms:
        dbms.load("dblp", path="dblp.xml")
        with QueryServer(dbms, workers=8, max_pending=64,
                         time_limit=2.0) as server:
            future = server.submit("dblp", "//title")
            nodes = future.result()

Three serving concerns, each deliberately explicit:

* **Worker pool** — ``workers`` threads, each owning its *own*
  :class:`~repro.core.session.Session` (so plan caches are per-worker
  and cursors never cross threads).  In-flight concurrency is therefore
  bounded by the worker count.

* **Admission control** — the submission queue holds at most
  ``max_pending`` waiting queries.  A submission that would exceed the
  queue depth fails *immediately* with
  :class:`~repro.errors.AdmissionError` rather than blocking the client:
  back-pressure is visible, not silent.

* **Per-query deadlines** — the server's
  :class:`~repro.core.session.ExecutionOptions` defaults (profile, time
  limit, memory budget, batch size) apply to every submission, each
  overridable per call.  The time limit starts at *submission*: time
  spent waiting in the queue counts against it, so an overloaded server
  fails queries with the familiar
  :class:`~repro.errors.ResourceLimitExceeded` instead of letting
  latency grow without bound.

``submit`` returns a :class:`concurrent.futures.Future`; results are the
familiar node lists (or serialized text with ``serialize=True``).  The
futures support the full protocol — ``result(timeout)``, callbacks,
``cancel()`` of still-queued work.

Updating statements may be submitted like any query; they resolve to an
:class:`~repro.updates.UpdateResult` and are scheduled **exclusively per
document**: in-flight reads of that document finish on the pre-update
snapshot (they hold the document latch shared), the update rewrites
under the exclusive side, and later reads see the new version through
the usual catalog-version invalidation.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

from repro.core.session import ExecutionOptions, Session
from repro.engine.profiles import EngineProfile
from repro.errors import (
    AdmissionError,
    ResourceLimitExceeded,
    ServerClosedError,
    UpdateError,
)
from repro.physical.context import DEFAULT_BATCH_SIZE

#: Sentinel distinguishing "not passed" from an explicit ``None`` in
#: per-submission overrides (mirrors the session layer's convention).
_UNSET = object()

#: Queue sentinel telling a worker to exit.
_SHUTDOWN = object()


@dataclass(frozen=True)
class ServerStats:
    """A consistent snapshot of the server's counters.

    ``pending`` is the current queue depth, ``peak_pending`` its high
    watermark; at rest ``submitted = completed + failed + cancelled +
    pending`` (while queries are in flight, ``submitted`` also covers
    the running ones).  Rejected submissions never enter the queue and
    are counted separately.
    """

    workers: int
    max_pending: int
    submitted: int
    completed: int
    failed: int
    cancelled: int
    rejected: int
    pending: int
    peak_pending: int


@dataclass
class _Task:
    future: Future
    document: str
    query: object
    bindings: dict | None
    profile: EngineProfile | str
    deadline: float | None
    time_limit: float | None
    memory_budget: int | None
    batch_size: int
    serialize: bool
    indent: int | None


class QueryServer:
    """Serve queries against one :class:`~repro.core.dbms.XmlDbms`.

    Thread-safe throughout: any number of client threads may ``submit``
    concurrently, and the wrapped dbms may still be used directly (e.g.
    an operator thread calling ``load`` while the server is running —
    in-flight queries finish on the old snapshot, later ones see the new
    document).
    """

    def __init__(self, dbms, workers: int = 4, max_pending: int = 64,
                 profile: EngineProfile | str = "m4",
                 time_limit: float | None = None,
                 memory_budget: int | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 plan_cache_capacity: int = 128):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}")
        self.dbms = dbms
        self.options = ExecutionOptions(profile=profile,
                                        time_limit=time_limit,
                                        memory_budget=memory_budget,
                                        batch_size=batch_size)
        self._plan_cache_capacity = plan_cache_capacity
        self._queue: queue.Queue = queue.Queue(maxsize=max_pending)
        self._closed = False
        #: Orders submissions against close(): a task admitted under this
        #: lock is guaranteed to precede the shutdown sentinels in the
        #: queue, so its future always resolves.
        self._lifecycle_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._cancelled = 0
        self._rejected = 0
        self._peak_pending = 0
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"query-server-worker-{index}",
                             daemon=True)
            for index in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ----------------------------------------------------------

    def submit(self, document: str, query, bindings: dict | None = None,
               profile: EngineProfile | str | None = None,
               time_limit: float | None = _UNSET,
               memory_budget: int | None = _UNSET,
               batch_size: int = _UNSET,
               serialize: bool = False,
               indent: int | None = None) -> Future:
        """Enqueue a query; returns a Future of its full result.

        The future resolves to the result node list, or to serialized
        XML text with ``serialize=True``.  Raises
        :class:`~repro.errors.ServerClosedError` after :meth:`close` and
        :class:`~repro.errors.AdmissionError` when the queue is at
        ``max_pending`` — admission control never blocks the caller.
        Execution errors (including a missed deadline) surface through
        the future.
        """
        if self._closed:
            raise ServerClosedError("submit() on a closed QueryServer")
        time_limit = (self.options.time_limit if time_limit is _UNSET
                      else time_limit)
        memory_budget = (self.options.memory_budget
                         if memory_budget is _UNSET else memory_budget)
        if batch_size is _UNSET:
            batch_size = self.options.batch_size
        deadline = (time.monotonic() + time_limit
                    if time_limit is not None else None)
        task = _Task(future=Future(), document=document, query=query,
                     bindings=bindings,
                     profile=(self.options.profile if profile is None
                              else profile),
                     deadline=deadline, time_limit=time_limit,
                     memory_budget=memory_budget, batch_size=batch_size,
                     serialize=serialize, indent=indent)
        with self._lifecycle_lock:
            # Re-checked under the lock: close() flips the flag under it
            # too, so a task admitted here is enqueued before the
            # shutdown sentinels and will be served (or cancelled).
            if self._closed:
                raise ServerClosedError("submit() on a closed QueryServer")
            # Counted *before* the task becomes visible to workers, so
            # the stats invariant (submitted ≥ completed + failed +
            # cancelled) holds under any interleaving.
            with self._stats_lock:
                self._submitted += 1
            try:
                self._queue.put_nowait(task)
            except queue.Full:
                with self._stats_lock:
                    self._submitted -= 1
                    self._rejected += 1
                raise AdmissionError(
                    f"query queue is full ({self._queue.maxsize} "
                    f"pending); resubmit after the backlog drains"
                ) from None
        with self._stats_lock:
            self._peak_pending = max(self._peak_pending,
                                     self._queue.qsize())
        return task.future

    def execute(self, document: str, query,
                bindings: dict | None = None, **overrides):
        """Submit and wait: the synchronous convenience wrapper."""
        return self.submit(document, query, bindings=bindings,
                           **overrides).result()

    def query(self, document: str, query,
              bindings: dict | None = None, **overrides) -> str:
        """Submit, wait and serialize in one call."""
        return self.submit(document, query, bindings=bindings,
                           serialize=True, **overrides).result()

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self) -> None:
        session = Session(self.dbms, profile=self.options.profile,
                          time_limit=self.options.time_limit,
                          memory_budget=self.options.memory_budget,
                          batch_size=self.options.batch_size,
                          plan_cache_capacity=self._plan_cache_capacity)
        while True:
            task = self._queue.get()
            if task is _SHUTDOWN:
                return
            if not task.future.set_running_or_notify_cancel():
                with self._stats_lock:
                    self._cancelled += 1
                continue
            try:
                result = self._run(session, task)
            except BaseException as exc:  # the future carries it
                # Counters move before the future resolves: a caller
                # that returns from future.result() and immediately
                # reads stats() must see this query accounted for.
                with self._stats_lock:
                    self._failed += 1
                task.future.set_exception(exc)
            else:
                with self._stats_lock:
                    self._completed += 1
                task.future.set_result(result)

    def _run(self, session: Session, task: _Task):
        self._check_deadline(task)    # fail fast on queue-expired work
        program = session._parse(task.query)
        if program.is_updating:
            # Updating statements schedule exclusively per document:
            # dbms.update takes the document latch in exclusive mode, so
            # it waits for the readers below to finish on the pre-update
            # snapshot and blocks new ones until the rewrite commits.
            # The transaction is not interruptible, so the deadline is
            # only enforced up front.
            if task.serialize:
                raise UpdateError("updating statements have no "
                                  "serialized result; submit with "
                                  "serialize=False")
            return self.dbms.update(task.document, program,
                                    bindings=task.bindings)
        with self.dbms.document_latch(task.document).shared():
            prepared = session.prepare(task.document, program,
                                       profile=task.profile)
            # The deadline is re-taken *after* prepare: compilation
            # counts against the submission deadline exactly like queue
            # wait does.
            remaining = self._check_deadline(task)
            with prepared.execute(bindings=task.bindings,
                                  time_limit=remaining,
                                  memory_budget=task.memory_budget,
                                  batch_size=task.batch_size) as cursor:
                if task.serialize:
                    return cursor.serialize(indent=task.indent)
                return cursor.fetchall()

    @staticmethod
    def _check_deadline(task: _Task) -> float | None:
        """Seconds left until the task's submission deadline (``None``
        when unlimited); raises once it has passed."""
        if task.deadline is None:
            return None
        remaining = task.deadline - time.monotonic()
        if remaining <= 0:
            raise ResourceLimitExceeded("time", task.time_limit,
                                        task.time_limit - remaining)
        return remaining

    # -- introspection -------------------------------------------------------

    def stats(self) -> ServerStats:
        with self._stats_lock:
            return ServerStats(workers=len(self._workers),
                               max_pending=self._queue.maxsize,
                               submitted=self._submitted,
                               completed=self._completed,
                               failed=self._failed,
                               cancelled=self._cancelled,
                               rejected=self._rejected,
                               pending=self._queue.qsize(),
                               peak_pending=self._peak_pending)

    # -- lifecycle -----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and shut the pool down.  Idempotent.

        ``wait=True`` (default) drains the queue: everything already
        admitted runs to completion before the workers exit.
        ``wait=False`` cancels still-queued tasks (their futures report
        ``cancelled()``); the queries currently executing still finish,
        and their futures resolve normally.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        if not wait:
            while True:
                try:
                    task = self._queue.get_nowait()
                except queue.Empty:
                    break
                if task is not _SHUTDOWN and task.future.cancel():
                    with self._stats_lock:
                        self._cancelled += 1
        for __ in self._workers:
            self._queue.put(_SHUTDOWN)
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
