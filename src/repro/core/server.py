"""Concurrent query serving: a bounded worker pool over one ``XmlDbms``.

The paper's setting is many independent engines answering one workload;
the serving layer turns that into a single process answering many
clients::

    with XmlDbms("library.db") as dbms:
        dbms.load("dblp", path="dblp.xml")
        with QueryServer(dbms, workers=8, max_pending=64,
                         time_limit=2.0) as server:
            future = server.submit("dblp", "//title")
            nodes = future.result()

Three serving concerns, each deliberately explicit:

* **Worker pool** — ``workers`` threads, each owning its *own*
  :class:`~repro.core.session.Session` (so plan caches are per-worker
  and cursors never cross threads).  In-flight concurrency is therefore
  bounded by the worker count.

* **Admission control** — the submission queue holds at most
  ``max_pending`` waiting queries.  A submission that would exceed the
  queue depth fails *immediately* with
  :class:`~repro.errors.AdmissionError` rather than blocking the client:
  back-pressure is visible, not silent.

* **Per-query deadlines** — the server's
  :class:`~repro.core.session.ExecutionOptions` defaults (profile, time
  limit, memory budget, batch size) apply to every submission, each
  overridable per call.  The time limit starts at *submission*: time
  spent waiting in the queue counts against it, so an overloaded server
  fails queries with the familiar
  :class:`~repro.errors.ResourceLimitExceeded` instead of letting
  latency grow without bound.

``submit`` returns a :class:`concurrent.futures.Future`; results are the
familiar node lists (or serialized text with ``serialize=True``).  The
futures support the full protocol — ``result(timeout)``, callbacks,
``cancel()`` of still-queued work.

Updating statements may be submitted like any query; they resolve to an
:class:`~repro.updates.UpdateResult`.  Reads and updates of one document
admit **concurrently**: every read runs under a snapshot ticket
(:meth:`~repro.core.dbms.XmlDbms.read_ticket`) pinned at submission of
the work to a worker, so it observes exactly the commits published
before its pin — a concurrent update neither blocks it nor bleeds into
it, and the update in turn never waits for readers.  Commit fsyncs are
batched by the storage layer's group committer; the
:class:`ServerStats` surface exposes both sides (snapshots pinned,
versions retained, fsyncs saved).
"""

from __future__ import annotations

import contextlib
import dataclasses
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass

from repro.core.session import ExecutionOptions, Session
from repro.engine.profiles import EngineProfile
from repro.errors import (
    AdmissionError,
    CursorClosedError,
    ResourceLimitExceeded,
    ServerClosedError,
    UpdateError,
)
# Re-exported for compatibility: the histogram grew up in this module
# and existing importers (net/server.py, repro.core) keep working.
from repro.obs.metrics import (  # noqa: F401
    LatencyHistogram,
    LatencySnapshot,
    MetricsRegistry,
)
from repro.obs.profile import PlanProfiler
from repro.physical.context import DEFAULT_BATCH_SIZE
from repro.xmlkit.serializer import serialize as _serialize_node

#: Sentinel distinguishing "not passed" from an explicit ``None`` in
#: per-submission overrides (mirrors the session layer's convention).
_UNSET = object()

#: Queue sentinel telling a worker to exit.
_SHUTDOWN = object()

#: Rows per page a streaming submission hands to its consumer.
DEFAULT_PAGE_SIZE = 64

#: Pages a stream buffers ahead of its consumer before the producing
#: worker blocks (the server-side backpressure bound).
DEFAULT_MAX_BUFFERED_PAGES = 4


@dataclass(frozen=True)
class PageEnvelope:
    """One result page plus the metadata that must survive the wire.

    The streaming path hands consumers more than raw rows: a merge
    consumer (the shard mediator) needs to know *which document* a page
    belongs to and *where in the result* it starts, so it can key every
    row for an order-preserving k-way merge without keeping per-stream
    counters of its own.  ``base`` is the index of the page's first row
    within the full result (row ``i`` of the page is result row
    ``base + i``); the final page has ``eof=True``, no rows, and carries
    the stream totals.

    The payload mapping (:meth:`as_payload` / :meth:`from_payload`) is
    the normative wire shape of a PAGE frame's envelope fields — see
    ``docs/wire-protocol.md``.
    """

    document: str
    base: int
    rows: list
    eof: bool
    total_rows: int | None = None
    plan_cache_hit: bool | None = None
    #: On a traced query's final page only: the producing server's
    #: serialized span tree (see ``repro.obs.trace``), piggybacked so
    #: the caller — ultimately the shard mediator — can stitch it into
    #: its own trace.
    spans: list | None = None

    def as_payload(self) -> dict:
        """The JSON-serializable PAGE-frame fields for this page."""
        payload = {"doc": self.document, "base": self.base,
                   "rows": self.rows, "eof": self.eof}
        if self.eof:
            payload["total_rows"] = self.total_rows
            payload["plan_cache_hit"] = self.plan_cache_hit
            if self.spans is not None:
                payload["spans"] = self.spans
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "PageEnvelope":
        """Rebuild an envelope from a PAGE frame's payload.

        Tolerates pre-metadata peers: a payload without ``doc``/``base``
        decodes with an empty document name and a ``-1`` base, which
        downstream merge logic treats as "no merge key available".
        """
        return cls(document=payload.get("doc", ""),
                   base=payload.get("base", -1),
                   rows=payload.get("rows", []),
                   eof=bool(payload.get("eof")),
                   total_rows=payload.get("total_rows"),
                   plan_cache_hit=payload.get("plan_cache_hit"),
                   spans=payload.get("spans"))


@dataclass(frozen=True)
class ServerStats:
    """A consistent snapshot of the server's counters.

    ``pending`` is the current queue depth, ``peak_pending`` its high
    watermark; at rest ``submitted = completed + failed + cancelled +
    pending`` (while queries are in flight, ``submitted`` also covers
    the running ones).  Rejected submissions never enter the queue and
    are counted separately.  ``queue_wait`` and ``execution`` summarize
    per-query latency histograms: time spent queued before a worker
    picked the task up, and time the worker spent running it (for a
    stream, until the last page was handed over — consumer pacing
    included, which is exactly the backpressure a caller should see).

    The MVCC/group-commit fields mirror the storage layer's counters at
    snapshot time (all defaulted, so older peers deserializing the
    mapping stay compatible): ``snapshots_pinned`` is the number of
    currently pinned read snapshots, ``snapshots_opened`` the lifetime
    count, ``snapshot_reads`` the page reads served from the version
    store, ``versions_retained`` the superseded page images currently
    kept alive for pinned snapshots, ``group_commits``/``group_fsyncs``
    the commits acknowledged vs. the fsyncs actually issued, and
    ``fsyncs_saved`` their difference — the batching win.
    """

    workers: int
    max_pending: int
    submitted: int
    completed: int
    failed: int
    cancelled: int
    rejected: int
    pending: int
    peak_pending: int
    queue_wait: LatencySnapshot
    execution: LatencySnapshot
    snapshots_pinned: int = 0
    snapshots_opened: int = 0
    snapshot_reads: int = 0
    versions_retained: int = 0
    group_commits: int = 0
    group_fsyncs: int = 0
    fsyncs_saved: int = 0


@dataclass
class _Task:
    future: Future
    document: str
    query: object
    bindings: dict | None
    profile: EngineProfile | str
    deadline: float | None
    time_limit: float | None
    memory_budget: int | None
    batch_size: int
    serialize: bool
    indent: int | None
    enqueued_at: float = 0.0
    #: Set on streaming submissions: the bounded page buffer shared with
    #: the consumer.  ``None`` means the classic full-result path.
    sink: "QueryStream | None" = None
    page_size: int = DEFAULT_PAGE_SIZE
    #: The query's ``repro.obs.trace.TraceContext``, when traced: the
    #: worker records queue wait and an execute span (with per-operator
    #: ANALYZE profiles attached) into it.
    trace: object | None = None


class _StreamAborted(Exception):
    """Internal: the stream's consumer closed it mid-production."""


class QueryStream:
    """Consumer handle of a streaming submission.

    The producing worker pushes pages (lists of result nodes, or
    serialized strings with ``serialize=True``) into a bounded buffer;
    once ``max_buffered_pages`` pages wait unconsumed the worker blocks —
    that bound is the server-side backpressure, and the submission
    deadline keeps ticking while blocked, so a consumer that stops
    fetching sheds its own query instead of pinning a worker forever.

    One consumer thread at a time: call :meth:`next_page` until it
    returns ``None`` (end of results), or :meth:`close` to abandon the
    stream early (the producer notices at its next page boundary and
    releases the worker).  Execution errors — including a missed
    deadline — re-raise out of :meth:`next_page`.
    """

    def __init__(self, future: Future, page_size: int,
                 max_buffered_pages: int, document: str = ""):
        self.future = future
        self.page_size = page_size
        #: The document the stream reads — page envelopes carry it so
        #: merge keys survive serialization (see :class:`PageEnvelope`).
        self.document = document
        self._pages: queue.Queue = queue.Queue(maxsize=max_buffered_pages)
        self._closed = threading.Event()
        self._close_reason: BaseException | None = None
        #: Terminal error parked outside the bounded buffer, so delivery
        #: can never block the producer behind a full buffer.
        self._error: BaseException | None = None
        #: Set by the worker after prepare: whether the plan came from
        #: the worker session's plan cache.
        self.plan_cache_hit: bool | None = None
        #: Set by the worker once its snapshot ticket is pinned: the
        #: commit LSN every page of this stream observes.
        self.snapshot_lsn: int | None = None
        #: Rows pushed so far (maintained by the producer).
        self.rows_produced = 0

    # -- consumer side ------------------------------------------------------

    def next_page(self, timeout: float | None = None):
        """The next page of results; ``None`` when the stream is done.

        Blocks until the producer delivers a page (or ``timeout``
        seconds elapse — then raises ``queue.Empty``).  Raises the
        execution error if the stream failed, and
        :class:`~repro.errors.CursorClosedError` after :meth:`close`.
        """
        end = (time.monotonic() + timeout if timeout is not None
               else None)
        while True:
            if self._closed.is_set():
                if self._close_reason is not None:
                    raise self._close_reason
                raise CursorClosedError("stream is closed")
            # Short get timeouts make the wait interruptible: a put
            # wakes the condition variable immediately, so the 50 ms
            # tick costs nothing on the data path — it only bounds how
            # long a close() or parked error goes unnoticed.
            try:
                kind, payload = self._pages.get(timeout=0.05)
            except queue.Empty:
                if self._error is not None:
                    error = self._error
                    self.close()
                    raise error from None
                if end is not None and time.monotonic() >= end:
                    raise
                continue
            if kind == "page":
                return payload
            if kind == "error":
                self.close()
                raise payload
            self.close()                 # kind == "end"
            return None

    def pages(self):
        """Iterate pages until the stream ends."""
        while True:
            page = self.next_page()
            if page is None:
                return
            yield page

    def close(self, reason: BaseException | None = None) -> None:
        """Abandon the stream; the producer unblocks and aborts.

        Idempotent.  ``reason`` (server-internal) makes a later
        ``next_page`` raise it instead of ``CursorClosedError``.
        """
        if self._closed.is_set():
            return
        self._close_reason = reason
        self._closed.set()
        # Drain whatever is buffered so a producer blocked on a full
        # buffer wakes up and sees the closed flag.
        while True:
            try:
                self._pages.get_nowait()
            except queue.Empty:
                return

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    # -- producer side (worker thread) --------------------------------------

    def _offer(self, item: tuple, deadline_check) -> None:
        """Blocking put honouring close and the submission deadline."""
        while True:
            if self._closed.is_set():
                raise _StreamAborted()
            deadline_check()
            try:
                self._pages.put(item, timeout=0.05)
                return
            except queue.Full:
                continue

    def _deliver_error(self, error: BaseException) -> None:
        """Terminal error delivery that can never block the producer.

        Parks the error beside the buffer first (a consumer draining the
        queue finds it once the buffered pages run out), then opportunistically
        enqueues it in order behind those pages if there is room.
        """
        self._error = error
        try:
            self._pages.put_nowait(("error", error))
        except queue.Full:
            pass


class QueryServer:
    """Serve queries against one :class:`~repro.core.dbms.XmlDbms`.

    Thread-safe throughout: any number of client threads may ``submit``
    concurrently, and the wrapped dbms may still be used directly (e.g.
    an operator thread calling ``load`` while the server is running —
    in-flight queries finish on the old snapshot, later ones see the new
    document).
    """

    def __init__(self, dbms, workers: int = 4, max_pending: int = 64,
                 profile: EngineProfile | str = "m4",
                 time_limit: float | None = None,
                 memory_budget: int | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 plan_cache_capacity: int = 128):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}")
        self.dbms = dbms
        self.options = ExecutionOptions(profile=profile,
                                        time_limit=time_limit,
                                        memory_budget=memory_budget,
                                        batch_size=batch_size)
        self._plan_cache_capacity = plan_cache_capacity
        self._queue: queue.Queue = queue.Queue(maxsize=max_pending)
        # guarded by: self._lifecycle_lock
        self._closed = False
        #: Orders submissions against close(): a task admitted under this
        #: lock is guaranteed to precede the shutdown sentinels in the
        #: queue, so its future always resolves.
        self._lifecycle_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        # guarded by: self._stats_lock
        self._submitted = 0
        # guarded by: self._stats_lock
        self._completed = 0
        # guarded by: self._stats_lock
        self._failed = 0
        # guarded by: self._stats_lock
        self._cancelled = 0
        # guarded by: self._stats_lock
        self._rejected = 0
        # guarded by: self._stats_lock
        self._peak_pending = 0
        # guarded by: self._stats_lock
        self._queue_wait_hist = LatencyHistogram()
        # guarded by: self._stats_lock
        self._execution_hist = LatencyHistogram()
        #: Streams whose producer is (or will be) running; close()
        #: aborts them so shutdown never waits on an absent consumer.
        # guarded by: self._stats_lock
        self._streams: set[QueryStream] = set()
        #: The unified metrics surface: the worker pool and the storage
        #: layer register here; layers wrapping this server (network
        #: front end) join the same registry, so one METRICS page covers
        #: the whole process.  See ``repro.obs.metrics``.
        self.metrics_registry = MetricsRegistry()
        self.metrics_registry.register(
            "server", lambda: dataclasses.asdict(self.stats()))
        self.metrics_registry.register("storage", self._storage_metrics)
        self._workers = [
            threading.Thread(target=self._worker_loop,
                             name=f"query-server-worker-{index}",
                             daemon=True)
            for index in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # -- submission ----------------------------------------------------------

    def submit(self, document: str, query, bindings: dict | None = None,
               profile: EngineProfile | str | None = None,
               time_limit: float | None = _UNSET,
               memory_budget: int | None = _UNSET,
               batch_size: int = _UNSET,
               serialize: bool = False,
               indent: int | None = None,
               trace=None) -> Future:
        """Enqueue a query; returns a Future of its full result.

        The future resolves to the result node list, or to serialized
        XML text with ``serialize=True``.  Raises
        :class:`~repro.errors.ServerClosedError` after :meth:`close` and
        :class:`~repro.errors.AdmissionError` when the queue is at
        ``max_pending`` — admission control never blocks the caller.
        Execution errors (including a missed deadline) surface through
        the future.
        """
        # reprolint: disable=RL002 racy fast-fail only; _admit re-checks
        # under self._lifecycle_lock before the task becomes visible
        if self._closed:
            raise ServerClosedError("submit() on a closed QueryServer")
        time_limit = (self.options.time_limit if time_limit is _UNSET
                      else time_limit)
        memory_budget = (self.options.memory_budget
                         if memory_budget is _UNSET else memory_budget)
        if batch_size is _UNSET:
            batch_size = self.options.batch_size
        deadline = (time.monotonic() + time_limit
                    if time_limit is not None else None)
        task = _Task(future=Future(), document=document, query=query,
                     bindings=bindings,
                     profile=(self.options.profile if profile is None
                              else profile),
                     deadline=deadline, time_limit=time_limit,
                     memory_budget=memory_budget, batch_size=batch_size,
                     serialize=serialize, indent=indent, trace=trace)
        self._admit(task)
        return task.future

    def submit_stream(self, document: str, query,
                      bindings: dict | None = None,
                      profile: EngineProfile | str | None = None,
                      time_limit: float | None = _UNSET,
                      memory_budget: int | None = _UNSET,
                      batch_size: int = _UNSET,
                      serialize: bool = False,
                      indent: int | None = None,
                      page_size: int = DEFAULT_PAGE_SIZE,
                      max_buffered_pages: int = DEFAULT_MAX_BUFFERED_PAGES,
                      trace=None) -> QueryStream:
        """Enqueue a query whose results stream back page by page.

        Admission control, deadlines and worker scheduling are exactly
        :meth:`submit`'s; the difference is the result path — a
        :class:`QueryStream` whose pages the worker produces on demand
        under a bounded buffer (``max_buffered_pages``), holding a
        pinned snapshot ticket for the stream's lifetime so every page
        comes from one consistent snapshot (concurrent updates proceed;
        their versions are retained until the stream finishes).  The submission deadline
        covers the whole stream, including time spent blocked on a slow
        consumer: a stalled client turns into a
        :class:`~repro.errors.ResourceLimitExceeded` on its own stream,
        never an idle worker held forever.  The stream's ``future``
        resolves to the total row count when production finishes.
        """
        if page_size < 1:
            raise ValueError(f"page_size must be >= 1, got {page_size}")
        if max_buffered_pages < 1:
            raise ValueError(f"max_buffered_pages must be >= 1, got "
                             f"{max_buffered_pages}")
        # reprolint: disable=RL002 racy fast-fail only; _admit re-checks
        # under self._lifecycle_lock before the task becomes visible
        if self._closed:
            raise ServerClosedError("submit_stream() on a closed "
                                    "QueryServer")
        time_limit = (self.options.time_limit if time_limit is _UNSET
                      else time_limit)
        memory_budget = (self.options.memory_budget
                         if memory_budget is _UNSET else memory_budget)
        if batch_size is _UNSET:
            batch_size = self.options.batch_size
        deadline = (time.monotonic() + time_limit
                    if time_limit is not None else None)
        future: Future = Future()
        stream = QueryStream(future, page_size=page_size,
                             max_buffered_pages=max_buffered_pages,
                             document=document)
        task = _Task(future=future, document=document, query=query,
                     bindings=bindings,
                     profile=(self.options.profile if profile is None
                              else profile),
                     deadline=deadline, time_limit=time_limit,
                     memory_budget=memory_budget, batch_size=batch_size,
                     serialize=serialize, indent=indent,
                     sink=stream, page_size=page_size, trace=trace)
        # Registered before the task becomes visible: a worker finishing
        # the stream discards it from the set, which must never race
        # ahead of the add.
        with self._stats_lock:
            self._streams.add(stream)
        try:
            self._admit(task)
        except BaseException:
            with self._stats_lock:
                self._streams.discard(stream)
            raise
        return stream

    def _admit(self, task: _Task) -> None:
        """Enqueue under admission control (shared by both submit paths)."""
        task.enqueued_at = time.monotonic()
        with self._lifecycle_lock:
            # Re-checked under the lock: close() flips the flag under it
            # too, so a task admitted here is enqueued before the
            # shutdown sentinels and will be served (or cancelled).
            if self._closed:
                raise ServerClosedError("submit() on a closed QueryServer")
            # Counted *before* the task becomes visible to workers, so
            # the stats invariant (submitted ≥ completed + failed +
            # cancelled) holds under any interleaving.
            with self._stats_lock:
                self._submitted += 1
            try:
                self._queue.put_nowait(task)
            except queue.Full:
                with self._stats_lock:
                    self._submitted -= 1
                    self._rejected += 1
                raise AdmissionError(
                    f"query queue is full ({self._queue.maxsize} "
                    f"pending); resubmit after the backlog drains"
                ) from None
        with self._stats_lock:
            self._peak_pending = max(self._peak_pending,
                                     self._queue.qsize())

    def execute(self, document: str, query,
                bindings: dict | None = None, **overrides):
        """Submit and wait: the synchronous convenience wrapper."""
        return self.submit(document, query, bindings=bindings,
                           **overrides).result()

    def query(self, document: str, query,
              bindings: dict | None = None, **overrides) -> str:
        """Submit, wait and serialize in one call."""
        return self.submit(document, query, bindings=bindings,
                           serialize=True, **overrides).result()

    def load(self, document: str, xml: str | None = None,
             path: str | None = None):
        """Load (or replace) a document in the served database.

        Runs on the caller's thread, not a worker — a load is a bulk
        catalog operation, not a query, and must not occupy (or queue
        behind) the bounded worker pool.  Safe against in-flight
        queries: ``XmlDbms.load`` guarantees running executions finish
        on the old snapshot.  This is what the wire protocol's LOAD
        message calls, letting a shard mediator place documents on
        member processes at runtime.
        """
        # reprolint: disable=RL002 racy fast-fail; the underlying DBMS
        # rejects loads after close with its own synchronization
        if self._closed:
            raise ServerClosedError("load() on a closed QueryServer")
        return self.dbms.load(document, xml=xml, path=path)

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self) -> None:
        session = Session(self.dbms, profile=self.options.profile,
                          time_limit=self.options.time_limit,
                          memory_budget=self.options.memory_budget,
                          batch_size=self.options.batch_size,
                          plan_cache_capacity=self._plan_cache_capacity)
        while True:
            task = self._queue.get()
            if task is _SHUTDOWN:
                return
            started = time.monotonic()
            with self._stats_lock:
                self._queue_wait_hist.record(started - task.enqueued_at)
            if task.trace is not None:
                task.trace.event(
                    "queue",
                    duration_ms=(started - task.enqueued_at) * 1e3)
            if not task.future.set_running_or_notify_cancel():
                with self._stats_lock:
                    self._cancelled += 1
                continue
            if task.sink is not None:
                self._serve_stream(session, task, started)
                continue
            try:
                result = self._run(session, task)
            except BaseException as exc:  # the future carries it
                # Counters move before the future resolves: a caller
                # that returns from future.result() and immediately
                # reads stats() must see this query accounted for.
                with self._stats_lock:
                    self._failed += 1
                    self._execution_hist.record(time.monotonic() - started)
                task.future.set_exception(exc)
            else:
                with self._stats_lock:
                    self._completed += 1
                    self._execution_hist.record(time.monotonic() - started)
                task.future.set_result(result)

    def _serve_stream(self, session: Session, task: _Task,
                      started: float) -> None:
        """Produce a streaming task's pages; settle counters and future."""
        sink = task.sink
        try:
            rows = self._run_stream(session, task)
        except _StreamAborted:
            with self._stats_lock:
                self._cancelled += 1
                self._execution_hist.record(time.monotonic() - started)
                self._streams.discard(sink)
            task.future.set_result(None)
        except BaseException as exc:
            with self._stats_lock:
                self._failed += 1
                self._execution_hist.record(time.monotonic() - started)
                self._streams.discard(sink)
            # Deliver the error on both paths: next_page() raises it for
            # a consumer mid-fetch, the future for anyone awaiting the
            # outcome.
            sink._deliver_error(exc)
            task.future.set_exception(exc)
        else:
            with self._stats_lock:
                self._completed += 1
                self._execution_hist.record(time.monotonic() - started)
                self._streams.discard(sink)
            task.future.set_result(rows)

    def _run_stream(self, session: Session, task: _Task) -> int:
        """Execute a streaming task, pushing pages into its sink.

        A snapshot ticket is pinned for the whole stream — every page
        observes exactly the commits published before the pin, however
        long the consumer takes, and concurrent updates to the document
        proceed without waiting for the stream (their versions are
        retained until the ticket releases).
        """
        sink = task.sink
        trace = task.trace
        deadline_check = lambda: self._check_deadline(task)  # noqa: E731
        self._check_deadline(task)
        program = session._parse(task.query)
        if program.is_updating:
            raise UpdateError("updating statements do not stream; "
                              "submit them with submit()")
        profiler = PlanProfiler() if trace is not None else None
        exec_cm = (trace.span("execute", document=task.document)
                   if trace is not None else contextlib.nullcontext())
        with self.dbms.read_ticket(task.document) as ticket:
            sink.snapshot_lsn = ticket.snapshot_lsn
            prepared = session.prepare(task.document, program,
                                       profile=task.profile)
            sink.plan_cache_hit = prepared.from_cache
            remaining = self._check_deadline(task)
            with exec_cm as span:
                with prepared.execute(bindings=task.bindings,
                                      time_limit=remaining,
                                      memory_budget=task.memory_budget,
                                      batch_size=task.batch_size,
                                      profiler=profiler,
                                      trace=trace) as cursor:
                    while True:
                        nodes = cursor.fetch(task.page_size)
                        if nodes:
                            page = ([_serialize_node(node,
                                                     indent=task.indent)
                                     for node in nodes]
                                    if task.serialize else nodes)
                            sink._offer(("page", page), deadline_check)
                            sink.rows_produced += len(nodes)
                        if len(nodes) < task.page_size:
                            break
                if span is not None:
                    span.attach(profiler.as_span_dicts())
                    span.attributes.update(
                        rows=sink.rows_produced,
                        plan_cache_hit=prepared.from_cache,
                        snapshot_lsn=ticket.snapshot_lsn)
        sink._offer(("end", None), deadline_check)
        return sink.rows_produced

    def _run(self, session: Session, task: _Task):
        self._check_deadline(task)    # fail fast on queue-expired work
        program = session._parse(task.query)
        if program.is_updating:
            # Updates run concurrently with the snapshot reads below —
            # they serialize only against each other (and at the
            # version-install step inside commit publish), never against
            # readers.  The transaction is not interruptible, so the
            # deadline is only enforced up front.
            if task.serialize:
                raise UpdateError("updating statements have no "
                                  "serialized result; submit with "
                                  "serialize=False")
            if task.trace is None:
                return self.dbms.update(task.document, program,
                                        bindings=task.bindings)
            with task.trace.span("update", document=task.document):
                return self.dbms.update(task.document, program,
                                        bindings=task.bindings)
        trace = task.trace
        profiler = PlanProfiler() if trace is not None else None
        exec_cm = (trace.span("execute", document=task.document)
                   if trace is not None else contextlib.nullcontext())
        with self.dbms.read_ticket(task.document):
            prepared = session.prepare(task.document, program,
                                       profile=task.profile)
            # The deadline is re-taken *after* prepare: compilation
            # counts against the submission deadline exactly like queue
            # wait does.
            remaining = self._check_deadline(task)
            with exec_cm as span:
                with prepared.execute(bindings=task.bindings,
                                      time_limit=remaining,
                                      memory_budget=task.memory_budget,
                                      batch_size=task.batch_size,
                                      profiler=profiler,
                                      trace=trace) as cursor:
                    result = (cursor.serialize(indent=task.indent)
                              if task.serialize else cursor.fetchall())
                if span is not None:
                    span.attach(profiler.as_span_dicts())
                    span.attributes["plan_cache_hit"] = prepared.from_cache
                return result

    @staticmethod
    def _check_deadline(task: _Task) -> float | None:
        """Seconds left until the task's submission deadline (``None``
        when unlimited); raises once it has passed."""
        if task.deadline is None:
            return None
        remaining = task.deadline - time.monotonic()
        if remaining <= 0:
            raise ResourceLimitExceeded("time", task.time_limit,
                                        task.time_limit - remaining)
        return remaining

    # -- introspection -------------------------------------------------------

    def _storage_metrics(self) -> dict:
        """Buffer-pool counters for the metrics registry."""
        stats = self.dbms.buffer_stats
        return {"buffer_hits": stats.hits,
                "buffer_misses": stats.misses,
                "buffer_evictions": stats.evictions,
                "buffer_dirty_writebacks": stats.dirty_writebacks,
                "buffer_hit_rate": round(stats.hit_rate, 6)}

    def stats(self) -> ServerStats:
        # Storage counters are sampled outside the stats lock: they take
        # the buffer pool's mutex, and no lock order between the two is
        # established anywhere else.
        mvcc = self.dbms.mvcc_stats()
        with self._stats_lock:
            return ServerStats(workers=len(self._workers),
                               max_pending=self._queue.maxsize,
                               submitted=self._submitted,
                               completed=self._completed,
                               failed=self._failed,
                               cancelled=self._cancelled,
                               rejected=self._rejected,
                               pending=self._queue.qsize(),
                               peak_pending=self._peak_pending,
                               queue_wait=self._queue_wait_hist.snapshot(),
                               execution=self._execution_hist.snapshot(),
                               snapshots_pinned=mvcc["snapshots_pinned"],
                               snapshots_opened=mvcc["snapshots_opened"],
                               snapshot_reads=mvcc["versioned_reads"],
                               versions_retained=mvcc["versions_retained"],
                               group_commits=mvcc["group_commits"],
                               group_fsyncs=mvcc["group_fsyncs"],
                               fsyncs_saved=mvcc["fsyncs_saved"])

    # -- lifecycle -----------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and shut the pool down.

        Idempotent and safe to call from any number of threads at once:
        exactly one caller performs the shutdown, every caller returns
        only after the workers have exited, and racing ``submit``s
        either land before the shutdown sentinels (their futures
        resolve) or raise :class:`~repro.errors.ServerClosedError` —
        never a deadlock either way.

        ``wait=True`` (default) drains the queue: everything already
        admitted runs to completion before the workers exit.
        ``wait=False`` cancels still-queued tasks (their futures report
        ``cancelled()``); the queries currently executing still finish,
        and their futures resolve normally.  Open streams are aborted in
        both modes — a stream's completion depends on its consumer, and
        shutdown must not wait on one that stopped fetching; their
        consumers see :class:`~repro.errors.ServerClosedError`.
        """
        with self._lifecycle_lock:
            first = not self._closed
            self._closed = True
        if first:
            # Streams first: a producer blocked on a full page buffer
            # must wake and release its worker before the join below.
            with self._stats_lock:
                streams = list(self._streams)
            for stream in streams:
                stream.close(ServerClosedError(
                    "QueryServer closed while the stream was open"))
            if not wait:
                while True:
                    try:
                        task = self._queue.get_nowait()
                    except queue.Empty:
                        break
                    if task is not _SHUTDOWN and task.future.cancel():
                        with self._stats_lock:
                            self._cancelled += 1
                            if task.sink is not None:
                                self._streams.discard(task.sink)
            for __ in self._workers:
                self._queue.put(_SHUTDOWN)
        # Every caller (first or not) waits for the pool to exit, so a
        # second close() returning is as strong a guarantee as the first.
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
