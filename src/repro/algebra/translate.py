"""XQ → TPM translation: the rewrite rules of milestone 3.

The two headline rules (child and descendant steps)::

    for $y in $x/a return α
      ⊢ relfor ($y) in PSX(R.in, R.parent_in=$x ∧ R.type=elem ∧
                           R.value=a, XASR[R]) return α

    for $y in $x//a return α
      ⊢ relfor ($y) in PSX(R.in, $x.in<R.in ∧ R.out<$x.out ∧
                           R.type=elem ∧ R.value=a, XASR[R]) return α

The descendant rule here uses the paper's vartuple extension (vartuples
carry out-values), which "avoids the overhead" of the extra self-join
``XASR[R1]`` with ``R1.in = $x``; pass ``carry_out_values=False`` to get
the original two-relation form from the paper verbatim (the ablation
benchmark compares both).

If-expressions with conditions built from ``some``, ``and`` and text
equality translate to the nullary-relfor form::

    if φ then α else ()   ⊢   relfor () in ALG(φ) return α

Fragments the TPM algebra cannot express (``or``, ``not``, comparisons
against for-bound variables) are attached to the PSX block as *residual*
predicates, so every XQ query still runs through the algebraic pipeline
with unchanged semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.ra import (
    Attr,
    Compare,
    Const,
    EQ,
    GT,
    LT,
    PSX,
    Residual,
    TYPE_ELEMENT,
    TYPE_TEXT,
    VarField,
)
from repro.algebra.tpm import (
    RelFor,
    TpmConstr,
    TpmEmpty,
    TpmExpr,
    TpmSequence,
    TpmText,
    TpmVarOut,
)
from repro.errors import AlgebraError
from repro.xq.ast import (
    And,
    Axis,
    Condition,
    Constr,
    Empty,
    For,
    If,
    LabelTest,
    NodeTest,
    Not,
    Or,
    Program,
    Query,
    Sequence,
    Some,
    Step,
    TextLiteral,
    TextTest,
    TrueCond,
    Var,
    VarCmpConst,
    VarEqConst,
    VarEqVar,
    WildcardTest,
    free_variables,
)


@dataclass
class _Context:
    """Mutable translation state: fresh alias generation and scoping.

    ``scope`` maps variables bound *inside the current PSX block being
    assembled* (for-bound by this relfor or some-bound in its condition) to
    ``(alias, binds_text_nodes)``.
    """

    carry_out_values: bool = True
    _alias_counter: int = 0
    scope: dict[str, tuple[str, bool]] = field(default_factory=dict)

    def fresh_alias(self, test: NodeTest) -> str:
        self._alias_counter += 1
        if isinstance(test, LabelTest) and test.name[:1].isalpha():
            letter = test.name[0].upper()
        elif isinstance(test, TextTest):
            letter = "T"
        else:
            letter = "R"
        return f"{letter}{self._alias_counter}"


def translate(query: Query, carry_out_values: bool = True) -> TpmExpr:
    """Translate an XQ query into a TPM operator tree.

    ``carry_out_values=False`` reproduces the paper's original descendant
    rule with the extra ``XASR[R1]`` self-join (useful with
    :func:`~repro.algebra.merge.eliminate_redundant_relations`, which is
    exactly the cleanup Example 4 performs on it).

    External variables (prepared-query parameters) need no special
    treatment here: a free variable is referenced through the vartuple
    environment (:class:`~repro.algebra.ra.VarField`) when it anchors a
    step, and comparisons against it become residual predicates resolved
    from the environment at execution time.  The TPM tree and its physical
    plans are therefore *independent of the bound values* — one plan
    serves every execution of a parameterized query.
    """
    context = _Context(carry_out_values=carry_out_values)
    return _translate(query, context)


def translate_program(program: Program,
                      carry_out_values: bool = True) -> TpmExpr:
    """Translate a full XQ program (prolog + query body).

    The external declarations do not affect the algebra (see
    :func:`translate`); they matter to the session layer, which validates
    bindings against them before execution.
    """
    return translate(program.body, carry_out_values=carry_out_values)


def _translate(query: Query, context: _Context) -> TpmExpr:
    if isinstance(query, Empty):
        return TpmEmpty()
    if isinstance(query, TextLiteral):
        return TpmText(query.text)
    if isinstance(query, Var):
        return TpmVarOut(query.name)
    if isinstance(query, Constr):
        return TpmConstr(query.label, _translate(query.body, context))
    if isinstance(query, Sequence):
        parts: list[TpmExpr] = []
        for part in _flatten(query):
            parts.append(_translate(part, context))
        return TpmSequence(tuple(parts))
    if isinstance(query, Step):
        # A bare step used as a query: bind a fresh variable and output it.
        context._alias_counter += 1
        fresh = f"#s{context._alias_counter}"
        psx = _step_psx(fresh, query, context)
        return RelFor((fresh,), psx, TpmVarOut(fresh))
    if isinstance(query, For):
        psx = _step_psx(query.var, query.source, context)
        return RelFor((query.var,), psx, _translate(query.body, context))
    if isinstance(query, If):
        conds, rels, residuals = _translate_condition(query.cond, context)
        psx = PSX(bindings=(), conditions=tuple(conds),
                  relations=tuple(rels), residuals=tuple(residuals))
        return RelFor((), psx, _translate(query.body, context))
    raise AlgebraError(f"cannot translate query node {query!r}")


def _flatten(query: Query) -> list[Query]:
    if isinstance(query, Sequence):
        return _flatten(query.left) + _flatten(query.right)
    return [query]


def _step_psx(var: str, step: Step, context: _Context) -> PSX:
    """PSX block binding ``var`` via one navigation step from an external
    variable."""
    alias = context.fresh_alias(step.test)
    conditions, relations = _step_conditions(alias, step, context)
    return PSX(bindings=((var, alias),), conditions=tuple(conditions),
               relations=tuple(relations))


def _step_conditions(alias: str, step: Step, context: _Context
                     ) -> tuple[list[Compare], list[str]]:
    """Conditions and relations realizing ``$base/axis::test`` for
    ``alias``.

    When the base variable is some-bound *within the PSX block under
    construction* (``context.scope``), it is referenced as an attribute of
    its binding relation; otherwise it is external and referenced through
    the vartuple (:class:`~repro.algebra.ra.VarField`).
    """
    conditions: list[Compare] = []
    relations = [alias]
    base = step.var
    scoped = context.scope.get(base)
    if scoped is not None:
        base_in = Attr(scoped[0], "in")
        base_out = Attr(scoped[0], "out")
    else:
        base_in = VarField(base, "in")
        base_out = VarField(base, "out")
    if step.axis is Axis.CHILD:
        conditions.append(Compare(Attr(alias, "parent_in"), EQ, base_in))
    elif context.carry_out_values or scoped is not None:
        conditions.append(Compare(base_in, LT, Attr(alias, "in")))
        conditions.append(Compare(Attr(alias, "out"), LT, base_out))
    else:
        # The paper's original rule: a second XASR occurrence anchored to
        # the external variable by its in-value.
        anchor = context.fresh_alias(WildcardTest())
        relations.insert(0, anchor)
        conditions.append(Compare(Attr(anchor, "in"), EQ, base_in))
        conditions.append(Compare(Attr(anchor, "in"), LT,
                                  Attr(alias, "in")))
        conditions.append(Compare(Attr(alias, "out"), LT,
                                  Attr(anchor, "out")))
    test = step.test
    if isinstance(test, LabelTest):
        conditions.append(Compare(Attr(alias, "type"), EQ, TYPE_ELEMENT))
        conditions.append(Compare(Attr(alias, "value"), EQ,
                                  Const(test.name)))
    elif isinstance(test, WildcardTest):
        conditions.append(Compare(Attr(alias, "type"), EQ, TYPE_ELEMENT))
    elif isinstance(test, TextTest):
        conditions.append(Compare(Attr(alias, "type"), EQ, TYPE_TEXT))
    else:  # pragma: no cover - defensive
        raise AlgebraError(f"unknown node test {test!r}")
    return conditions, relations


# --------------------------------------------------------------------------
# Conditions
# --------------------------------------------------------------------------


def _translate_condition(cond: Condition, context: _Context
                         ) -> tuple[list[Compare], list[str],
                                    list[Residual]]:
    """ALG(φ): conditions + relations + residuals for an if/some condition.

    The translation scope (``context.scope``) tracks some-bound variables
    so equality tests on them become value conditions; everything the TPM
    fragment cannot express is wrapped as a residual over the same scope.
    """
    if isinstance(cond, TrueCond):
        return [], [], []
    if isinstance(cond, And):
        left = _translate_condition(cond.left, context)
        right = _translate_condition(cond.right, context)
        return ([*left[0], *right[0]], [*left[1], *right[1]],
                [*left[2], *right[2]])
    if isinstance(cond, Some):
        alias = context.fresh_alias(cond.source.test)
        conditions, relations = _step_conditions(alias, cond.source, context)
        # Fix up relations list when the non-carrying descendant rule added
        # an anchor alias: the bound alias is always the step's own.
        binds_text = isinstance(cond.source.test, TextTest)
        saved = context.scope.get(cond.var)
        context.scope[cond.var] = (alias, binds_text)
        inner = _translate_condition(cond.cond, context)
        if saved is None:
            del context.scope[cond.var]
        else:
            context.scope[cond.var] = saved
        return ([*conditions, *inner[0]], [*relations, *inner[1]], inner[2])
    if isinstance(cond, VarEqConst):
        bound = context.scope.get(cond.var)
        if bound is not None and bound[1]:
            alias = bound[0]
            return [Compare(Attr(alias, "value"), EQ, Const(cond.literal))], \
                [], []
        return [], [], [_residual(cond, context)]
    if isinstance(cond, VarCmpConst):
        bound = context.scope.get(cond.var)
        if bound is not None and bound[1]:
            alias = bound[0]
            op = LT if cond.op == "<" else GT
            return [Compare(Attr(alias, "value"), op,
                            Const(cond.literal))], [], []
        return [], [], [_residual(cond, context)]
    if isinstance(cond, VarEqVar):
        left = context.scope.get(cond.left)
        right = context.scope.get(cond.right)
        if left is not None and left[1] and right is not None and right[1]:
            return [Compare(Attr(left[0], "value"), EQ,
                            Attr(right[0], "value"))], [], []
        return [], [], [_residual(cond, context)]
    if isinstance(cond, (Or, Not)):
        return [], [], [_residual(cond, context)]
    raise AlgebraError(f"cannot translate condition {cond!r}")


def _residual(cond: Condition, context: _Context) -> Residual:
    """Wrap ``cond`` as a residual, recording how its free variables are
    reached (PSX alias for some-bound vars, external environment
    otherwise)."""
    bound: list[tuple[str, tuple[str, str]]] = []
    for var in sorted(free_variables(cond)):
        scoped = context.scope.get(var)
        if scoped is not None:
            bound.append((var, ("alias", scoped[0])))
        else:
            bound.append((var, ("var", var)))
    return Residual(cond=cond, bound=tuple(bound))
