"""Hierarchical document order.

The paper (footnote 1): a relation R of in-value tuples is *sorted
hierarchically in document order* if for all tᵢ, tⱼ ∈ R with i < j there
is an attribute Aₖ such that tᵢ.Aₗ = tⱼ.Aₗ for all l < k and
tᵢ.Aₖ < tⱼ.Aₖ.  That is precisely ascending lexicographic order on the
tuple of in-values — which is why order-preserving physical plans plus the
right join order make sorting unnecessary.

These helpers are shared by the projection operator (one-pass duplicate
elimination needs sorted input), the external-sort path, and tests that
assert engines deliver bindings in the required order.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.xasr.schema import XasrNode


def hierarchical_key(nodes: Sequence[XasrNode]) -> tuple[int, ...]:
    """Sort key of a binding tuple: the in-values, vartuple order."""
    return tuple(node.in_ for node in nodes)


def is_hierarchically_sorted(tuples: Sequence[Sequence[XasrNode]]) -> bool:
    """True if the tuple sequence satisfies the footnote-1 definition
    (strictly ascending: duplicates removed)."""
    previous: tuple[int, ...] | None = None
    for row in tuples:
        key = hierarchical_key(row)
        if previous is not None and key <= previous:
            return False
        previous = key
    return True


def is_weakly_sorted(tuples: Sequence[Sequence[XasrNode]]) -> bool:
    """Ascending with duplicates allowed (pre-projection streams)."""
    previous: tuple[int, ...] | None = None
    for row in tuples:
        key = hierarchical_key(row)
        if previous is not None and key < previous:
            return False
        previous = key
    return True
