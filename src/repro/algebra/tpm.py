"""The TPM operator tree.

A translated query is a tree of:

* :class:`RelFor` — ``relfor vartuple in psx return body``: evaluate the
  PSX block (a relation of (in, out) pairs, hierarchically sorted in
  document order), bind the vartuple successively to each tuple, and
  evaluate the body per binding, concatenating results;
* :class:`TpmConstr` — node construction around a body;
* :class:`TpmSequence` — concatenation;
* :class:`TpmVarOut` — output leaf: write the subtree bound to a variable;
* :class:`TpmText` — a literal text node;
* :class:`TpmEmpty` — the empty result;
* :class:`TpmIf` — a *residual* conditional the TPM fragment cannot
  algebraize (``or``/``not`` at the top level); evaluated navigationally.

The nullary-relfor trick from the paper is used for translatable
if-conditions: ``if φ then α`` becomes ``relfor () in ALG(φ) return α``,
where the empty projection yields either the nullary relation with the
empty tuple ("true": evaluate the body once) or the empty relation
("false").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.ra import PSX


class TpmExpr:
    """Base class of TPM expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class TpmEmpty(TpmExpr):
    def describe(self, indent: int = 0) -> str:
        return " " * indent + "()"


@dataclass(frozen=True)
class TpmText(TpmExpr):
    text: str

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"text({self.text!r})"


@dataclass(frozen=True)
class TpmVarOut(TpmExpr):
    """Write the subtree bound to ``var`` to the output."""

    var: str

    def describe(self, indent: int = 0) -> str:
        return " " * indent + f"${self.var}"


@dataclass(frozen=True)
class TpmConstr(TpmExpr):
    label: str
    body: TpmExpr

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        return (f"{pad}constr({self.label})\n"
                f"{self.body.describe(indent + 2)}")


@dataclass(frozen=True)
class TpmSequence(TpmExpr):
    parts: tuple[TpmExpr, ...]

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        inner = "\n".join(part.describe(indent + 2) for part in self.parts)
        return f"{pad}seq\n{inner}"


@dataclass(frozen=True)
class RelFor(TpmExpr):
    """``relfor vartuple in source return body``."""

    vartuple: tuple[str, ...]
    source: PSX
    body: TpmExpr

    def describe(self, indent: int = 0) -> str:
        pad = " " * indent
        vars_ = ", ".join(f"${name}" for name in self.vartuple)
        return (f"{pad}relfor ({vars_}) in {self.source.describe()}\n"
                f"{self.body.describe(indent + 2)}")


@dataclass(frozen=True)
class TpmIf(TpmExpr):
    """Residual conditional (not algebraizable); ``cond`` is an XQ
    condition evaluated navigationally against the current bindings."""

    cond: object
    body: TpmExpr

    def describe(self, indent: int = 0) -> str:
        from repro.xq.pretty import unparse

        pad = " " * indent
        return (f"{pad}if*({unparse(self.cond)})\n"
                f"{self.body.describe(indent + 2)}")


def count_relfors(expr: TpmExpr) -> int:
    """Number of relfor operators in a TPM tree (merging metric)."""
    if isinstance(expr, RelFor):
        return 1 + count_relfors(expr.body)
    if isinstance(expr, TpmConstr):
        return count_relfors(expr.body)
    if isinstance(expr, TpmSequence):
        return sum(count_relfors(part) for part in expr.parts)
    if isinstance(expr, TpmIf):
        return count_relfors(expr.body)
    return 0
