"""The TPM algebra and XQ→TPM translation (milestone 3).

TPM ("the professor's mistake") is the paper's deliberately small query
algebra: projections, selections, cross products, joins over the XASR
relation, plus the ``relfor`` super-for-loop operator.  "We have gracefully
reduced the problem of optimizing XQuery to that of optimizing relational
algebra queries."

Modules:

* :mod:`~repro.algebra.ra` — relational expressions in PSX
  (project-select-product) normal form, attributes, atomic conditions;
* :mod:`~repro.algebra.tpm` — the TPM operator tree (``relfor``,
  constructors, output leaves);
* :mod:`~repro.algebra.translate` — the rewrite rules of milestone 3
  (for-loops and if-conditions into relfor/PSX);
* :mod:`~repro.algebra.merge` — relfor merging, with the paper's strict
  legality rule around node construction, and redundant-relation
  elimination (Example 4);
* :mod:`~repro.algebra.order` — hierarchical document order: definitions
  and checks used by the planner's order-preservation reasoning.
"""

from repro.algebra.ra import (
    Attr,
    Compare,
    Const,
    EQ,
    GT,
    LT,
    PSX,
    VarField,
)
from repro.algebra.tpm import (
    RelFor,
    TpmConstr,
    TpmEmpty,
    TpmExpr,
    TpmIf,
    TpmSequence,
    TpmText,
    TpmVarOut,
)
from repro.algebra.translate import translate
from repro.algebra.merge import eliminate_redundant_relations, merge_relfors

__all__ = [
    "Attr",
    "Const",
    "VarField",
    "Compare",
    "EQ",
    "LT",
    "GT",
    "PSX",
    "TpmExpr",
    "RelFor",
    "TpmConstr",
    "TpmSequence",
    "TpmVarOut",
    "TpmText",
    "TpmEmpty",
    "TpmIf",
    "translate",
    "merge_relfors",
    "eliminate_redundant_relations",
]
