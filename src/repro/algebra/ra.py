"""Relational algebra in PSX normal form over the XASR relation.

The paper calls a relational algebra expression *project-select-product
normal form* (PSX) when it has the shape::

    π_{A1..Am} ( σ_{φ1 ∧ ... ∧ φk} ( R1 × ... × Rn ) )

with atomic conditions ``A = A'``, ``A = c`` (the translation also emits
``<``/``>`` atoms for the descendant interval containment).  Every relation
``Ri`` is an alias of the XASR relation of the queried document.

Operands of atomic conditions:

* :class:`Attr` — ``alias.column`` with column ∈ {in, out, parent_in,
  type, value};
* :class:`Const` — an integer or string constant;
* :class:`VarField` — the ``in`` or ``out`` value of an *external*
  variable (one bound by an enclosing relfor).  The paper's "modifying the
  vartuples in relfor-expressions so that they also contain the out-value
  of the bound nodes" extension is adopted throughout, so both fields are
  available without extra joins.

Besides algebraic conditions, a PSX block may carry **residual
predicates** — XQ conditions that the TPM fragment cannot express
(``or``/``not`` and text-value comparisons against for-bound variables).
The paper restricted translation to conditions "constructed using some,
and, and equality tests"; residuals are how the full XQ language keeps
working on every engine: they are evaluated per candidate tuple, after the
algebraic part.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AlgebraError
from repro.xasr.schema import ELEMENT, ROOT, TEXT, XasrNode

#: XASR column names.
COLUMNS = ("in", "out", "parent_in", "type", "value")

#: Comparison operators of atomic conditions.
EQ = "="
LT = "<"
GT = ">"


@dataclass(frozen=True)
class Attr:
    """``alias.column`` — a column of one relation occurrence."""

    alias: str
    column: str

    def __post_init__(self) -> None:
        if self.column not in COLUMNS:
            raise AlgebraError(f"unknown XASR column {self.column!r}")

    def __str__(self) -> str:
        return f"{self.alias}.{self.column}"


@dataclass(frozen=True)
class Const:
    """A literal operand (int for numeric columns, str for value/type)."""

    value: int | str

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)


@dataclass(frozen=True)
class VarField:
    """The in/out value of an externally-bound variable."""

    var: str
    fld: str  # "in" | "out"

    def __post_init__(self) -> None:
        if self.fld not in ("in", "out"):
            raise AlgebraError(f"VarField field must be in/out, got "
                               f"{self.fld!r}")

    def __str__(self) -> str:
        return f"${self.var}.{self.fld}"


Operand = Attr | Const | VarField


@dataclass(frozen=True)
class Compare:
    """An atomic condition ``left op right``."""

    left: Operand
    op: str
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in (EQ, LT, GT):
            raise AlgebraError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    # -- analysis helpers ---------------------------------------------------

    def aliases(self) -> frozenset[str]:
        """Relation aliases this condition mentions."""
        found = set()
        for operand in (self.left, self.right):
            if isinstance(operand, Attr):
                found.add(operand.alias)
        return frozenset(found)

    def external_vars(self) -> frozenset[str]:
        found = set()
        for operand in (self.left, self.right):
            if isinstance(operand, VarField):
                found.add(operand.var)
        return frozenset(found)

    def is_join_condition(self) -> bool:
        """Mentions two distinct relation aliases."""
        return len(self.aliases()) == 2

    def flipped(self) -> "Compare":
        """The same condition with operands swapped (`<` ↔ `>`)."""
        flip = {EQ: EQ, LT: GT, GT: LT}
        return Compare(self.right, flip[self.op], self.left)

    def normalized(self) -> "Compare":
        """Canonical operand order: Attr first, then by string form."""
        rank = {Attr: 0, VarField: 1, Const: 2}
        left_rank = (rank[type(self.left)], str(self.left))
        right_rank = (rank[type(self.right)], str(self.right))
        if left_rank <= right_rank:
            return self
        return self.flipped()

    def evaluate(self, get_attr, get_var) -> bool:
        """Evaluate given accessor callables.

        ``get_attr(alias, column)`` and ``get_var(var, field)`` return the
        operand values for the current candidate tuple.
        """
        left = _operand_value(self.left, get_attr, get_var)
        right = _operand_value(self.right, get_attr, get_var)
        if self.op == EQ:
            return left == right
        if self.op == LT:
            return left < right
        return left > right


def _operand_value(operand: Operand, get_attr, get_var):
    if isinstance(operand, Attr):
        return get_attr(operand.alias, operand.column)
    if isinstance(operand, VarField):
        return get_var(operand.var, operand.fld)
    return operand.value


def attr_value(node: XasrNode, column: str):
    """Read an XASR column off a decoded node."""
    if column == "in":
        return node.in_
    if column == "out":
        return node.out
    if column == "parent_in":
        return node.parent_in
    if column == "type":
        return node.type
    if column == "value":
        return node.value
    raise AlgebraError(f"unknown XASR column {column!r}")


#: Constants for the ``type`` column, matching :mod:`repro.xasr.schema`.
TYPE_ROOT = Const(ROOT)
TYPE_ELEMENT = Const(ELEMENT)
TYPE_TEXT = Const(TEXT)


@dataclass(frozen=True)
class Residual:
    """A non-algebraic predicate evaluated per candidate tuple.

    ``cond`` is an XQ :class:`~repro.xq.ast.Condition`; ``bound`` maps the
    XQ variables it mentions to either a relation alias in this PSX block
    (value ``("alias", name)``) or an external variable (value
    ``("var", name)``).
    """

    cond: object
    bound: tuple[tuple[str, tuple[str, str]], ...]

    def __str__(self) -> str:
        from repro.xq.pretty import unparse

        return f"residual[{unparse(self.cond)}]"


@dataclass(frozen=True)
class PSX:
    """A PSX-normal-form block.

    ``bindings`` aligns projected variables with the relation alias that
    binds each of them: the block's result is, conceptually,
    ``π_{(A1.in, A1.out), ...}(σ_φ(R1 × ... × Rn))`` — one (in, out) pair
    per bound variable, in vartuple order.
    """

    bindings: tuple[tuple[str, str], ...]   # (variable, alias)
    conditions: tuple[Compare, ...]
    relations: tuple[str, ...]              # aliases, syntactic order
    residuals: tuple[Residual, ...] = ()

    def __post_init__(self) -> None:
        known = set(self.relations)
        for __, alias in self.bindings:
            if alias not in known:
                raise AlgebraError(f"binding alias {alias!r} is not among "
                                   f"relations {self.relations}")
        for condition in self.conditions:
            unknown = condition.aliases() - known
            if unknown:
                raise AlgebraError(f"condition {condition} references "
                                   f"unknown aliases {sorted(unknown)}")

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(var for var, __ in self.bindings)

    @property
    def projected_aliases(self) -> tuple[str, ...]:
        return tuple(alias for __, alias in self.bindings)

    def alias_of(self, var: str) -> str:
        for variable, alias in self.bindings:
            if variable == var:
                return alias
        raise AlgebraError(f"variable {var!r} is not bound by this PSX")

    def external_vars(self) -> frozenset[str]:
        """External variables referenced by conditions or residuals."""
        found: set[str] = set()
        for condition in self.conditions:
            found |= condition.external_vars()
        for residual in self.residuals:
            for __, (kind, name) in residual.bound:
                if kind == "var":
                    found.add(name)
        return frozenset(found)

    def local_conditions(self, alias: str) -> list[Compare]:
        """Conditions touching only ``alias`` (plus constants/externals)."""
        return [condition for condition in self.conditions
                if condition.aliases() == frozenset({alias})]

    def join_conditions(self) -> list[Compare]:
        return [condition for condition in self.conditions
                if condition.is_join_condition()]

    def describe(self) -> str:
        """Compact rendering in the paper's PSX((...), φ, (...)) notation."""
        attrs = ", ".join(f"{alias}.in" for __, alias in self.bindings)
        conds = " ∧ ".join(str(condition) for condition in self.conditions)
        if self.residuals:
            extra = " ∧ ".join(str(residual) for residual in self.residuals)
            conds = f"{conds} ∧ {extra}" if conds else extra
        rels = ", ".join(f"XASR[{alias}]" for alias in self.relations)
        return f"PSX(({attrs}), {conds or 'true'}, ({rels}))"
