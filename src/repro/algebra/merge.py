"""Relfor merging and redundant-relation elimination (milestone 3).

The merging rule (names pairwise different)::

    relfor (x⃗) in PSX(A⃗, φ, R⃗) return
        relfor (y⃗) in PSX(B⃗, ψ, S⃗) return α
    ⊢ relfor (x⃗, y⃗) in PSX((A⃗, B⃗), φ ∧ ψ′, (R⃗, S⃗)) return α

where ψ′ replaces each occurrence of an outer variable $xᵢ by its
projection attribute Aᵢ.

**Strict merging.**  The paper stresses that merging is illegal when
anything — in particular node construction — sits *between* the two
relfors: "for documents containing journal-nodes without children, the
construction of empty j-labeled nodes must still be performed".  This
module enforces that structurally: it only merges a relfor whose body *is*
another relfor.  Constructors, sequences and residual ifs in between make
the pattern not match, which is precisely the legality condition.

**Redundant relations** (the Example 4 note "because N1.in = $j = J.in,
the relations J and N1 are the same and we can safely drop N1"): a
relation that is pinned to another relation or to an external variable by
an equality on ``in`` can be substituted away, provided every column it
contributes is recoverable from the substitute.
"""

from __future__ import annotations

from repro.algebra.ra import (
    Attr,
    Compare,
    Const,
    EQ,
    GT,
    LT,
    PSX,
    Residual,
    VarField,
)
from repro.algebra.tpm import (
    RelFor,
    TpmConstr,
    TpmExpr,
    TpmIf,
    TpmSequence,
)


def merge_relfors(expr: TpmExpr) -> TpmExpr:
    """Merge directly-nested relfors throughout a TPM tree."""
    if isinstance(expr, RelFor):
        body = merge_relfors(expr.body)
        while isinstance(body, RelFor):
            merged = _merge_pair(expr.vartuple, expr.source, body)
            if merged is None:
                break
            expr = merged
            body = merge_relfors(expr.body)
        if isinstance(expr, RelFor):
            return RelFor(expr.vartuple, expr.source, body)
        return expr
    if isinstance(expr, TpmConstr):
        return TpmConstr(expr.label, merge_relfors(expr.body))
    if isinstance(expr, TpmSequence):
        return TpmSequence(tuple(merge_relfors(part)
                                 for part in expr.parts))
    if isinstance(expr, TpmIf):
        return TpmIf(expr.cond, merge_relfors(expr.body))
    return expr


def _merge_pair(outer_vars: tuple[str, ...], outer: PSX, inner_relfor: RelFor
                ) -> RelFor | None:
    """Merge one outer relfor with its immediate inner relfor."""
    inner = inner_relfor.source
    if set(outer.relations) & set(inner.relations):
        return None  # aliases must be pairwise different
    outer_binding = dict(outer.bindings)

    def substitute(operand):
        if isinstance(operand, VarField) and operand.var in outer_binding:
            return Attr(outer_binding[operand.var], operand.fld)
        return operand

    new_conditions = list(outer.conditions)
    for condition in inner.conditions:
        new_conditions.append(Compare(substitute(condition.left),
                                      condition.op,
                                      substitute(condition.right)))
    new_residuals = list(outer.residuals)
    for residual in inner.residuals:
        rebound = []
        for var, (kind, name) in residual.bound:
            if kind == "var" and name in outer_binding:
                rebound.append((var, ("alias", outer_binding[name])))
            else:
                rebound.append((var, (kind, name)))
        new_residuals.append(Residual(residual.cond, tuple(rebound)))

    merged_psx = PSX(
        bindings=outer.bindings + inner.bindings,
        conditions=tuple(new_conditions),
        relations=outer.relations + inner.relations,
        residuals=tuple(new_residuals))
    return RelFor(outer_vars + inner_relfor.vartuple, merged_psx,
                  inner_relfor.body)


# --------------------------------------------------------------------------
# Redundant-relation elimination (Example 4)
# --------------------------------------------------------------------------

_SUBSTITUTABLE_BY_VAR = frozenset({"in", "out"})


def eliminate_redundant_relations(expr: TpmExpr) -> TpmExpr:
    """Apply :func:`eliminate_in_psx` to every PSX block in a tree."""
    if isinstance(expr, RelFor):
        return RelFor(expr.vartuple, eliminate_in_psx(expr.source),
                      eliminate_redundant_relations(expr.body))
    if isinstance(expr, TpmConstr):
        return TpmConstr(expr.label,
                         eliminate_redundant_relations(expr.body))
    if isinstance(expr, TpmSequence):
        return TpmSequence(tuple(eliminate_redundant_relations(part)
                                 for part in expr.parts))
    if isinstance(expr, TpmIf):
        return TpmIf(expr.cond, eliminate_redundant_relations(expr.body))
    return expr


def eliminate_in_psx(psx: PSX) -> PSX:
    """Drop relations pinned by ``A.in = B.in`` or ``A.in = $x.in``.

    * ``A.in = B.in`` (both relations): since ``in`` is the primary key, A
      and B denote the same node — every column of A is B's, so A can
      always be dropped (B is kept; if A is a projected/binding alias the
      binding moves to B).
    * ``A.in = $x.in``: A *is* the externally bound node, but only its
      ``in``/``out`` columns are recoverable from the vartuple; A is
      dropped only if no other column of A is used and A is not a binding
      alias.
    """
    changed = True
    while changed:
        changed = False
        for condition in psx.conditions:
            target = _pinned_to_relation(condition)
            if target is not None:
                victim, keeper = target
                if victim in psx.projected_aliases \
                        and keeper in psx.projected_aliases:
                    continue  # keep distinct binding aliases readable
                if victim in psx.projected_aliases:
                    victim, keeper = keeper, victim
                psx = _substitute_alias(psx, victim, keeper, condition)
                changed = True
                break
            target = _pinned_to_var(condition, psx)
            if target is not None:
                victim, var = target
                psx = _substitute_alias_by_var(psx, victim, var, condition)
                changed = True
                break
    return psx


def _pinned_to_relation(condition: Compare) -> tuple[str, str] | None:
    if condition.op != EQ:
        return None
    left, right = condition.left, condition.right
    if (isinstance(left, Attr) and left.column == "in"
            and isinstance(right, Attr) and right.column == "in"
            and left.alias != right.alias):
        return left.alias, right.alias
    return None


def _pinned_to_var(condition: Compare, psx: PSX) -> tuple[str, str] | None:
    if condition.op != EQ:
        return None
    for attr, other in ((condition.left, condition.right),
                        (condition.right, condition.left)):
        if (isinstance(attr, Attr) and attr.column == "in"
                and isinstance(other, VarField) and other.fld == "in"):
            alias = attr.alias
            if alias in psx.projected_aliases:
                continue
            if _columns_used(psx, alias, exclude=condition) \
                    <= _SUBSTITUTABLE_BY_VAR:
                return alias, other.var
    return None


def _columns_used(psx: PSX, alias: str, exclude: Compare) -> set[str]:
    used: set[str] = set()
    for condition in psx.conditions:
        if condition is exclude:
            continue
        for operand in (condition.left, condition.right):
            if isinstance(operand, Attr) and operand.alias == alias:
                used.add(operand.column)
    for residual in psx.residuals:
        for __, (kind, name) in residual.bound:
            if kind == "alias" and name == alias:
                # Residuals bind the full node; treat as using everything.
                used |= {"in", "out", "parent_in", "type", "value"}
    return used


def _substitute_alias(psx: PSX, victim: str, keeper: str,
                      pin: Compare) -> PSX:
    """Replace every ``victim.col`` with ``keeper.col`` and drop victim."""

    def sub(operand):
        if isinstance(operand, Attr) and operand.alias == victim:
            return Attr(keeper, operand.column)
        return operand

    conditions = []
    for condition in psx.conditions:
        if condition is pin:
            continue
        rewritten = Compare(sub(condition.left), condition.op,
                            sub(condition.right))
        if rewritten.left == rewritten.right and rewritten.op == EQ:
            continue  # trivially true after substitution
        if rewritten not in conditions:
            conditions.append(rewritten)
    residuals = []
    for residual in psx.residuals:
        rebound = tuple((var, ("alias", keeper) if binding == ("alias",
                                                               victim)
                         else binding)
                        for var, binding in residual.bound)
        residuals.append(Residual(residual.cond, rebound))
    bindings = tuple((var, keeper if alias == victim else alias)
                     for var, alias in psx.bindings)
    relations = tuple(alias for alias in psx.relations if alias != victim)
    return PSX(bindings=bindings, conditions=tuple(conditions),
               relations=relations, residuals=tuple(residuals))


# --------------------------------------------------------------------------
# Residual promotion
# --------------------------------------------------------------------------


def promote_residuals(expr: TpmExpr) -> TpmExpr:
    """Turn promotable residual equalities into algebraic conditions.

    After merging, a residual ``$x = $y`` may have both variables bound to
    relation aliases of the same PSX block.  When each alias is
    constrained to ``type = text`` by the block's conditions, the
    comparison is exactly ``A.value = B.value`` (the runtime text-node
    typing check is discharged statically), and likewise ``$x = "c"``
    becomes ``A.value = 'c'``.  This makes value *joins* visible to the
    optimizer — the difference between a per-tuple filter on a cross
    product and an indexable join condition.
    """
    if isinstance(expr, RelFor):
        return RelFor(expr.vartuple, promote_in_psx(expr.source),
                      promote_residuals(expr.body))
    if isinstance(expr, TpmConstr):
        return TpmConstr(expr.label, promote_residuals(expr.body))
    if isinstance(expr, TpmSequence):
        return TpmSequence(tuple(promote_residuals(part)
                                 for part in expr.parts))
    if isinstance(expr, TpmIf):
        return TpmIf(expr.cond, promote_residuals(expr.body))
    return expr


def promote_in_psx(psx: PSX) -> PSX:
    from repro.xasr.schema import TEXT
    from repro.xq.ast import VarCmpConst, VarEqConst, VarEqVar

    text_aliases = {
        condition.left.alias
        for condition in psx.conditions
        if (isinstance(condition.left, Attr)
            and condition.left.column == "type"
            and condition.op == EQ
            and isinstance(condition.right, Const)
            and condition.right.value == TEXT)}

    conditions = list(psx.conditions)
    residuals = []
    for residual in psx.residuals:
        bound = dict(residual.bound)
        cond = residual.cond
        if isinstance(cond, VarEqVar):
            left = bound.get(cond.left)
            right = bound.get(cond.right)
            if (left is not None and right is not None
                    and left[0] == "alias" and right[0] == "alias"
                    and left[1] in text_aliases
                    and right[1] in text_aliases):
                conditions.append(Compare(Attr(left[1], "value"), EQ,
                                          Attr(right[1], "value")))
                continue
        if isinstance(cond, VarEqConst):
            var = bound.get(cond.var)
            if (var is not None and var[0] == "alias"
                    and var[1] in text_aliases):
                conditions.append(Compare(Attr(var[1], "value"), EQ,
                                          Const(cond.literal)))
                continue
        if isinstance(cond, VarCmpConst):
            var = bound.get(cond.var)
            if (var is not None and var[0] == "alias"
                    and var[1] in text_aliases):
                op = LT if cond.op == "<" else GT
                conditions.append(Compare(Attr(var[1], "value"), op,
                                          Const(cond.literal)))
                continue
        residuals.append(residual)
    if len(residuals) == len(psx.residuals):
        return psx
    return PSX(bindings=psx.bindings, conditions=tuple(conditions),
               relations=psx.relations, residuals=tuple(residuals))


def _substitute_alias_by_var(psx: PSX, victim: str, var: str,
                             pin: Compare) -> PSX:
    """Replace ``victim.in/out`` with ``$var.in/out`` and drop victim."""

    def sub(operand):
        if isinstance(operand, Attr) and operand.alias == victim:
            return VarField(var, operand.column)
        return operand

    conditions = []
    for condition in psx.conditions:
        if condition is pin:
            continue
        rewritten = Compare(sub(condition.left), condition.op,
                            sub(condition.right))
        if rewritten.left == rewritten.right and rewritten.op == EQ:
            continue
        if rewritten not in conditions:
            conditions.append(rewritten)
    relations = tuple(alias for alias in psx.relations if alias != victim)
    return PSX(bindings=psx.bindings, conditions=tuple(conditions),
               relations=relations, residuals=psx.residuals)
