"""``python -m repro.obs`` — fetch and pretty-print a server's metrics.

Dials a running ``repro.serve`` or ``repro.shard`` front door, issues
one METRICS frame, and prints the Prometheus-style page either raw
(``--raw``, suitable for piping into scrape tooling) or grouped by
subsystem with aligned columns::

    $ python -m repro.obs --port 7878
    == network ==
      repro_network_bytes_sent            48123
      ...
    == server ==
      repro_server_completed              412
      ...
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from typing import List, Optional

from repro.net.client import NetClient


def _parse_args(argv: Optional[List[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Fetch and pretty-print a repro server's metrics page.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="server address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, required=True,
                        help="server port (the LISTENING line's port)")
    parser.add_argument("--raw", action="store_true",
                        help="print the Prometheus-style page verbatim")
    return parser.parse_args(argv)


def pretty(text: str) -> str:
    """Group ``repro_<subsystem>_...`` lines by subsystem and align."""
    groups = defaultdict(list)
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name = line.split(" ", 1)[0]
        parts = name.split("_", 2)
        group = parts[1] if len(parts) > 1 else name
        groups[group].append(line)
    width = max((len(line.split(" ", 1)[0])
                 for lines in groups.values() for line in lines),
                default=0)
    out = []
    for group in sorted(groups):
        out.append(f"== {group} ==")
        for line in groups[group]:
            name, _, value = line.partition(" ")
            out.append(f"  {name.ljust(width)}  {value}")
    return "\n".join(out)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit status."""
    args = _parse_args(argv)
    try:
        with NetClient(args.host, args.port) as client:
            text = client.metrics()
    except Exception as error:  # connection refused, version skew, ...
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(text if args.raw else pretty(text))
    return 0


if __name__ == "__main__":
    sys.exit(main())
