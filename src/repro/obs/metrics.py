"""Unified metrics: counters, gauges, histograms, and the registry.

Every serving layer keeps its own live counters (``ServerStats`` in the
worker pool, ``_NetMetrics`` on the TCP front end, ``MediatorStats`` in
the shard mediator, MVCC/WAL/buffer-pool counters in storage).  This
module does not replace those structures — they are good at being
cheap, lock-sharded write paths — it unifies how they are *read*: each
layer registers a producer callable under a prefix, and the registry
flattens whatever nested numeric snapshot the producer returns into one
``prefix.key.subkey -> value`` map, rendered as a Prometheus-style text
page (served over the METRICS wire frame and pretty-printed by
``python -m repro.obs``).

``LatencyHistogram`` lives here (moved out of ``core/server.py``, which
re-exports it for compatibility): a fixed-bucket log2-of-microseconds
histogram whose percentiles are bucket upper bounds clamped into the
observed ``[min, max]`` range — they over-report by at most 2x and
never invent values outside what was recorded.

Everything in this package imports only the standard library, so any
layer of the system may depend on it without cycles.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "LatencySnapshot",
    "MetricsRegistry",
    "registry_of",
]


class Counter:
    """A thread-safe monotonically increasing counter.

    Calling the instance returns its value, so a counter can be handed
    to ``MetricsRegistry.register`` directly as its own producer.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # guarded by: self._lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def __call__(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A thread-safe point-in-time value (may go up or down).

    Like :class:`Counter`, instances are callable so they can serve as
    their own registry producer.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, value: float = 0.0) -> None:
        self._lock = threading.Lock()
        # guarded by: self._lock
        self._value = value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __call__(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class LatencySnapshot:
    """Summary of a latency distribution, all times in milliseconds."""

    count: int = 0
    mean_ms: float = 0.0
    p50_ms: float = 0.0
    p90_ms: float = 0.0
    p99_ms: float = 0.0
    max_ms: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"count": self.count, "mean_ms": self.mean_ms,
                "p50_ms": self.p50_ms, "p90_ms": self.p90_ms,
                "p99_ms": self.p99_ms, "max_ms": self.max_ms}


class LatencyHistogram:
    """Fixed-bucket latency histogram with cheap thread-safe recording.

    Buckets are powers of two in microseconds (bucket ``i`` holds
    ``[2**i, 2**(i+1))`` µs), so 64 buckets cover sub-microsecond to
    ~584000 years.  A reported percentile is the upper bound of the
    bucket holding that rank, clamped into the observed ``[min, max]``
    range: it over-reports by at most 2x, is exact for a single sample,
    and never exceeds the largest value actually recorded (values past
    the top bucket all land in bucket 63 and clamp to the true max).
    """

    BUCKETS = 64

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # guarded by: self._lock
        self._counts = [0] * self.BUCKETS
        # guarded by: self._lock
        self._count = 0
        # guarded by: self._lock
        self._sum = 0.0
        # guarded by: self._lock
        self._min = float("inf")
        # guarded by: self._lock
        self._max = 0.0

    def record(self, seconds: float) -> None:
        """Record one observation, clamped below at one microsecond."""
        micros = max(1, int(seconds * 1e6))
        index = min(micros.bit_length() - 1, self.BUCKETS - 1)
        value = max(seconds, 0.0)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._mean_locked()

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    def _mean_locked(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def _percentile_locked(self, fraction: float) -> float:
        if not self._count:
            return 0.0
        rank = min(self._count, max(1, math.ceil(fraction * self._count)))
        seen = 0
        index = self.BUCKETS - 1
        for i, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= rank:
                index = i
                break
        upper = (1 << (index + 1)) / 1e6
        return min(max(upper, self._min), self._max)

    def percentile(self, fraction: float) -> float:
        """Upper-bound estimate of the ``fraction`` quantile in seconds.

        Returns 0.0 for an empty histogram.  Any fraction maps to at
        least rank 1 (so p99 of a single sample is that sample, not an
        empty walk), and the bucket bound is clamped into the observed
        ``[min, max]``.
        """
        with self._lock:
            return self._percentile_locked(fraction)

    def snapshot(self) -> LatencySnapshot:
        """An immutable summary (milliseconds) of the distribution.

        All six statistics come from one critical section, so the
        snapshot is internally consistent even while other threads
        record (count, mean, and percentiles agree on the same
        population).
        """
        with self._lock:
            if not self._count:
                return LatencySnapshot()
            return LatencySnapshot(
                count=self._count,
                mean_ms=round(self._mean_locked() * 1e3, 3),
                p50_ms=round(self._percentile_locked(0.50) * 1e3, 3),
                p90_ms=round(self._percentile_locked(0.90) * 1e3, 3),
                p99_ms=round(self._percentile_locked(0.99) * 1e3, 3),
                max_ms=round(self._max * 1e3, 3),
            )


#: Characters Prometheus metric names may not contain.
_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def _flatten(prefix: str, value: object,
             out: Dict[str, float]) -> None:
    """Collect numeric leaves of a nested mapping under dotted keys."""
    if isinstance(value, bool) or value is None:
        return
    if isinstance(value, (int, float)):
        out[prefix] = value
        return
    if isinstance(value, Mapping):
        for key, nested in value.items():
            _flatten(f"{prefix}.{key}", nested, out)
    # Strings, lists, and anything else are not metrics: skipped.


class MetricsRegistry:
    """One read surface over every layer's live counters.

    Layers register a *producer* — a zero-argument callable returning a
    (possibly nested) mapping of numbers, or a bare number — under a
    unique prefix.  :meth:`collect` calls every producer and flattens
    the results into a single ``prefix.key.subkey -> value`` map;
    :meth:`render_text` turns that into a Prometheus-style text page.
    A producer that raises is skipped for that collection (a broken
    layer must not take the whole metrics page down) and counted in
    ``registry.producer_errors``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # guarded by: self._lock
        self._producers: Dict[str, Callable[[], object]] = {}
        # guarded by: self._lock
        self._producer_errors = 0

    def register(self, prefix: str,
                 producer: Callable[[], object]) -> None:
        """Register ``producer`` under ``prefix`` (replaces any prior)."""
        if not prefix:
            raise ValueError("metrics prefix must be non-empty")
        with self._lock:
            self._producers[prefix] = producer

    def unregister(self, prefix: str) -> None:
        """Drop the producer at ``prefix`` (missing is not an error)."""
        with self._lock:
            self._producers.pop(prefix, None)

    def prefixes(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._producers))

    def collect(self) -> Dict[str, float]:
        """Flattened ``prefix.key -> value`` map across all producers.

        Producers run outside the registry lock (they may take their
        own layer's locks; holding ours too would order locks across
        unrelated subsystems).
        """
        with self._lock:
            producers = list(self._producers.items())
        flat: Dict[str, float] = {}
        for prefix, producer in producers:
            try:
                value = producer()
            except Exception:
                with self._lock:
                    self._producer_errors += 1
                continue
            _flatten(prefix, value, flat)
        with self._lock:
            flat["registry.producer_errors"] = self._producer_errors
        return flat

    @staticmethod
    def metric_name(key: str) -> str:
        """The Prometheus-style name for a flattened dotted key."""
        return "repro_" + _NAME_SANITIZER.sub("_", key)

    def render_lines(self) -> Iterator[str]:
        """Yield ``repro_<name> <value>`` lines, sorted by name."""
        collected = self.collect()
        for key in sorted(collected):
            value = collected[key]
            if isinstance(value, float):
                rendered = repr(round(value, 6))
            else:
                rendered = str(value)
            yield f"{self.metric_name(key)} {rendered}"

    def render_text(self) -> str:
        """The full metrics page as Prometheus-style text."""
        return "\n".join(self.render_lines()) + "\n"


def registry_of(server: object) -> Optional[MetricsRegistry]:
    """The ``metrics_registry`` attribute of ``server``, if it has one.

    Used by layers that wrap a duck-typed query server (the network
    front end wraps either a ``QueryServer`` or a ``ShardedServer``) to
    join the wrapped layer's registry instead of starting a new one.
    """
    registry = getattr(server, "metrics_registry", None)
    return registry if isinstance(registry, MetricsRegistry) else None
