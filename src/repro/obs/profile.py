"""EXPLAIN ANALYZE: per-operator execution profiles.

A :class:`PlanProfiler` is created per execution (never shared — plan
*operators* can be shared between concurrent executions via the
session plan cache, so profile state is keyed by ``id(op)`` inside the
profiler rather than stored on the operator).  It is carried on
``ExecutionContext.profiler``; the ``batches`` hook installed by
``PhysicalOp.__init_subclass__`` checks that attribute once per
operator per execution and, when set, routes the operator's batch
stream through :meth:`PlanProfiler.drive`, which times every
``next()``, counts batches and rows, and samples the execution
context's memory meter at batch boundaries for a high-water mark.
When the attribute is ``None`` (the default) the only cost is that one
attribute check — the per-batch loop runs undecorated.

This module duck-types physical operators (class name, ``explain``,
and the conventional child attributes) so it imports nothing outside
the standard library and no layer hits an import cycle using it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["OperatorProfile", "PlanProfiler", "render_profiles"]

#: Attribute names under which physical operators keep their inputs
#: (the same convention ``reset_materializers`` walks).
_CHILD_ATTRS = ("child", "outer", "inner", "probe", "build")


@dataclass
class OperatorProfile:
    """What one physical operator did during one execution."""

    op: str                   #: operator class name
    detail: str               #: the operator's own explain line
    depth: int                #: nesting depth inside its plan tree
    batches: int = 0          #: batches yielded
    rows: int = 0             #: rows yielded across all batches
    wall_ns: int = 0          #: wall time inside this operator's next()
    memory_peak: int = 0      #: execution-context memory high-water seen
    children: List["OperatorProfile"] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSON form (children are rendered by the tree walkers)."""
        return {"op": self.op, "detail": self.detail,
                "depth": self.depth, "batches": self.batches,
                "rows": self.rows, "wall_ns": self.wall_ns,
                "memory_peak": self.memory_peak}

    def as_span_dict(self) -> Dict[str, Any]:
        """The profile subtree as a serialized trace span."""
        payload: Dict[str, Any] = {
            "name": self.op,
            "duration_ms": round(self.wall_ns / 1e6, 3),
            "attributes": {"rows": self.rows, "batches": self.batches,
                           "memory_peak": self.memory_peak,
                           "detail": self.detail},
        }
        if self.children:
            payload["children"] = [child.as_span_dict()
                                   for child in self.children]
        return payload


def _describe(op: object) -> Tuple[str, str]:
    """Class name plus the operator's own one-line explain detail."""
    name = type(op).__name__
    try:
        detail = str(op.explain(0)).splitlines()[0].strip()
    except Exception:
        detail = name
    return name, detail


def _is_operator(value: object) -> bool:
    """Duck-typed 'physical operator': it streams batches and has a
    schema (never true of documents, predicates, or plain values)."""
    return (hasattr(value, "batches") and hasattr(value, "schema")
            and not isinstance(value, type))


class PlanProfiler:
    """Per-execution collector of :class:`OperatorProfile` records.

    Single-threaded by design (one execution = one worker thread);
    create one per ``PreparedQuery.execute(analyze=True)`` call or per
    traced server task, and read it only after the cursor is drained.
    """

    def __init__(self) -> None:
        self._profiles: Dict[int, OperatorProfile] = {}
        #: (label, root profile) per registered relfor plan, in the
        #: order the evaluator instantiated them.
        self.plans: List[Tuple[str, OperatorProfile]] = []
        #: Profiles for operators driven outside a registered plan
        #: (directly-driven pipelines in tests and benchmarks).
        self.loose: List[OperatorProfile] = []

    # -- plan registration -------------------------------------------------

    def register_plan(self, label: str, plan: object) -> None:
        """Walk ``plan`` and pre-create its profile tree under ``label``."""
        root = self._walk(plan, 0)
        self.plans.append((label, root))

    def _walk(self, op: object, depth: int) -> OperatorProfile:
        profile = self._ensure(op, depth)
        profile.depth = depth
        for attr in _CHILD_ATTRS:
            child = getattr(op, attr, None)
            if child is not None and _is_operator(child):
                child_profile = self._walk(child, depth + 1)
                if child_profile not in profile.children:
                    profile.children.append(child_profile)
        return profile

    def _ensure(self, op: object, depth: int = 0) -> OperatorProfile:
        profile = self._profiles.get(id(op))
        if profile is None:
            name, detail = _describe(op)
            profile = OperatorProfile(op=name, detail=detail, depth=depth)
            self._profiles[id(op)] = profile
            self.loose.append(profile)
        return profile

    # -- the hot path ------------------------------------------------------

    def drive(self, op: object, fn: Any, ctx: Any,
              bindings: Any) -> Iterator[Any]:
        """Route one operator's batch stream through the profiler.

        ``fn`` is the operator's undecorated ``batches`` function; the
        wrapper in ``PhysicalOp.__init_subclass__`` calls this instead
        when ``ctx.profiler`` is set.  Times each ``next()`` (charging
        time to the producing operator only — children are timed by
        their own wrapped iterators, so parents over-report by exactly
        their children's time, as in a conventional ANALYZE), counts
        batches and rows, and samples ``ctx.meter.current`` at batch
        boundaries for the memory high-water mark.
        """
        profile = self._ensure(op)
        iterator = fn(op, ctx, bindings)
        meter = ctx.meter
        clock = time.perf_counter_ns
        try:
            while True:
                started = clock()
                try:
                    batch = next(iterator)
                except StopIteration:
                    return
                finally:
                    profile.wall_ns += clock() - started
                profile.batches += 1
                profile.rows += len(batch)
                current = meter.current
                if current > profile.memory_peak:
                    profile.memory_peak = current
                yield batch
        finally:
            closer = getattr(iterator, "close", None)
            if closer is not None:
                closer()

    # -- reporting ---------------------------------------------------------

    def _roots(self) -> List[Tuple[str, OperatorProfile]]:
        """Registered plan roots plus any loose profiles not inside one."""
        claimed = set()
        for _, root in self.plans:
            for profile in _iter_tree(root):
                claimed.add(id(profile))
        roots = list(self.plans)
        roots.extend(("", profile) for profile in self.loose
                     if id(profile) not in claimed)
        return roots

    def profiles(self) -> List[Dict[str, Any]]:
        """Every operator's profile as flat dicts, plan order, pre-order."""
        out: List[Dict[str, Any]] = []
        for label, root in self._roots():
            for profile in _iter_tree(root):
                record = profile.as_dict()
                if label:
                    record["plan"] = label
                out.append(record)
        return out

    def as_span_dicts(self) -> List[Dict[str, Any]]:
        """The collected profiles as serialized trace spans, one
        ``plan`` span per registered relfor plan."""
        spans: List[Dict[str, Any]] = []
        for label, root in self._roots():
            span: Dict[str, Any] = {
                "name": "plan", "duration_ms": round(root.wall_ns / 1e6, 3),
                "children": [root.as_span_dict()],
            }
            if label:
                span["attributes"] = {"relfor": label}
            spans.append(span)
        return spans

    def render(self) -> str:
        """Indented ANALYZE text, appended to ``explain`` output."""
        lines: List[str] = []
        for label, root in self._roots():
            if label:
                lines.append(f"plan {label}:")
            lines.extend(_render_tree(root, 1 if label else 0))
        return "\n".join(lines)


def _iter_tree(root: OperatorProfile) -> Iterator[OperatorProfile]:
    yield root
    for child in root.children:
        yield from _iter_tree(child)


def _render_tree(profile: OperatorProfile, indent: int) -> List[str]:
    pad = "  " * indent
    lines = [f"{pad}{profile.op}  (actual: batches={profile.batches} "
             f"rows={profile.rows} wall={profile.wall_ns / 1e6:.3f}ms "
             f"mem_peak={profile.memory_peak})"]
    for child in profile.children:
        lines.extend(_render_tree(child, indent + 1))
    return lines


def render_profiles(profiles: List[Dict[str, Any]]) -> str:
    """Render ``PlanProfiler.profiles()`` output (e.g. shipped over the
    wire as flat dicts) back into indented ANALYZE text."""
    lines = []
    for record in profiles:
        pad = "  " * int(record.get("depth", 0))
        lines.append(
            f"{pad}{record['op']}  (actual: "
            f"batches={record['batches']} rows={record['rows']} "
            f"wall={record['wall_ns'] / 1e6:.3f}ms "
            f"mem_peak={record['memory_peak']})")
    return "\n".join(lines)
