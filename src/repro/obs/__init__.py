"""Observability: traces, operator profiles, and the metrics registry.

Three cooperating pieces (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — per-query :class:`TraceContext`/:class:`Span`
  trees that cross the wire and stitch a sharded query back into one
  tree, plus the structured :class:`SlowQueryLog`;
* :mod:`repro.obs.profile` — :class:`PlanProfiler`, the per-execution
  EXPLAIN ANALYZE collector behind ``ctx.profiler``;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` and the shared
  counter/gauge/:class:`LatencyHistogram` primitives, rendered as a
  Prometheus-style text page over the METRICS wire frame and by
  ``python -m repro.obs``.

This package imports only the standard library, so every other layer
may depend on it freely.
"""

from repro.obs.metrics import (Counter, Gauge, LatencyHistogram,
                               LatencySnapshot, MetricsRegistry,
                               registry_of)
from repro.obs.profile import OperatorProfile, PlanProfiler, render_profiles
from repro.obs.trace import SlowQueryLog, Span, TraceContext

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "LatencySnapshot",
    "MetricsRegistry",
    "OperatorProfile",
    "PlanProfiler",
    "SlowQueryLog",
    "Span",
    "TraceContext",
    "registry_of",
    "render_profiles",
]
