"""Trace contexts: correlated spans from client to physical operator.

A :class:`TraceContext` is created where a query enters the system
(``Session.execute``, ``QueryServer.submit``/``submit_stream``, or a
``NetClient`` caller) and carries a trace id, a stack of open
:class:`Span`\\ s, and the query's deadline.  It crosses the process
boundary as a small JSON payload (``{"id", "time_left_ms"}``) on the
EXECUTE/UPDATE wire frames; the remote side rebuilds a context from it,
records its own spans, and returns them piggybacked on the final
PAGE/UPDATE_OK frame, where the caller grafts them back into its own
tree with :meth:`Span.attach` — so a query fanned out by the shard
mediator ends as *one* tree: client span → mediator span → per-shard
wire spans → per-operator profiles.

Spans are deliberately not thread-safe: each execution thread works on
its own span (the mediator's fan-out keeps per-shard span payloads in
per-rank slots and stitches on the consuming thread).

The slow-query log rides here too: one JSON line per query over the
threshold, carrying the query's record and its span tree.
"""

from __future__ import annotations

import json
import logging
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = ["Span", "SlowQueryLog", "TraceContext"]


class Span:
    """One named, timed node in a trace tree.

    A span starts open (clock running from construction) and is closed
    by :meth:`end`, which freezes ``duration_ms``; ``end`` is
    idempotent for the duration but always merges new attributes, so a
    span can be annotated from more than one code path.
    """

    __slots__ = ("name", "attributes", "children", "duration_ms",
                 "_started")

    def __init__(self, name: str,
                 attributes: Optional[Dict[str, Any]] = None,
                 duration_ms: Optional[float] = None) -> None:
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.children: List[Span] = []
        self.duration_ms = duration_ms
        self._started = time.perf_counter()

    def child(self, name: str, **attributes: Any) -> "Span":
        """Open a new child span (caller is responsible for ending it)."""
        span = Span(name, attributes)
        self.children.append(span)
        return span

    def event(self, name: str, duration_ms: float = 0.0,
              **attributes: Any) -> "Span":
        """Add an already-finished child (a point event or known cost)."""
        span = Span(name, attributes, duration_ms=round(duration_ms, 3))
        self.children.append(span)
        return span

    def end(self, **attributes: Any) -> None:
        """Freeze the duration (first call wins) and merge attributes."""
        if attributes:
            self.attributes.update(attributes)
        if self.duration_ms is None:
            elapsed = time.perf_counter() - self._started
            self.duration_ms = round(elapsed * 1e3, 3)

    def attach(self, payloads: Optional[Sequence[Dict[str, Any]]]) -> None:
        """Graft serialized remote spans under this span."""
        for payload in payloads or ():
            self.children.append(Span.from_dict(payload))

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        """Pre-order iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form; open spans serialize their age so far."""
        if self.duration_ms is not None:
            duration = self.duration_ms
        else:
            duration = round((time.perf_counter() - self._started) * 1e3, 3)
        payload: Dict[str, Any] = {"name": self.name,
                                   "duration_ms": duration}
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.as_dict()
                                   for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Span":
        """Rebuild a (closed) span tree from :meth:`as_dict` output."""
        span = cls(str(payload.get("name", "?")),
                   payload.get("attributes"),
                   duration_ms=payload.get("duration_ms", 0.0))
        for child in payload.get("children", ()):  # tolerant of junk
            if isinstance(child, dict):
                span.children.append(cls.from_dict(child))
        return span

    def render(self, indent: int = 0) -> str:
        """Human-readable indented tree (used by ``python -m repro.obs``
        style tooling and test failure output)."""
        pad = "  " * indent
        attrs = ""
        if self.attributes:
            attrs = "  " + " ".join(f"{key}={value!r}" for key, value
                                    in sorted(self.attributes.items()))
        duration = ("..." if self.duration_ms is None
                    else f"{self.duration_ms:.3f}ms")
        lines = [f"{pad}{self.name} [{duration}]{attrs}"]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)


class TraceContext:
    """A trace id, a span stack, and the query deadline, per query.

    ``current`` is the innermost open span; :meth:`span` pushes a child
    for the duration of a ``with`` block.  :meth:`as_payload` is the
    wire form sent on EXECUTE/UPDATE (the deadline is echoed as
    ``time_left_ms`` so a remote server can log how much budget the
    query arrived with); :meth:`from_payload` rebuilds a context on the
    receiving side under the same trace id.  :meth:`close` ends the
    root and returns the serialized span list to piggyback back.
    """

    def __init__(self, name: str = "query",
                 trace_id: Optional[str] = None,
                 deadline: Optional[float] = None,
                 **attributes: Any) -> None:
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.deadline = deadline  # monotonic, same clock as time_left_ms
        self.root = Span(name, attributes)
        self._stack: List[Span] = [self.root]

    @property
    def current(self) -> Span:
        """The innermost open span (the root when none is pushed)."""
        return self._stack[-1]

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child of ``current`` for the duration of the block."""
        span = self.current.child(name, **attributes)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end()

    def event(self, name: str, duration_ms: float = 0.0,
              **attributes: Any) -> Span:
        """Record a finished child event on the current span."""
        return self.current.event(name, duration_ms, **attributes)

    def attach(self, payloads: Optional[Sequence[Dict[str, Any]]]) -> None:
        """Graft remote span payloads under the current span."""
        self.current.attach(payloads)

    def time_left(self) -> Optional[float]:
        """Seconds until the deadline (None when unlimited)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def as_payload(self) -> Dict[str, Any]:
        """The wire form carried on EXECUTE/UPDATE frames."""
        payload: Dict[str, Any] = {"id": self.trace_id}
        remaining = self.time_left()
        if remaining is not None:
            payload["time_left_ms"] = round(remaining * 1e3, 3)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any], name: str = "query",
                     **attributes: Any) -> "TraceContext":
        """Rebuild a context server-side from the wire payload."""
        trace_id = payload.get("id")
        context = cls(name=name,
                      trace_id=str(trace_id) if trace_id else None,
                      **attributes)
        time_left = payload.get("time_left_ms")
        if time_left is not None:
            context.root.attributes["time_left_ms"] = time_left
        return context

    def close(self, **attributes: Any) -> List[Dict[str, Any]]:
        """End the root span and serialize the tree for the wire.

        Safe to call more than once (the duration freezes on the first
        call); the trace id rides on the root payload.
        """
        self.root.end(**attributes)
        payload = self.root.as_dict()
        payload["trace_id"] = self.trace_id
        return [payload]

    def render(self) -> str:
        """The whole tree as indented text."""
        return f"trace {self.trace_id}\n{self.root.render(1)}"


class SlowQueryLog:
    """Structured log of queries slower than a threshold.

    ``observe`` takes the per-query record the network layer already
    builds (document, rows, seconds, status, ...) plus the serialized
    span tree, and emits one JSON line per offender on the
    ``repro.obs.slowlog`` logger; the last ``capacity`` entries are
    kept in memory for STATS-style inspection, and the instance is
    callable so it plugs into :class:`~repro.obs.metrics.MetricsRegistry`
    as a producer of its own counter.
    """

    def __init__(self, threshold_seconds: float,
                 logger: Optional[logging.Logger] = None,
                 capacity: int = 64) -> None:
        if threshold_seconds < 0:
            raise ValueError("slow-query threshold must be >= 0")
        self.threshold = threshold_seconds
        self.logger = logger or logging.getLogger("repro.obs.slowlog")
        self._lock = threading.Lock()
        self.recent: deque = deque(maxlen=capacity)
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def observe(self, record: Dict[str, Any],
                spans: Optional[Sequence[Dict[str, Any]]] = None) -> bool:
        """Log ``record`` if it is over threshold; returns whether it was."""
        if record.get("seconds", 0.0) < self.threshold:
            return False
        entry: Dict[str, Any] = {"event": "slow_query", **record}
        if spans:
            entry["trace"] = list(spans)
        with self._lock:
            self._count += 1
            self.recent.append(entry)
        self.logger.warning("%s", json.dumps(entry, sort_keys=True,
                                             default=str))
        return True

    def __call__(self) -> Dict[str, int]:
        return {"slow_queries": self._count}
