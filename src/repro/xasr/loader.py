"""Streaming XML → XASR shredder (milestone 2's loader).

The loader consumes tokenizer events and assigns in/out numbers with a
single counter exactly as in Figure 2: a node receives ``in`` when its
opening tag is seen and ``out`` when its closing tag is seen; text nodes
count as a (virtual) tag pair of their own; the virtual document root has
``in = 1``.

Only the stack of currently-open nodes is kept in memory — the DOM is never
built.  A node's XASR tuple is complete when the node *closes*, so
:func:`shred` yields tuples in ascending **out** order (completion order),
which is how the students' engines inserted into Berkeley DB.  Two load
paths exist:

* ``bulk=False`` — true streaming: every tuple is inserted into the
  primary/secondary B+-trees as it completes (O(depth) loader memory);
* ``bulk=True`` (default) — tuples are collected, sorted by key and
  bulk-loaded, producing compactly packed trees much faster.  This is the
  standard load-time trade-off, not a semantic difference: both paths
  produce identical relations.

While shredding, the loader gathers the statistics milestone 4 requires:
"the selectivity of each of the element node labels occurring in the
document, and the average depth of a node in the data tree" — plus, going
beyond the paper, equi-depth histograms over text values (global and per
parent label) that give the cost model real selectivities for value
predicates.  Histogram construction buffers one truncated sample per text
node, so the *statistics* side of a load is O(text nodes) even on the
streaming path; the shredder's own state remains O(depth).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.storage.db import Database
from repro.xasr import schema
from repro.xmlkit.events import (
    Characters,
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    XmlEvent,
)
from repro.xmlkit.tokenizer import iterparse, iterparse_file


#: Default bucket budget for equi-depth value histograms.
HISTOGRAM_BUCKETS = 32

#: Most-common-values tracked exactly per histogram.  Buckets mix hot
#: values (author names) with swaths of unique strings (titles), so the
#: uniform-within-bucket assumption *underestimates* exactly the values
#: queries ask for; the MCV list answers those exactly.
HISTOGRAM_MCVS = 16

#: Histogram key of the document-wide (all text nodes) histogram; the
#: other keys are element labels (histogram over that label's child-text
#: values).
GLOBAL_HISTOGRAM = ""


@dataclass
class EquiDepthHistogram:
    """An equi-depth histogram over (truncated) text values.

    ``bounds[i]`` is the largest value in bucket ``i`` (buckets cover
    ``(bounds[i-1], bounds[i]]``; the first bucket is open below), and
    ``counts[i]``/``distincts[i]`` are the value occurrences and distinct
    values it holds.  Values are truncated to
    :data:`~repro.xasr.schema.VALUE_INDEX_PREFIX` characters, matching
    the value-index key prefix, so the histogram and the index agree on
    ordering.

    The histogram is built exactly at load / index-build time and then
    maintained *approximately* under updates: :meth:`add`/:meth:`remove`
    adjust the counts of the containing bucket but never re-balance the
    bucket boundaries or distinct counts, so a long update history
    degrades the estimate gracefully rather than invalidating it (the
    cost model only needs "a gross measure", as the paper puts it).
    """

    bounds: list[str] = field(default_factory=list)
    counts: list[int] = field(default_factory=list)
    distincts: list[int] = field(default_factory=list)
    total: int = 0
    #: Exact occurrence counts of the most common values.  Equi-depth
    #: buckets answer ranges well but *underestimate* hot values that
    #: share a bucket with many singletons; the MCV list makes equality
    #: estimates on exactly those values exact.
    mcv: dict[str, int] = field(default_factory=dict)

    @classmethod
    def build(cls, values: Iterable[str],
              buckets: int = HISTOGRAM_BUCKETS,
              mcvs: int = HISTOGRAM_MCVS) -> "EquiDepthHistogram":
        """Build from raw values (truncated here); equal values never
        straddle a bucket boundary."""
        ordered = sorted(schema.index_value(value) for value in values)
        histogram = cls()
        if not ordered:
            return histogram
        depth = max(1, -(-len(ordered) // buckets))  # ceil division
        count = 0
        distinct = 0
        previous: str | None = None
        frequencies: dict[str, int] = {}
        for value in ordered:
            frequencies[value] = frequencies.get(value, 0) + 1
            if value != previous:
                if count >= depth:  # split only at a value boundary
                    histogram.bounds.append(previous)  # type: ignore[arg-type]
                    histogram.counts.append(count)
                    histogram.distincts.append(distinct)
                    count = 0
                    distinct = 0
                distinct += 1
                previous = value
            count += 1
        histogram.bounds.append(previous)  # type: ignore[arg-type]
        histogram.counts.append(count)
        histogram.distincts.append(distinct)
        histogram.total = len(ordered)
        if mcvs and len(frequencies) > 1:
            top = sorted(frequencies.items(),
                         key=lambda item: (-item[1], item[0]))[:mcvs]
            # Only values that actually repeat are worth tracking.
            histogram.mcv = {value: n for value, n in top if n > 1}
        return histogram

    # -- estimation ----------------------------------------------------------

    def _bucket(self, value: str) -> int | None:
        """Index of the bucket containing ``value`` (None when above the
        top bound)."""
        if not self.bounds:
            return None
        index = bisect_left(self.bounds, schema.index_value(value))
        if index >= len(self.bounds):
            return None
        return index

    def estimate_eq(self, value: str) -> float:
        """Estimated occurrences of ``value``: exact for tracked common
        values, uniform-within-bucket otherwise."""
        value = schema.index_value(value)
        tracked = self.mcv.get(value)
        if tracked is not None:
            return float(tracked)
        index = self._bucket(value)
        if index is None:
            return 0.0
        return self.counts[index] / max(1, self.distincts[index])

    def estimate_range(self, low: str | None, high: str | None) -> float:
        """Estimated occurrences with ``low < value < high`` (``None``
        bounds are open).  Buckets fully inside count whole; straddling
        buckets count half — the classic equi-depth approximation."""
        if not self.bounds:
            return 0.0
        if low is not None:
            low = schema.index_value(low)
        if high is not None:
            high = schema.index_value(high)
        estimate = 0.0
        lower_edge: str | None = None  # exclusive lower edge of bucket 0
        for index, upper in enumerate(self.bounds):
            # Bucket covers (lower_edge, upper].
            past_high = high is not None and (
                lower_edge is not None and lower_edge >= high)
            if past_high:
                break
            before_low = low is not None and upper <= low
            if before_low:
                lower_edge = upper
                continue
            inside_low = low is None or (lower_edge is not None
                                         and lower_edge >= low)
            inside_high = high is None or upper < high
            if inside_low and inside_high:
                estimate += self.counts[index]
            else:
                estimate += self.counts[index] / 2.0
            lower_edge = upper
        return estimate

    # -- incremental maintenance ---------------------------------------------

    def add(self, value: str) -> None:
        value = schema.index_value(value)
        if value in self.mcv:
            self.mcv[value] += 1
        if not self.bounds:
            self.bounds = [value]
            self.counts = [1]
            self.distincts = [1]
            self.total = 1
            return
        index = self._bucket(value)
        if index is None:  # beyond the top: stretch the last bucket
            index = len(self.bounds) - 1
            self.bounds[index] = value
        self.counts[index] += 1
        self.total += 1

    def remove(self, value: str) -> None:
        value = schema.index_value(value)
        tracked = self.mcv.get(value)
        if tracked is not None:
            if tracked <= 1:
                del self.mcv[value]
            else:
                self.mcv[value] = tracked - 1
        index = self._bucket(value)
        if index is None:
            return
        if self.counts[index] > 0:
            self.counts[index] -= 1
        if self.total > 0:
            self.total -= 1

    # -- persistence ---------------------------------------------------------

    def to_payload(self) -> dict:
        return {"bounds": self.bounds, "counts": self.counts,
                "distincts": self.distincts, "total": self.total,
                "mcv": self.mcv}

    @classmethod
    def from_payload(cls, payload: dict) -> "EquiDepthHistogram":
        return cls(bounds=list(payload["bounds"]),
                   counts=list(payload["counts"]),
                   distincts=list(payload["distincts"]),
                   total=payload["total"],
                   mcv=dict(payload.get("mcv", {})))


@dataclass
class DocumentStatistics:
    """Per-document statistics backing the cost model.

    ``label_counts`` maps element labels to their number of occurrences —
    the paper's per-label selectivity source.  ``depth_sum`` accumulates
    node depths so ``average_depth`` can serve as the paper's "gross
    measure for the selectivities of ancestor-descendant joins".

    ``value_histograms`` holds equi-depth histograms over text values:
    key :data:`GLOBAL_HISTOGRAM` (``""``) spans every text node of the
    document; an element-label key spans the values of that label's
    *child* text nodes.  They replace the flat text-value selectivity
    guess wherever a histogram exists, and are maintained incrementally
    by the update path.
    """

    total_nodes: int = 0
    element_count: int = 0
    text_count: int = 0
    label_counts: dict[str, int] = field(default_factory=dict)
    depth_sum: int = 0
    max_depth: int = 0
    max_in: int = 0
    value_histograms: dict[str, EquiDepthHistogram] = \
        field(default_factory=dict)
    #: Load-time accumulator of ``(parent label, text value)`` samples;
    #: consumed by :meth:`build_histograms`, never persisted.
    _text_samples: list[tuple[str, str]] = \
        field(default_factory=list, repr=False)

    @property
    def average_depth(self) -> float:
        if self.total_nodes == 0:
            return 0.0
        return self.depth_sum / self.total_nodes

    def label_selectivity(self, label: str) -> float:
        """Fraction of element nodes carrying ``label`` (0 if absent)."""
        if self.element_count == 0:
            return 0.0
        return self.label_counts.get(label, 0) / self.element_count

    # -- value histograms -----------------------------------------------------

    def note_text_value(self, parent_label: str, value: str) -> None:
        """Record one text node's value during shredding."""
        self._text_samples.append((parent_label,
                                   schema.index_value(value)))

    def build_histograms(self, buckets: int = HISTOGRAM_BUCKETS) -> None:
        """Turn the shred-time samples into per-label + global
        histograms and drop the sample buffer."""
        samples = self._text_samples
        self._text_samples = []
        histograms: dict[str, EquiDepthHistogram] = {}
        histograms[GLOBAL_HISTOGRAM] = EquiDepthHistogram.build(
            (value for __, value in samples), buckets)
        by_label: dict[str, list[str]] = {}
        for label, value in samples:
            if label:
                by_label.setdefault(label, []).append(value)
        for label, values in by_label.items():
            histograms[label] = EquiDepthHistogram.build(values, buckets)
        self.value_histograms = histograms

    def histogram_add(self, parent_label: str, value: str) -> None:
        """Incremental maintenance hook: one text value appeared."""
        histogram = self.value_histograms.get(GLOBAL_HISTOGRAM)
        if histogram is not None:
            histogram.add(value)
        histogram = self.value_histograms.get(parent_label)
        if histogram is not None:
            histogram.add(value)

    def histogram_remove(self, parent_label: str, value: str) -> None:
        """Incremental maintenance hook: one text value vanished."""
        histogram = self.value_histograms.get(GLOBAL_HISTOGRAM)
        if histogram is not None:
            histogram.remove(value)
        histogram = self.value_histograms.get(parent_label)
        if histogram is not None:
            histogram.remove(value)

    def to_payload(self) -> dict:
        return {
            "total_nodes": self.total_nodes,
            "element_count": self.element_count,
            "text_count": self.text_count,
            "label_counts": self.label_counts,
            "depth_sum": self.depth_sum,
            "max_depth": self.max_depth,
            "max_in": self.max_in,
            "value_histograms": {
                label: histogram.to_payload()
                for label, histogram in self.value_histograms.items()},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DocumentStatistics":
        stats = cls(**{key: payload[key] for key in (
            "total_nodes", "element_count", "text_count", "depth_sum",
            "max_depth", "max_in")})
        stats.label_counts = dict(payload["label_counts"])
        stats.value_histograms = {
            label: EquiDepthHistogram.from_payload(entry)
            for label, entry in payload.get("value_histograms",
                                            {}).items()}
        return stats


def shred(events: Iterable[XmlEvent], stats: DocumentStatistics,
          strip_whitespace: bool = True
          ) -> Iterator[tuple[int, int, int, int, str]]:
    """Turn an event stream into XASR tuples, O(depth) memory.

    Yields ``(in, out, parent_in, type, value)`` in node *completion*
    (ascending ``out``) order.
    """
    counter = 1
    # Stack of open nodes: [in, type, value, parent_in].
    stack: list[list] = []
    for event in events:
        if isinstance(event, StartDocument):
            in_value = counter
            counter += 1
            stack.append([in_value, schema.ROOT, "", 0])
            stats.total_nodes += 1
        elif isinstance(event, StartElement):
            in_value = counter
            counter += 1
            parent_in = stack[-1][0]
            stack.append([in_value, schema.ELEMENT, event.name, parent_in])
            depth = len(stack) - 1  # the virtual root has depth 0
            stats.total_nodes += 1
            stats.element_count += 1
            stats.label_counts[event.name] = \
                stats.label_counts.get(event.name, 0) + 1
            stats.depth_sum += depth
            stats.max_depth = max(stats.max_depth, depth)
        elif isinstance(event, Characters):
            text = event.text
            if strip_whitespace and not text.strip():
                continue
            in_value = counter
            counter += 1
            out_value = counter
            counter += 1
            parent_in = stack[-1][0]
            depth = len(stack)
            stats.total_nodes += 1
            stats.text_count += 1
            stats.depth_sum += depth
            stats.max_depth = max(stats.max_depth, depth)
            stats.note_text_value(
                stack[-1][2] if stack[-1][1] == schema.ELEMENT else "",
                text)
            yield (in_value, out_value, parent_in, schema.TEXT, text)
        elif isinstance(event, (EndElement, EndDocument)):
            in_value, node_type, value, parent_in = stack.pop()
            out_value = counter
            counter += 1
            yield (in_value, out_value, parent_in, node_type, value)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected event {event!r}")
    stats.max_in = counter - 1
    if stack:
        raise AssertionError("shredder finished with open nodes")


def _encode_record(db: Database, in_: int, out: int, parent_in: int,
                   node_type: int, value: str) -> bytes:
    """Encode one XASR record, spilling long values to the overflow store."""
    raw_value = value.encode("utf-8")
    if len(raw_value) > schema.VALUE_INLINE_MAX:
        head_page, length = db.overflow.store(raw_value)
        return schema.RECORD_CODEC.encode(
            (in_, out, parent_in, node_type, 1, f"{head_page}:{length}"))
    return schema.RECORD_CODEC.encode(
        (in_, out, parent_in, node_type, 0, value))


def load_document(db: Database, name: str, xml: str | None = None,
                  path: str | None = None,
                  events: Iterable[XmlEvent] | None = None,
                  strip_whitespace: bool = True,
                  bulk: bool = True) -> DocumentStatistics:
    """Shred a document into ``db`` under ``name``.

    Exactly one of ``xml`` (text), ``path`` (file) or ``events`` must be
    given.  Creates the clustered primary B+-tree, the label and parent
    secondary indexes, and the statistics entry.  Returns the statistics.
    """
    sources = [source for source in (xml, path, events) if source is not None]
    if len(sources) != 1:
        raise ValueError("pass exactly one of xml=, path=, events=")
    if db.exists(schema.table_name(name)):
        raise CatalogError(f"document {name!r} already loaded")
    if xml is not None:
        events = iterparse(xml)
    elif path is not None:
        events = iterparse_file(path)
    assert events is not None

    stats = DocumentStatistics()
    primary = db.create_btree(schema.table_name(name))
    label_index = db.create_btree(schema.index_label_name(name))
    parent_index = db.create_btree(schema.index_parent_name(name))

    tuples = shred(events, stats, strip_whitespace=strip_whitespace)
    if bulk:
        rows = sorted(tuples)  # ascending in
        primary.bulk_load(
            (schema.primary_key(in_),
             _encode_record(db, in_, out, parent_in, node_type, value))
            for in_, out, parent_in, node_type, value in rows)
        label_keys = sorted(
            schema.label_key(node_type, schema.index_value(value), in_)
            for in_, __, __, node_type, value in rows
            if node_type != schema.ROOT)
        label_index.bulk_load((key, b"") for key in label_keys)
        parent_keys = sorted(
            schema.parent_key(parent_in, in_)
            for in_, __, parent_in, __, __ in rows)
        parent_index.bulk_load((key, b"") for key in parent_keys)
    else:
        for in_, out, parent_in, node_type, value in tuples:
            record = _encode_record(db, in_, out, parent_in, node_type,
                                    value)
            primary.insert(schema.primary_key(in_), record)
            if node_type != schema.ROOT:
                label_index.insert(
                    schema.label_key(node_type, schema.index_value(value),
                                     in_), b"")
            parent_index.insert(schema.parent_key(parent_in, in_), b"")

    stats.build_histograms()
    db.put_meta(schema.stats_name(name), stats.to_payload())
    db.buffer_pool.flush()
    return stats


def collect_value_entries(db: Database, name: str,
                          label: str) -> list[bytes]:
    """Sorted value-index keys for ``label``'s child text nodes.

    The build pass of :func:`build_value_index`: one label-index lookup
    finds the elements, one parent-index prefix scan per element finds
    its children — both through the same :class:`StoredDocument` access
    paths the scan and update code use, so the build can never diverge
    from what they see (``value_key`` truncates long values exactly
    like the per-entry maintenance path does).
    """
    # Runtime import: document.py imports this module for
    # DocumentStatistics, so the dependency must not be top-level.
    from repro.xasr.document import StoredDocument

    document = StoredDocument(db, name)
    entries: list[bytes] = []
    for element in document.nodes_with_label(label):
        for child in document.children(element.in_):
            if child.is_text:
                entries.append(schema.value_key(child.value, element.in_,
                                                child.in_))
    entries.sort()
    return entries


def build_value_index(db: Database, name: str, label: str):
    """Bulk-build the secondary value index for one label.

    Creates the per-label B+-tree and bulk-loads it from a sorted entry
    pass (the same load-time trade-off as :func:`load_document`'s
    ``bulk=True`` path).  The caller registers the index in the
    document's value-index catalog entry *afterwards* — the registration
    is the build's atomic completeness marker — and brackets the whole
    build in checkpoints so no stale WAL record can replay over it.
    """
    if db.exists(schema.value_index_name(name, label)):
        raise CatalogError(f"document {name!r} already has a value "
                           f"index on label {label!r}")
    entries = collect_value_entries(db, name, label)
    tree = db.create_btree(schema.value_index_name(name, label))
    tree.bulk_load((key, b"") for key in entries)
    return tree
