"""Streaming XML → XASR shredder (milestone 2's loader).

The loader consumes tokenizer events and assigns in/out numbers with a
single counter exactly as in Figure 2: a node receives ``in`` when its
opening tag is seen and ``out`` when its closing tag is seen; text nodes
count as a (virtual) tag pair of their own; the virtual document root has
``in = 1``.

Only the stack of currently-open nodes is kept in memory — the DOM is never
built.  A node's XASR tuple is complete when the node *closes*, so
:func:`shred` yields tuples in ascending **out** order (completion order),
which is how the students' engines inserted into Berkeley DB.  Two load
paths exist:

* ``bulk=False`` — true streaming: every tuple is inserted into the
  primary/secondary B+-trees as it completes (O(depth) loader memory);
* ``bulk=True`` (default) — tuples are collected, sorted by key and
  bulk-loaded, producing compactly packed trees much faster.  This is the
  standard load-time trade-off, not a semantic difference: both paths
  produce identical relations.

While shredding, the loader gathers the statistics milestone 4 requires:
"the selectivity of each of the element node labels occurring in the
document, and the average depth of a node in the data tree".
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.storage.db import Database
from repro.xasr import schema
from repro.xmlkit.events import (
    Characters,
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    XmlEvent,
)
from repro.xmlkit.tokenizer import iterparse, iterparse_file


@dataclass
class DocumentStatistics:
    """Per-document statistics backing the cost model.

    ``label_counts`` maps element labels to their number of occurrences —
    the paper's per-label selectivity source.  ``depth_sum`` accumulates
    node depths so ``average_depth`` can serve as the paper's "gross
    measure for the selectivities of ancestor-descendant joins".
    """

    total_nodes: int = 0
    element_count: int = 0
    text_count: int = 0
    label_counts: dict[str, int] = field(default_factory=dict)
    depth_sum: int = 0
    max_depth: int = 0
    max_in: int = 0

    @property
    def average_depth(self) -> float:
        if self.total_nodes == 0:
            return 0.0
        return self.depth_sum / self.total_nodes

    def label_selectivity(self, label: str) -> float:
        """Fraction of element nodes carrying ``label`` (0 if absent)."""
        if self.element_count == 0:
            return 0.0
        return self.label_counts.get(label, 0) / self.element_count

    def to_payload(self) -> dict:
        return {
            "total_nodes": self.total_nodes,
            "element_count": self.element_count,
            "text_count": self.text_count,
            "label_counts": self.label_counts,
            "depth_sum": self.depth_sum,
            "max_depth": self.max_depth,
            "max_in": self.max_in,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DocumentStatistics":
        stats = cls(**{key: payload[key] for key in (
            "total_nodes", "element_count", "text_count", "depth_sum",
            "max_depth", "max_in")})
        stats.label_counts = dict(payload["label_counts"])
        return stats


def shred(events: Iterable[XmlEvent], stats: DocumentStatistics,
          strip_whitespace: bool = True
          ) -> Iterator[tuple[int, int, int, int, str]]:
    """Turn an event stream into XASR tuples, O(depth) memory.

    Yields ``(in, out, parent_in, type, value)`` in node *completion*
    (ascending ``out``) order.
    """
    counter = 1
    # Stack of open nodes: [in, type, value, parent_in].
    stack: list[list] = []
    for event in events:
        if isinstance(event, StartDocument):
            in_value = counter
            counter += 1
            stack.append([in_value, schema.ROOT, "", 0])
            stats.total_nodes += 1
        elif isinstance(event, StartElement):
            in_value = counter
            counter += 1
            parent_in = stack[-1][0]
            stack.append([in_value, schema.ELEMENT, event.name, parent_in])
            depth = len(stack) - 1  # the virtual root has depth 0
            stats.total_nodes += 1
            stats.element_count += 1
            stats.label_counts[event.name] = \
                stats.label_counts.get(event.name, 0) + 1
            stats.depth_sum += depth
            stats.max_depth = max(stats.max_depth, depth)
        elif isinstance(event, Characters):
            text = event.text
            if strip_whitespace and not text.strip():
                continue
            in_value = counter
            counter += 1
            out_value = counter
            counter += 1
            parent_in = stack[-1][0]
            depth = len(stack)
            stats.total_nodes += 1
            stats.text_count += 1
            stats.depth_sum += depth
            stats.max_depth = max(stats.max_depth, depth)
            yield (in_value, out_value, parent_in, schema.TEXT, text)
        elif isinstance(event, (EndElement, EndDocument)):
            in_value, node_type, value, parent_in = stack.pop()
            out_value = counter
            counter += 1
            yield (in_value, out_value, parent_in, node_type, value)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected event {event!r}")
    stats.max_in = counter - 1
    if stack:
        raise AssertionError("shredder finished with open nodes")


def _encode_record(db: Database, in_: int, out: int, parent_in: int,
                   node_type: int, value: str) -> bytes:
    """Encode one XASR record, spilling long values to the overflow store."""
    raw_value = value.encode("utf-8")
    if len(raw_value) > schema.VALUE_INLINE_MAX:
        head_page, length = db.overflow.store(raw_value)
        return schema.RECORD_CODEC.encode(
            (in_, out, parent_in, node_type, 1, f"{head_page}:{length}"))
    return schema.RECORD_CODEC.encode(
        (in_, out, parent_in, node_type, 0, value))


def load_document(db: Database, name: str, xml: str | None = None,
                  path: str | None = None,
                  events: Iterable[XmlEvent] | None = None,
                  strip_whitespace: bool = True,
                  bulk: bool = True) -> DocumentStatistics:
    """Shred a document into ``db`` under ``name``.

    Exactly one of ``xml`` (text), ``path`` (file) or ``events`` must be
    given.  Creates the clustered primary B+-tree, the label and parent
    secondary indexes, and the statistics entry.  Returns the statistics.
    """
    sources = [source for source in (xml, path, events) if source is not None]
    if len(sources) != 1:
        raise ValueError("pass exactly one of xml=, path=, events=")
    if db.exists(schema.table_name(name)):
        raise CatalogError(f"document {name!r} already loaded")
    if xml is not None:
        events = iterparse(xml)
    elif path is not None:
        events = iterparse_file(path)
    assert events is not None

    stats = DocumentStatistics()
    primary = db.create_btree(schema.table_name(name))
    label_index = db.create_btree(schema.index_label_name(name))
    parent_index = db.create_btree(schema.index_parent_name(name))

    tuples = shred(events, stats, strip_whitespace=strip_whitespace)
    if bulk:
        rows = sorted(tuples)  # ascending in
        primary.bulk_load(
            (schema.primary_key(in_),
             _encode_record(db, in_, out, parent_in, node_type, value))
            for in_, out, parent_in, node_type, value in rows)
        label_keys = sorted(
            schema.label_key(node_type, schema.index_value(value), in_)
            for in_, __, __, node_type, value in rows
            if node_type != schema.ROOT)
        label_index.bulk_load((key, b"") for key in label_keys)
        parent_keys = sorted(
            schema.parent_key(parent_in, in_)
            for in_, __, parent_in, __, __ in rows)
        parent_index.bulk_load((key, b"") for key in parent_keys)
    else:
        for in_, out, parent_in, node_type, value in tuples:
            record = _encode_record(db, in_, out, parent_in, node_type,
                                    value)
            primary.insert(schema.primary_key(in_), record)
            if node_type != schema.ROOT:
                label_index.insert(
                    schema.label_key(node_type, schema.index_value(value),
                                     in_), b"")
            parent_index.insert(schema.parent_key(parent_in, in_), b"")

    db.put_meta(schema.stats_name(name), stats.to_payload())
    db.buffer_pool.flush()
    return stats
