"""XASR relational schema and physical encodings.

Record layout (see :class:`~repro.storage.record.RecordCodec`)::

    in        u32   preorder entry number (primary key)
    out       u32   preorder exit number
    parent_in u32   in-value of the parent (0 for the virtual root)
    type      u8    0 = root, 1 = element, 2 = text
    val_kind  u8    0 = value inline, 1 = value in the overflow store
    value     str   label / text / "" for the root;
                    for val_kind = 1: "head_page:length"

Key layouts (order-preserving, :func:`~repro.storage.record.encode_key`)::

    primary:       (in)
    label index:   (type, value, in)     value truncated for overflow texts
    parent index:  (parent_in, in)
    value index:   (value, elem_in, text_in)   one B+-tree per indexed label

A secondary **value index** (created with ``XmlDbms.create_index``) maps
the text content of elements carrying one label to the element's
in-interval: one entry per child text node, keyed by the (truncated)
text value, then the parent element's ``in`` (so equality scans stream
elements in document order), then the text node's ``in`` (the unique
tie-breaker that makes maintenance under updates exact).
"""

from __future__ import annotations

import struct
from typing import NamedTuple

from repro.errors import StorageError
from repro.storage.record import RecordCodec, encode_key

#: XASR ``type`` values, as in Example 1 of the paper.
ROOT = 0
ELEMENT = 1
TEXT = 2

TYPE_NAMES = {ROOT: "root", ELEMENT: "element", TEXT: "text"}

#: Values longer than this are stored in the overflow store.  The label
#: index only sees the first :data:`VALUE_INDEX_PREFIX` characters of such
#: values, which is sound because XQ only ever compares *whole* text values
#: fetched from the record, never from the index key.
VALUE_INLINE_MAX = 1024
VALUE_INDEX_PREFIX = 64

#: Codec for XASR records.
RECORD_CODEC = RecordCodec(["u32", "u32", "u32", "u8", "u8", "str"])

#: The record's fixed-width prefix (five scalar columns plus the string
#: length), precompiled for the scan hot path.
_RECORD_HEAD = struct.Struct(">IIIBBI")


def decode_record(raw: bytes | memoryview
                  ) -> tuple[int, int, int, int, int, str]:
    """Decode one XASR record; fast path of ``RECORD_CODEC.decode``.

    The generic codec walks the column-type list with one
    ``struct.unpack_from`` per scalar; block-at-a-time scans decode
    thousands of records per batch, so this specialisation reads the
    whole fixed-width prefix with a single precompiled struct call.
    Output and error behaviour match ``RECORD_CODEC.decode`` exactly.
    """
    raw = bytes(raw)
    in_, out, parent_in, node_type, val_kind, length = \
        _RECORD_HEAD.unpack_from(raw, 0)
    end = _RECORD_HEAD.size + length
    if end != len(raw):
        raise StorageError(f"record has {len(raw) - end} trailing bytes")
    value = raw[_RECORD_HEAD.size:end].decode("utf-8")
    return in_, out, parent_in, node_type, val_kind, value

_KEY_U32 = ("u32",)
_KEY_LABEL = ("u32", "str", "u32")
_KEY_PARENT = ("u32", "u32")
_KEY_VALUE = ("str", "u32", "u32")


class XasrNode(NamedTuple):
    """One decoded XASR tuple (value already resolved from overflow)."""

    in_: int
    out: int
    parent_in: int
    type: int
    value: str

    @property
    def is_element(self) -> bool:
        return self.type == ELEMENT

    @property
    def is_text(self) -> bool:
        return self.type == TEXT

    @property
    def is_root(self) -> bool:
        return self.type == ROOT

    @property
    def subtree_size(self) -> int:
        """Number of nodes in the subtree rooted here (self included)."""
        return (self.out - self.in_ + 1) // 2

    def contains(self, other: "XasrNode") -> bool:
        """Ancestor test via the interval property."""
        return self.in_ < other.in_ and other.out < self.out

    def describe(self) -> str:
        """Human-readable rendering, as in Example 1 of the paper."""
        value = "NULL" if self.is_root else self.value
        return (f"({self.in_}, {self.out}, {self.parent_in}, "
                f"{TYPE_NAMES[self.type]}, {value})")


# -- object naming conventions ------------------------------------------------


def table_name(document: str) -> str:
    """Catalog name of a document's primary (clustered) B+-tree."""
    return f"xasr:{document}:primary"


def index_label_name(document: str) -> str:
    """Catalog name of the ``(type, value, in)`` secondary index."""
    return f"xasr:{document}:label"


def index_parent_name(document: str) -> str:
    """Catalog name of the ``(parent_in, in)`` secondary index."""
    return f"xasr:{document}:parent"


def stats_name(document: str) -> str:
    """Catalog name of a document's statistics metadata."""
    return f"stats:{document}"


def value_index_name(document: str, label: str) -> str:
    """Catalog name of the per-label ``(value, elem_in, text_in)``
    secondary value index."""
    return f"xasr:{document}:vindex:{label}"


def value_index_catalog_name(document: str) -> str:
    """Catalog name of the metadata entry listing a document's value
    indexes (payload ``{"labels": [...]}``).

    Written only after an index build completes, so it doubles as the
    build's completeness marker: a crash mid-build leaves orphan pages
    but never a half-visible index.
    """
    return f"vindex:{document}"


# -- key encoders ----------------------------------------------------------------


def primary_key(in_: int) -> bytes:
    return encode_key((in_,), _KEY_U32)


def label_key(type_: int, value: str, in_: int) -> bytes:
    return encode_key((type_, value, in_), _KEY_LABEL)


def label_prefix(type_: int, value: str | None = None) -> bytes:
    """Prefix of label-index keys for a node type (and optionally value)."""
    if value is None:
        return encode_key((type_,), _KEY_U32)
    # str keys are terminated, so (type, value) is a clean prefix of
    # (type, value, in).
    return encode_key((type_, value), ("u32", "str"))


def parent_key(parent_in: int, in_: int) -> bytes:
    return encode_key((parent_in, in_), _KEY_PARENT)


def parent_prefix(parent_in: int) -> bytes:
    return encode_key((parent_in,), _KEY_U32)


def value_key(value: str, elem_in: int, text_in: int) -> bytes:
    """Value-index key; ``value`` is truncated like label-index keys."""
    return encode_key((index_value(value), elem_in, text_in), _KEY_VALUE)


def value_prefix(value: str) -> bytes:
    """Prefix of value-index keys for one (truncated) value.

    The string component is terminator-delimited, so this is a clean
    prefix of exactly the ``(value, *, *)`` keys.
    """
    return encode_key((index_value(value),), ("str",))


def decode_value_key(key: bytes) -> tuple[str, int, int]:
    """Decode a value-index key into (truncated value, elem_in, text_in)."""
    from repro.storage.record import decode_key

    value, elem_in, text_in = decode_key(key, _KEY_VALUE)
    return value, elem_in, text_in


def index_value(value: str) -> str:
    """The (possibly truncated) value stored in label-index keys."""
    if len(value) > VALUE_INDEX_PREFIX:
        return value[:VALUE_INDEX_PREFIX]
    return value
