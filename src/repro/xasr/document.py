"""Read-side facade over a stored XASR document.

:class:`StoredDocument` exposes the access paths the engines build their
physical operators from:

* :meth:`node` — primary-key fetch by in-value;
* :meth:`children` — ``(parent_in, in)`` secondary-index prefix scan;
* :meth:`descendants` — clustered primary range scan over
  ``(x.in, x.out)`` (the interval property);
* :meth:`nodes_with_label` / :meth:`text_nodes_with_value` — label-index
  lookups;
* :meth:`scan` — full relation scan in document order;
* :meth:`subtree` / :meth:`serialize_subtree` — reconstruction of the XML
  tree below a node, per the paper's observation that parent_in preserves
  the child relation and in/out preserve sibling order.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import islice

from repro.errors import CatalogError, StorageError
from repro.storage.db import Database
from repro.storage.record import decode_key
from repro.xasr import schema
from repro.xasr.loader import DocumentStatistics
from repro.xmlkit.dom import Document, Element, Node, Text
from repro.xmlkit.serializer import serialize


class StoredDocument:
    """A loaded document and its indexes."""

    def __init__(self, db: Database, name: str):
        self.db = db
        self.name = name
        try:
            self.primary = db.open_btree(schema.table_name(name))
        except CatalogError:
            raise CatalogError(f"document {name!r} is not loaded") from None
        self.label_index = db.open_btree(schema.index_label_name(name))
        self.parent_index = db.open_btree(schema.index_parent_name(name))
        payload = db.get_meta(schema.stats_name(name))
        if payload is None:
            raise CatalogError(f"document {name!r} has no statistics")
        self.statistics = DocumentStatistics.from_payload(payload)
        #: Per-label secondary value indexes (label → B+-tree), from the
        #: document's value-index catalog entry.
        self.value_indexes: dict[str, object] = {}
        catalog = db.get_meta(schema.value_index_catalog_name(name))
        if catalog:
            for label in catalog.get("labels", []):
                self.value_indexes[label] = db.open_btree(
                    schema.value_index_name(name, label))

    # -- record decoding -----------------------------------------------------

    def _decode(self, raw: bytes) -> schema.XasrNode:
        in_, out, parent_in, node_type, val_kind, value = \
            schema.decode_record(raw)
        if val_kind == 1:
            head_page, __, length = value.partition(":")
            data = self.db.overflow.load(int(head_page), int(length))
            value = data.decode("utf-8")
        return schema.XasrNode(in_, out, parent_in, node_type, value)

    # -- point access ------------------------------------------------------------

    def node(self, in_: int) -> schema.XasrNode:
        """Fetch the node with the given in-value."""
        raw = self.primary.search(schema.primary_key(in_))
        if raw is None:
            raise StorageError(f"document {self.name!r} has no node with "
                               f"in={in_}")
        return self._decode(raw)

    def root(self) -> schema.XasrNode:
        """The virtual root (always ``in = 1``)."""
        return self.node(1)

    def __len__(self) -> int:
        return len(self.primary)

    # -- scans ----------------------------------------------------------------------

    def scan(self) -> Iterator[schema.XasrNode]:
        """Every node, in document order (= ascending in)."""
        for __, raw in self.primary.items():
            yield self._decode(raw)

    def _decode_blocks(self, records, size: int
                       ) -> Iterator[list[schema.XasrNode]]:
        """Decode a ``(key, raw)`` record iterator in blocks of ``size``.

        The block-at-a-time hot path: each batch is decoded in one list
        comprehension straight off the B+-tree leaf iterator, with no
        per-row generator resumption between storage and the operator.
        """
        decode = self._decode
        while True:
            chunk = list(islice(records, size))
            if not chunk:
                return
            yield [decode(raw) for __, raw in chunk]

    def scan_batches(self, size: int) -> Iterator[list[schema.XasrNode]]:
        """Full scan in blocks of ``size`` nodes (document order)."""
        yield from self._decode_blocks(self.primary.items(), size)

    def range(self, low_in: int, high_in: int,
              inclusive: bool = True) -> Iterator[schema.XasrNode]:
        """Nodes with ``low_in ≤ in ≤ high_in`` (document order)."""
        for __, raw in self.primary.range_scan(
                schema.primary_key(low_in), schema.primary_key(high_in),
                include_low=inclusive, include_high=inclusive):
            yield self._decode(raw)

    def range_batches(self, low_in: int, high_in: int, size: int,
                      inclusive: bool = True
                      ) -> Iterator[list[schema.XasrNode]]:
        """Primary range scan in blocks of ``size`` nodes."""
        records = self.primary.range_scan(
            schema.primary_key(low_in), schema.primary_key(high_in),
            include_low=inclusive, include_high=inclusive)
        yield from self._decode_blocks(records, size)

    def descendants(self, node: schema.XasrNode) -> Iterator[schema.XasrNode]:
        """Proper descendants of ``node`` — one clustered range scan.

        By the interval property, these are exactly the nodes with
        ``node.in < in < node.out``; no post-filtering is needed.
        """
        for __, raw in self.primary.range_scan(
                schema.primary_key(node.in_), schema.primary_key(node.out),
                include_low=False, include_high=False):
            yield self._decode(raw)

    def children(self, parent_in: int) -> Iterator[schema.XasrNode]:
        """Children of the node with in-value ``parent_in``, in order."""
        prefix = schema.parent_prefix(parent_in)
        for key, __ in self.parent_index.prefix_scan(prefix):
            __, child_in = decode_key(key, ("u32", "u32"))
            yield self.node(child_in)

    def nodes_with_label(self, label: str) -> Iterator[schema.XasrNode]:
        """All element nodes labelled ``label``, in document order."""
        yield from self._label_scan(schema.ELEMENT, label)

    def text_nodes_with_value(self, value: str) -> Iterator[schema.XasrNode]:
        """All text nodes whose full text equals ``value``."""
        yield from self._label_scan(schema.TEXT, value)

    def _label_scan(self, node_type: int, value: str
                    ) -> Iterator[schema.XasrNode]:
        """Label-index lookup by full value, re-checking lossy entries.

        Values longer than :data:`~repro.xasr.schema.VALUE_INDEX_PREFIX`
        are stored truncated in the index, so matches on a truncated prefix
        must be verified against the record.
        """
        indexed = schema.index_value(value)
        lossy = indexed != value or len(indexed) >= schema.VALUE_INDEX_PREFIX
        prefix = schema.label_prefix(node_type, indexed)
        for key, __ in self.label_index.prefix_scan(prefix):
            __, __, in_ = decode_key(key, ("u32", "str", "u32"))
            node = self.node(in_)
            if lossy and node.value != value:
                continue
            yield node

    def label_count(self, label: str) -> int:
        """Occurrences of an element label, from statistics (O(1))."""
        return self.statistics.label_counts.get(label, 0)

    # -- secondary value indexes -------------------------------------------------

    @property
    def value_index_labels(self) -> frozenset[str]:
        """Labels carrying a secondary value index."""
        return frozenset(self.value_indexes)

    def value_index_matches(self, label: str, low: str | None = None,
                            high: str | None = None,
                            low_inclusive: bool = False,
                            high_inclusive: bool = False) -> list[int]:
        """In-values of ``label``'s child text nodes with values in range.

        ``low``/``high`` bound the text value (``None`` = open;
        inclusivity per flag); equality is ``low == high`` with both
        bounds inclusive.  Returns the text-node in-values sorted into
        document order — the scan positions on the value-ordered index
        and collects matches (entries for one value arrive ordered by
        element, and distinct values interleave arbitrarily in document
        order, so a sort is unavoidable; point lookups sort a handful
        of ins).

        Exactness: index keys hold values truncated to
        :data:`~repro.xasr.schema.VALUE_INDEX_PREFIX`; a lossy entry is
        verified against the text node's full value.
        """
        tree = self.value_indexes.get(label)
        if tree is None:
            raise CatalogError(f"document {self.name!r} has no value "
                               f"index on label {label!r}")
        start = (schema.value_prefix(low) if low is not None else None)
        trunc_high = schema.index_value(high) if high is not None else None
        prefix_len = schema.VALUE_INDEX_PREFIX
        matches: list[int] = []
        scan = tree.range_scan(low=start, include_low=True)
        try:
            for key, __ in scan:
                value, __, text_in = schema.decode_value_key(key)
                if trunc_high is not None and value > trunc_high:
                    break
                # A non-truncated entry *is* the full value; a lossy one
                # must be resolved from the record before comparing.
                if len(value) < prefix_len:
                    full = value
                else:
                    full = self.node(text_in).value
                if low is not None and (full < low or
                                        (not low_inclusive and full == low)):
                    continue
                if high is not None and (full > high or
                                         (not high_inclusive
                                          and full == high)):
                    continue
                matches.append(text_in)
        finally:
            scan.close()
        matches.sort()
        return matches

    def value_index_scan(self, label: str, low: str | None = None,
                         high: str | None = None,
                         low_inclusive: bool = False,
                         high_inclusive: bool = False
                         ) -> Iterator[schema.XasrNode]:
        """Matching text nodes (see :meth:`value_index_matches`), in
        document order."""
        for text_in in self.value_index_matches(
                label, low, high, low_inclusive, high_inclusive):
            yield self.node(text_in)

    # -- reconstruction ---------------------------------------------------------------

    def subtree(self, node: schema.XasrNode) -> Node:
        """Rebuild the DOM subtree rooted at ``node``.

        One clustered range scan; parents precede children in the scan, so
        a single in→DOM map wires the tree up (this is the paper's
        "documents stored using this schema can be reconstructed").
        """
        if node.is_text:
            # Text nodes (including synthetic external-variable nodes,
            # which have no backing records at all) are their own subtree.
            return Text(node.value)
        top = self._make_dom(node)
        by_in: dict[int, Node] = {node.in_: top}
        for descendant in self.descendants(node):
            dom = self._make_dom(descendant)
            by_in[descendant.in_] = dom
            parent = by_in.get(descendant.parent_in)
            if parent is None:  # pragma: no cover - corrupt relation
                raise StorageError(
                    f"node in={descendant.in_} references missing parent "
                    f"{descendant.parent_in}")
            parent.append(dom)
        return top

    @staticmethod
    def _make_dom(node: schema.XasrNode) -> Node:
        if node.is_text:
            return Text(node.value)
        if node.is_element:
            return Element(node.value)
        return Document()

    def serialize_subtree(self, node: schema.XasrNode,
                          indent: int | None = None) -> str:
        """Serialize the subtree below ``node`` to XML text."""
        return serialize(self.subtree(node), indent=indent)

    def to_document(self) -> Document:
        """Rebuild the entire document tree (for testing round-trips)."""
        dom = self.subtree(self.root())
        if not isinstance(dom, Document):  # pragma: no cover - defensive
            raise StorageError("root node did not decode as a document")
        return dom
