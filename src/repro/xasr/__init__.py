"""XASR: extended access support relations (Fiebig & Moerkotte).

An XML document is shredded into the relation::

    Node(in, out, parent_in, type, value)

where ``in``/``out`` are assigned by a depth-first left-to-right preorder
traversal counting opening *and* closing tags (Figure 2 of the paper), and:

* *y is a child of x*       ⇔  ``y.parent_in = x.in``
* *y is a descendant of x*  ⇔  ``x.in < y.in  ∧  y.out < x.out``

Physical design (milestone 4):

* the table itself is a B+-tree **clustered on in** — so a descendant range
  is one sequential leaf scan;
* secondary index on ``(type, value, in)`` — label and text lookups;
* secondary index on ``(parent_in, in)`` — the child axis.

:mod:`~repro.xasr.loader` shreds a document *streaming*, never building the
DOM (milestone 2's requirement), and gathers the statistics milestone 4's
cost model needs.  :mod:`~repro.xasr.document` is the read-side facade.
"""

from repro.xasr.loader import DocumentStatistics, load_document
from repro.xasr.document import StoredDocument
from repro.xasr.schema import (
    ELEMENT,
    ROOT,
    TEXT,
    XasrNode,
    index_label_name,
    index_parent_name,
    table_name,
)

__all__ = [
    "ROOT",
    "ELEMENT",
    "TEXT",
    "XasrNode",
    "table_name",
    "index_label_name",
    "index_parent_name",
    "load_document",
    "DocumentStatistics",
    "StoredDocument",
]
