"""Materialisation of intermediate results.

Milestone 3 explicitly allowed engines "to write to disk each intermediate
result, and re-read it whenever necessary as the input of a subsequent
operation".  :class:`Materializer` implements that: the first execution of
the wrapped child is written to a temporary heap file (or kept in memory
below a threshold), and every re-execution replays the stored rows.

This is what makes an *uncorrelated* inner side of a nested-loops join
affordable: the child computes once, rescans are sequential re-reads.
A materialised child must not depend on outer bindings; the planner only
wraps operators whose conditions reference constants and relfor-external
variables (fixed for the lifetime of one plan execution).

The cache is built and replayed block-at-a-time: memory-resident replays
are bulk slices of the cached row list (no per-row work at all), spill
replays decode one batch per block, and the memory meter is charged once
per buffered batch.
"""

from __future__ import annotations

import copy
from collections.abc import Iterator

from repro.physical.context import Bindings, ExecutionContext, NODE_BYTES
from repro.physical.operators import Batch, PhysicalOp, Row
from repro.physical.sort import _decode_row, _encode_row


class Materializer(PhysicalOp):
    """Cache the child's rows for cheap re-execution.

    ``memory_threshold_rows``: row counts up to this stay in a Python
    list (charged to the memory meter); beyond it, rows spill to a heap
    file in the document database.

    A Materializer is the only stateful physical operator: its cache is
    valid for one plan execution (conditions below it may reference
    relfor-external variables, fixed per execution).  Concurrent
    executions of one compiled plan must therefore not share instances —
    see :func:`instantiate_plan`.
    """

    def __init__(self, child: PhysicalOp,
                 memory_threshold_rows: int = 2_000):
        self.child = child
        self.schema = child.schema
        self.memory_threshold_rows = memory_threshold_rows
        self._rows: list[Row] | None = None
        self._heap_name: str | None = None
        self._charged = 0
        self._meter = None

    def reset(self, database=None) -> None:
        """Forget the cached result (used between relfor re-executions,
        when the outer environment may have changed).  Passing the
        database also drops any spill heap."""
        if self._heap_name is not None and database is not None:
            # Spill state is the execution's own side write; catalog
            # access and page frees must bypass any bound snapshot.
            with database.buffer_pool.unbound():
                database.drop(self._heap_name)
        self._rows = None
        self._heap_name = None
        # Release the cache's bytes against the meter that charged them
        # (mid-execution resets happen per relfor re-entry, within one
        # live context); a meter from a finished execution is inert, so
        # releasing on it is harmless either way.
        if self._charged and self._meter is not None:
            self._meter.release(self._charged)
        self._charged = 0
        self._meter = None

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        size = ctx.batch_size
        if self._rows is not None:
            rows = self._rows
            for start in range(0, len(rows), size):
                batch = rows[start:start + size]
                ctx.tick_batch(len(batch))
                yield batch
            return
        if self._heap_name is not None:
            # The spill heap's catalog entry is this execution's own side
            # write — invisible through a versioned catalog leaf, so the
            # lookup must read live state.  The data pages themselves were
            # born after any snapshot pin and are never versioned.
            with ctx.document.db.buffer_pool.unbound():
                heap = ctx.document.db.open_heap(self._heap_name)
            batch = []
            for __, raw in heap.scan():
                batch.append(_decode_row(raw, ctx.document))
                if len(batch) >= size:
                    ctx.tick_batch(len(batch))
                    yield batch
                    batch = []
            if batch:
                ctx.tick_batch(len(batch))
                yield batch
            return

        # A consumer may abandon this pipeline early (SemiJoin probes stop
        # at the first match); the cache is only installed on normal
        # completion so a partial pass never masquerades as the result.
        collected: list[Row] = []
        heap = None
        heap_name: str | None = None
        row_bytes = NODE_BYTES * max(1, len(self.schema))
        for batch in self.child.batches(ctx, bindings):
            ctx.tick_batch(len(batch))
            if heap is None:
                # Buffer in threshold-sized takes so the in-memory cache
                # (and its meter charge) never overshoots the spill
                # threshold by more than one row — a batch larger than
                # the remaining room must not trip a memory budget the
                # item-at-a-time engine survived by spilling.
                position = 0
                while position < len(batch):
                    room = (self.memory_threshold_rows + 1
                            - len(collected))
                    take = batch[position:position + room]
                    position += len(take)
                    self._meter = ctx.meter
                    self._charged += row_bytes * len(take)
                    # reprolint: disable=RL005 charge is retained with the
                    # cached rows and released by close() via self._meter
                    # and self._charged (or on spill below)
                    ctx.meter.charge(row_bytes * len(take))
                    collected.extend(take)
                    if len(collected) > self.memory_threshold_rows:
                        # Spill everything gathered so far; this batch's
                        # remainder and all later ones go to disk.
                        heap_name = ctx.fresh_temp_name()
                        with ctx.document.db.buffer_pool.unbound():
                            heap = ctx.document.db.create_heap(heap_name)
                        for spilled in collected:
                            heap.insert(_encode_row(spilled))
                        collected = []
                        ctx.meter.release(self._charged)
                        self._charged = 0
                        for row in batch[position:]:
                            heap.insert(_encode_row(row))
                        break
            else:
                for row in batch:
                    heap.insert(_encode_row(row))
            yield batch
        if heap is None:
            self._rows = collected
        else:
            self._heap_name = heap_name

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return (f"{pad}Materialize{self._annotate()}\n"
                f"{self.child.explain(indent + 2)}")


def reset_materializers(plan, database=None) -> None:
    """Reset every :class:`Materializer` in a physical plan tree."""
    if isinstance(plan, Materializer):
        plan.reset(database)
    for attribute in ("child", "outer", "inner", "probe"):
        node = getattr(plan, attribute, None)
        if node is not None:
            reset_materializers(node, database)


def instantiate_plan(plan: PhysicalOp) -> PhysicalOp:
    """A per-execution instance of a compiled plan tree.

    Materialized caches may depend on the execution's external-variable
    bindings, so two concurrently open cursors over one prepared query
    must not share :class:`Materializer` state.  This returns a copy of
    the tree with fresh Materializers (empty caches); stateless subtrees
    are shared as-is, so instantiation costs a handful of object copies.
    """
    if isinstance(plan, Materializer):
        return Materializer(instantiate_plan(plan.child),
                            memory_threshold_rows=plan.memory_threshold_rows)
    replaced: dict[str, PhysicalOp] = {}
    for attribute in ("child", "outer", "inner", "probe"):
        node = getattr(plan, attribute, None)
        if node is not None:
            fresh = instantiate_plan(node)
            if fresh is not node:
                replaced[attribute] = fresh
    if not replaced:
        return plan
    clone = copy.copy(plan)
    for attribute, node in replaced.items():
        setattr(clone, attribute, node)
    return clone
