"""Execution context: resource limits, accounting, and name resolution.

The grading testbed of Section 4 ran engines under hard time and memory
budgets ("we allowed only 20 MB of memory and 2 or 30 minutes per query").
:class:`ExecutionContext` is where those budgets are enforced:

* operators call :meth:`ExecutionContext.tick` in their row loops, which
  cheaply checks the wall-clock deadline every few hundred rows;
* in-memory materialisation (sort buffers, cached inners, pending output)
  is charged to the memory meter, which raises the moment the budget is
  crossed.

:class:`Bindings` resolves the three operand kinds of algebraic conditions
during execution: relation attributes (from the current partial row),
external variable fields (from the enclosing relfor environment), and
constants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import islice

from repro.errors import ResourceLimitExceeded, XQEvalError
from repro.algebra.ra import (
    COLUMNS,
    Attr,
    Compare,
    Const,
    VarField,
    attr_value,
)
from repro.xasr.schema import TEXT, XasrNode

#: How many ticks pass between wall-clock checks.
_TICK_INTERVAL = 256

#: Default rows per block in the block-at-a-time execution protocol.
#: Small enough that a pending batch costs little memory, large enough
#: that per-batch Python overhead (generator resumption, deadline
#: checks) amortises to noise.  Tunable per session via
#: ``ExecutionOptions.batch_size``.
DEFAULT_BATCH_SIZE = 256


def iter_blocks(iterator, size: int):
    """Re-block a flat iterator into non-empty lists of ≤ ``size`` items.

    The one chunking loop of the block-at-a-time protocol, shared by the
    operator access paths and the result-node streams.  The source is
    closed when the consumer stops early (or the blocks run out), so
    abandoned pipelines tear down promptly.
    """
    try:
        while True:
            block = list(islice(iterator, size))
            if not block:
                return
            yield block
    finally:
        closer = getattr(iterator, "close", None)
        if closer is not None:
            closer()

#: The in-value reserved for synthetic external-variable nodes.  Stored
#: nodes have ``in ≥ 1`` (the virtual root takes 1), so 0 is free; every
#: access path degenerates correctly for it: ``children(0)`` can only
#: surface the root (filtered out by the element/text node tests), and the
#: ``0 < in < 0`` descendant range is empty.
EXTERNAL_IN = 0


def external_text_node(value: str) -> XasrNode:
    """A synthetic XASR text node carrying an external parameter value.

    Prepared-query bindings enter the storage-backed evaluators as these
    nodes: they compare like any stored text node (``type = TEXT``,
    ``value`` holds the text), navigation from them yields nothing (text
    nodes have no children or descendants), and serializing them emits the
    bare text.
    """
    return XasrNode(EXTERNAL_IN, EXTERNAL_IN, EXTERNAL_IN, TEXT, value)


def is_external_node(node: XasrNode) -> bool:
    """True for nodes created by :func:`external_text_node`."""
    return node.in_ == EXTERNAL_IN

#: Crude per-node charge for in-memory rows: five fields plus object
#: overhead, roughly matching sys.getsizeof of a small XasrNode.
NODE_BYTES = 96


class MemoryMeter:
    """Tracks engine-controlled memory against a budget (bytes)."""

    def __init__(self, budget_bytes: int | None = None):
        self.budget_bytes = budget_bytes
        self.current = 0
        self.peak = 0

    def charge(self, nbytes: int) -> None:
        self.current += nbytes
        if self.current > self.peak:
            self.peak = self.current
        if self.budget_bytes is not None \
                and self.current > self.budget_bytes:
            raise ResourceLimitExceeded("memory", self.budget_bytes,
                                        self.current)

    def release(self, nbytes: int) -> None:
        self.current = max(0, self.current - nbytes)


class ExecutionContext:
    """Per-query execution state shared by all operators.

    One context is built for every execution and driven by exactly one
    thread: the memory meter, tick counter and temp-name counter are
    deliberately unsynchronized because they are never shared — two
    concurrent executions of the same prepared query get two contexts.
    """

    def __init__(self, document, deadline: float | None = None,
                 memory_budget: int | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 profiler=None, trace=None):
        self.document = document
        self.deadline = deadline
        self.meter = MemoryMeter(memory_budget)
        #: Rows per block pulled through the physical operator tree.
        self.batch_size = max(1, batch_size)
        #: EXPLAIN ANALYZE collector (``repro.obs.profile.PlanProfiler``)
        #: or None; every operator's ``batches`` hook checks this once
        #: per execution, so None is the zero-overhead fast path.
        self.profiler = profiler
        #: The query's ``repro.obs.trace.TraceContext``, when traced.
        self.trace = trace
        self._ticks = 0
        self.rows_produced = 0
        self.temp_counter = 0

    def tick(self) -> None:
        """Cheap cooperative cancellation point for operator loops.

        The wall clock is consulted on the first tick (so tiny queries
        under an already-expired deadline still notice) and every
        :data:`_TICK_INTERVAL` ticks thereafter.
        """
        self._ticks += 1
        if (self._ticks == 1 or self._ticks % _TICK_INTERVAL == 0) \
                and self.deadline is not None:
            now = time.monotonic()
            if now > self.deadline:
                raise ResourceLimitExceeded("time", self.deadline, now)

    def tick_batch(self, count: int) -> None:
        """Batched cancellation point, charged once per block of rows.

        Keeps :meth:`tick`'s cadence — the wall clock is read on the
        first charge and whenever the tick counter crosses a
        :data:`_TICK_INTERVAL` boundary — so driving the tree with tiny
        batches (``batch_size=1`` compatibility mode) costs no more
        clock reads than the item-at-a-time engine did, while a
        default-sized batch still gets exactly one check.
        """
        if count <= 0:
            return
        before = self._ticks
        self._ticks = before + count
        if self.deadline is not None \
                and (before == 0
                     or before // _TICK_INTERVAL
                     != self._ticks // _TICK_INTERVAL):
            now = time.monotonic()
            if now > self.deadline:
                raise ResourceLimitExceeded("time", self.deadline, now)

    def fresh_temp_name(self) -> str:
        """Name for a temporary spill object in the database catalog."""
        self.temp_counter += 1
        return f"tmp:{id(self)}:{self.temp_counter}"


@dataclass
class Bindings:
    """Operand resolution: outer environment plus the current partial row.

    ``env`` maps external variable names to their bound nodes; ``schema``
    and ``row`` carry the aliases and nodes of the tuple built so far.
    """

    env: dict[str, XasrNode]
    schema: tuple[str, ...] = ()
    row: tuple[XasrNode, ...] = ()

    def extended(self, schema: tuple[str, ...],
                 row: tuple[XasrNode, ...]) -> "Bindings":
        """Bindings visible to an inner/probe operator during a join."""
        return Bindings(self.env, self.schema + schema, self.row + row)

    def node_for_alias(self, alias: str) -> XasrNode:
        try:
            return self.row[self.schema.index(alias)]
        except ValueError:
            raise XQEvalError(f"alias {alias!r} not bound; schema is "
                              f"{self.schema}") from None

    def node_for_var(self, var: str) -> XasrNode:
        try:
            return self.env[var]
        except KeyError:
            raise XQEvalError(f"unbound variable ${var}") from None

    # -- operand/condition evaluation ---------------------------------------

    def resolve(self, operand):
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, VarField):
            node = self.node_for_var(operand.var)
            return node.in_ if operand.fld == "in" else node.out
        if isinstance(operand, Attr):
            return attr_value(self.node_for_alias(operand.alias),
                              operand.column)
        raise XQEvalError(f"cannot resolve operand {operand!r}")

    def holds(self, condition: Compare) -> bool:
        left = self.resolve(condition.left)
        right = self.resolve(condition.right)
        if condition.op == "=":
            return left == right
        if condition.op == "<":
            return left < right
        return left > right


#: Column name → position in the :class:`XasrNode` named tuple (the
#: schema lists columns in field order), for direct-index access in
#: compiled predicates.
_COLUMN_INDEX = {column: index for index, column in enumerate(COLUMNS)}


def compile_single_alias_predicate(conditions, alias: str):
    """Compile conditions over one alias into ``f(node, bindings) -> bool``.

    The conditions may also reference constants and external variables
    (resolved through the bindings); attributes must all belong to
    ``alias``.  Compilation specialises the common shapes — constants are
    bound at compile time and the alias's columns are read by tuple index
    — because the result runs once per scanned node in the batched hot
    loops.
    """
    extractors = []
    for condition in conditions:
        extractors.append(_compile_condition(condition, alias))

    if not extractors:
        return lambda node, bindings: True
    if len(extractors) == 1:
        return extractors[0]

    def predicate(node: XasrNode, bindings: Bindings) -> bool:
        return all(check(node, bindings) for check in extractors)

    return predicate


def _compile_condition(condition: Compare, alias: str):
    def classify(operand):
        if isinstance(operand, Attr) and operand.alias == alias:
            return "column", _COLUMN_INDEX[operand.column]
        if isinstance(operand, Const):
            return "const", operand.value
        return "resolve", operand

    left_kind, left = classify(condition.left)
    right_kind, right = classify(condition.right)
    op = condition.op

    if left_kind == "column" and right_kind == "const":
        if op == "=":
            return lambda node, bindings: node[left] == right
        if op == "<":
            return lambda node, bindings: node[left] < right
        return lambda node, bindings: node[left] > right
    if left_kind == "const" and right_kind == "column":
        if op == "=":
            return lambda node, bindings: left == node[right]
        if op == "<":
            return lambda node, bindings: left < node[right]
        return lambda node, bindings: left > node[right]
    if left_kind == "column" and right_kind == "column":
        if op == "=":
            return lambda node, bindings: node[left] == node[right]
        if op == "<":
            return lambda node, bindings: node[left] < node[right]
        return lambda node, bindings: node[left] > node[right]

    def value_of(kind, payload, node: XasrNode, bindings: Bindings):
        if kind == "column":
            return node[payload]
        if kind == "const":
            return payload
        return bindings.resolve(payload)

    def check(node: XasrNode, bindings: Bindings) -> bool:
        left_value = value_of(left_kind, left, node, bindings)
        right_value = value_of(right_kind, right, node, bindings)
        if op == "=":
            return left_value == right_value
        if op == "<":
            return left_value < right_value
        return left_value > right_value

    return check
