"""External merge sort over binding rows.

Milestone 3's strategy (a): "if we sort the tuples in the intermediary
relation R[α] accordingly, e.g. by implementing external sorting, we
suffer no further restrictions on how to evaluate the relational algebra
expression α."

Rows are sorted by the hierarchical document order key (the in-values of
the projection aliases, lexicographically).  Runs that exceed the
in-memory budget are spilled to heap files in the database — block-based
writes, which the paper laments Berkeley DB made difficult ("this made it
difficult to have the students implement external sort ... properly by the
book"); our own storage manager has no such limitation.

Like every physical operator, the sort runs block-at-a-time: input rows
arrive in batches, buffer bytes are charged to the memory meter one block
at a time (and released even when the budget trips mid-batch), and the
sorted output is re-blocked into ``ctx.batch_size`` slices.
"""

from __future__ import annotations

import heapq
import struct
from collections.abc import Iterator

from repro.physical.context import Bindings, ExecutionContext, NODE_BYTES
from repro.physical.operators import Batch, PhysicalOp, Row


def _encode_row(row: Row) -> bytes:
    """Spill only the in-values; nodes are re-fetched on merge.

    Keeps run records small and bounded (text values can be arbitrarily
    long) at the price of one primary lookup per row during the merge —
    exactly the re-read cost the milestone 3 materialising engines paid.
    """
    return struct.pack(f">H{len(row)}I", len(row),
                       *(node.in_ for node in row))


def _decode_row(raw: bytes, document) -> Row:
    (count,) = struct.unpack_from(">H", raw, 0)
    in_values = struct.unpack_from(f">{count}I", raw, 2)
    return tuple(document.node(in_value) for in_value in in_values)


class ExternalSort(PhysicalOp):
    """Sort child rows by the in-values of ``key_aliases``.

    ``run_budget_rows`` bounds the in-memory run size; larger inputs spill
    sorted runs into temporary heap files and k-way merge them.  The spill
    database is the execution context's document database (temporaries are
    dropped afterwards).
    """

    def __init__(self, child: PhysicalOp, key_aliases: tuple[str, ...],
                 run_budget_rows: int = 10_000):
        self.child = child
        self.key_aliases = key_aliases
        self.run_budget_rows = run_budget_rows
        self.schema = child.schema
        self._key_positions = [child.schema.index(alias)
                               for alias in key_aliases]
        #: Filled after execution, for tests/ablations.
        self.spilled_runs = 0

    def _key(self, row: Row) -> tuple[int, ...]:
        return tuple(row[position].in_ for position in self._key_positions)

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        database = ctx.document.db
        size = ctx.batch_size
        row_bytes = NODE_BYTES * max(1, len(self.schema))
        run_budget = max(1, self.run_budget_rows)
        runs: list[str] = []
        buffer: list[tuple[tuple[int, ...], int, Row]] = []
        charged = 0
        sequence = 0
        self.spilled_runs = 0

        def spill() -> None:
            nonlocal charged
            buffer.sort(key=lambda item: item[:2])
            name = ctx.fresh_temp_name()
            # Side write of this execution: the catalog mutation must
            # bypass any bound snapshot (see BufferPool.unbound).
            with database.buffer_pool.unbound():
                heap = database.create_heap(name)
            for __, __, row in buffer:
                heap.insert(_encode_row(row))
            runs.append(name)
            self.spilled_runs += 1
            buffer.clear()
            ctx.meter.release(charged)
            charged = 0

        try:
            key = self._key
            for batch in self.child.batches(ctx, bindings):
                ctx.tick_batch(len(batch))
                # Buffer the batch in run-budget-sized takes: bytes are
                # charged per take (not per row), and runs keep exactly
                # the sizes the item-at-a-time sort produced.
                position = 0
                while position < len(batch):
                    room = run_budget - len(buffer)
                    take = batch[position:position + room]
                    position += len(take)
                    charged += row_bytes * len(take)
                    ctx.meter.charge(row_bytes * len(take))
                    for row in take:
                        buffer.append((key(row), sequence, row))
                        sequence += 1
                    if len(buffer) >= run_budget:
                        spill()

            if not runs:
                buffer.sort(key=lambda item: item[:2])
                rows = [row for __, __, row in buffer]
                for start in range(0, len(rows), size):
                    out = rows[start:start + size]
                    ctx.tick_batch(len(out))
                    yield out
                return
            if buffer:
                spill()
            streams = []
            for name in runs:
                with database.buffer_pool.unbound():
                    heap = database.open_heap(name)
                streams.append((_decode_row(raw, ctx.document)
                                for __, raw in heap.scan()))
            merged = heapq.merge(*streams, key=self._key)
            out = []
            for row in merged:
                out.append(row)
                if len(out) >= size:
                    ctx.tick_batch(len(out))
                    yield out
                    out = []
            if out:
                ctx.tick_batch(len(out))
                yield out
        finally:
            ctx.meter.release(charged)
            with database.buffer_pool.unbound():
                for name in runs:
                    database.drop(name)

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        keys = ", ".join(f"{alias}.in" for alias in self.key_aliases)
        return (f"{pad}ExternalSort({keys}){self._annotate()}\n"
                f"{self.child.explain(indent + 2)}")
