"""The physical operator set — block-at-a-time (vectorized) execution.

Access paths (leaves):

* :class:`FullScan` — clustered scan of the whole XASR relation;
* :class:`LabelIndexScan` — ``(type, value, in)`` index access
  (milestone 4's *index-based selection*);
* :class:`PrimaryLookup` — point fetch ``in = operand``;
* :class:`PrimaryRangeScan` — clustered range ``low < in < high``; with
  bounds taken from an ancestor's (in, out) this *is* the descendant axis;
* :class:`ChildLookup` — ``(parent_in, in)`` index access;
* :class:`ValueIndexScan` — per-label secondary value-index access
  (``XmlDbms.create_index``): equality and range predicates over the
  text content of one label's elements.

Joins:

* :class:`NestedLoopsJoin` — the order-preserving tuple NLJ of
  milestone 3 (the paper rules out block-nested-loops because it is not
  order-preserving); the inner side is rescanned via a
  :class:`~repro.physical.materialize.Materializer` when it is expensive;
* :class:`IndexNestedLoopsJoin` — milestone 4's INL join: the inner side
  is a correlated access path probed per outer row;
* :class:`SemiJoin` — existence-only INL probe; this is how the planner
  realizes Example 6's "the innermost join and this projection simulate
  now a semijoin".

Glue:

* :class:`ResidualFilter` — evaluates residual (non-algebraic) predicates
  navigationally;
* :class:`ProjectBindings` — projects rows onto the vartuple aliases with
  one-pass duplicate elimination (requires hierarchically sorted input —
  the milestone 3 ordering discussion).

Execution protocol
------------------

Operators run **block-at-a-time**: :meth:`PhysicalOp.batches` yields
non-empty lists of up to ``ctx.batch_size`` rows, and every operator
processes whole batches in tight loops (list comprehensions, bulk
slicing) rather than resuming a generator per row.  Deadline checks
(:meth:`~repro.physical.context.ExecutionContext.tick_batch`) and memory
charges happen once per batch instead of once per item, so Python
interpreter overhead is paid per block, not per row.  The item-at-a-time
view (:meth:`PhysicalOp.execute`) is kept as a thin flattening shim for
tests and ad-hoc consumers; driving the tree with ``batch_size=1``
recovers the classic one-row-per-``next()`` behaviour.

Within a batch, rows keep their order; across batches, concatenation
reproduces exactly the row stream the item-at-a-time engine produced —
every operator yields rows lexicographically ordered in its schema's
in-values, given order-preserving children (all of these are).
"""

from __future__ import annotations

import functools
from collections.abc import Iterator

from repro.algebra.ra import Compare, Residual
from repro.errors import PlanningError
from repro.physical.context import (
    Bindings,
    ExecutionContext,
    NODE_BYTES,
    compile_single_alias_predicate,
    iter_blocks,
)
from repro.xasr.schema import ELEMENT, XasrNode

Row = tuple[XasrNode, ...]
#: One block of rows — the unit of exchange between physical operators.
Batch = list[Row]


def _block_batches(ctx: ExecutionContext, bindings: Bindings, blocks,
                   predicate, filtered: bool) -> Iterator[Batch]:
    """Turn pre-blocked node lists into single-alias row batches.

    The shared hot loop of the clustered access paths: the storage layer
    hands over whole blocks (``scan_batches``/``range_batches``), the
    compiled predicate runs in one list comprehension, and the deadline
    meter is charged once per block.
    """
    for block in blocks:
        ctx.tick_batch(len(block))
        if filtered:
            batch = [(node,) for node in block
                     if predicate(node, bindings)]
        else:
            batch = [(node,) for node in block]
        if batch:
            yield batch


def _node_batches(ctx: ExecutionContext, bindings: Bindings, source,
                  predicate, filtered: bool) -> Iterator[Batch]:
    """Chunk a flat node iterator into single-alias row batches.

    Used by the index access paths, whose sources (per-probe index
    lookups) are not worth pre-blocking in storage; clustered scans use
    :func:`_block_batches` over pre-decoded storage blocks instead.
    """
    yield from _block_batches(ctx, bindings,
                              iter_blocks(iter(source), ctx.batch_size),
                              predicate, filtered)


def _profiled(fn):
    """Wrap a ``batches`` implementation with the ANALYZE hook.

    When the execution context carries no profiler (the default) the
    only cost is one attribute read and a ``None`` check per operator
    per execution — ``batches`` is entered once per operator, and the
    per-batch loop runs in the undecorated generator.  With a profiler
    set, the stream is routed through ``PlanProfiler.drive``, which
    counts batches/rows and times each ``next()``.  The original
    implementation stays reachable as ``batches.__wrapped__`` (the
    tracing-overhead benchmark uses it for its hook-free baseline).
    """
    @functools.wraps(fn)
    def batches(self, ctx, bindings):
        profiler = ctx.profiler
        if profiler is None:
            return fn(self, ctx, bindings)
        return profiler.drive(self, fn, ctx, bindings)
    batches.__profile_hook__ = True
    return batches


class PhysicalOp:
    """Base class: a physical operator with a fixed output schema."""

    #: Relation aliases, positionally aligned with output rows.
    schema: tuple[str, ...] = ()
    #: Filled in by the planner for explain output.
    estimated_cost: float = 0.0
    estimated_rows: float = 0.0
    #: Stamped by the planner on plan roots so ``explain()`` reports the
    #: configured block size; execution reads ``ctx.batch_size``.
    batch_size: int | None = None

    def __init_subclass__(cls, **kwargs):
        """Install the ANALYZE hook around each subclass's ``batches``.

        Fires for every operator definition (including subclasses in
        other modules such as ``sort.py``/``materialize.py``); the
        marker attribute keeps an inherited, already-wrapped method
        from being wrapped twice.
        """
        super().__init_subclass__(**kwargs)
        impl = cls.__dict__.get("batches")
        if impl is not None and not getattr(impl, "__profile_hook__",
                                            False):
            cls.batches = _profiled(impl)

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        """Yield non-empty row batches of at most ``ctx.batch_size``."""
        raise NotImplementedError

    def execute(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Row]:
        """Item-at-a-time view: flattens :meth:`batches`."""
        for batch in self.batches(ctx, bindings):
            yield from batch

    def explain(self, indent: int = 0) -> str:
        raise NotImplementedError

    def _annotate(self) -> str:
        parts = []
        if self.estimated_cost or self.estimated_rows:
            parts.append(f"cost≈{self.estimated_cost:.1f}, "
                         f"rows≈{self.estimated_rows:.1f}")
        if self.batch_size is not None:
            parts.append(f"batch={self.batch_size}")
        if parts:
            return f"  [{', '.join(parts)}]"
        return ""


# --------------------------------------------------------------------------
# Access paths
# --------------------------------------------------------------------------


class FullScan(PhysicalOp):
    """Clustered scan of the XASR primary B+-tree, filtered."""

    def __init__(self, alias: str, conditions: list[Compare]):
        self.schema = (alias,)
        self.alias = alias
        self.conditions = list(conditions)
        self._predicate = compile_single_alias_predicate(conditions, alias)

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        yield from _block_batches(ctx, bindings,
                                  ctx.document.scan_batches(ctx.batch_size),
                                  self._predicate, bool(self.conditions))

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        conds = " ∧ ".join(str(c) for c in self.conditions) or "true"
        return f"{pad}FullScan[{self.alias}] σ({conds}){self._annotate()}"


class LabelIndexScan(PhysicalOp):
    """Index-based selection via the ``(type, value, in)`` index."""

    def __init__(self, alias: str, node_type: int, value: str,
                 conditions: list[Compare]):
        self.schema = (alias,)
        self.alias = alias
        self.node_type = node_type
        self.value = value
        self.conditions = list(conditions)
        self._predicate = compile_single_alias_predicate(conditions, alias)

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        document = ctx.document
        if self.node_type == ELEMENT:
            matches = document.nodes_with_label(self.value)
        else:
            matches = document.text_nodes_with_value(self.value)
        yield from _node_batches(ctx, bindings, matches, self._predicate,
                                 bool(self.conditions))

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        kind = "elem" if self.node_type == ELEMENT else "text"
        conds = " ∧ ".join(str(c) for c in self.conditions) or "true"
        return (f"{pad}LabelIndexScan[{self.alias}] "
                f"({kind}, {self.value!r}) σ({conds}){self._annotate()}")


class PrimaryLookup(PhysicalOp):
    """Point access ``alias.in = operand`` through the primary B+-tree."""

    def __init__(self, alias: str, in_operand, conditions: list[Compare]):
        self.schema = (alias,)
        self.alias = alias
        self.in_operand = in_operand
        self.conditions = list(conditions)
        self._predicate = compile_single_alias_predicate(conditions, alias)

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        from repro.errors import StorageError

        in_value = bindings.resolve(self.in_operand)
        try:
            node = ctx.document.node(in_value)
        except StorageError:
            return
        ctx.tick_batch(1)
        if self._predicate(node, bindings):
            yield [(node,)]

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        conds = " ∧ ".join(str(c) for c in self.conditions) or "true"
        return (f"{pad}PrimaryLookup[{self.alias}] in={self.in_operand} "
                f"σ({conds}){self._annotate()}")


class PrimaryRangeScan(PhysicalOp):
    """Clustered range scan ``low < alias.in`` and ``alias.out < high``.

    With ``low``/``high`` bound to an ancestor's in/out this enumerates
    exactly its descendants, in document order, off the leaf chain.  (The
    ``out < high`` check is implied by the interval property and kept only
    as an assertion-grade filter.)
    """

    def __init__(self, alias: str, low_operand, high_operand,
                 conditions: list[Compare]):
        self.schema = (alias,)
        self.alias = alias
        self.low_operand = low_operand
        self.high_operand = high_operand
        self.conditions = list(conditions)
        self._predicate = compile_single_alias_predicate(conditions, alias)

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        low = bindings.resolve(self.low_operand)
        high = bindings.resolve(self.high_operand)
        if high <= low:
            return
        blocks = ctx.document.range_batches(low + 1, high - 1,
                                            ctx.batch_size)
        yield from _block_batches(ctx, bindings, blocks,
                                  self._predicate, bool(self.conditions))

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        conds = " ∧ ".join(str(c) for c in self.conditions) or "true"
        return (f"{pad}PrimaryRangeScan[{self.alias}] "
                f"({self.low_operand}, {self.high_operand}) "
                f"σ({conds}){self._annotate()}")


class ChildLookup(PhysicalOp):
    """Children of ``parent_operand`` via the ``(parent_in, in)`` index."""

    def __init__(self, alias: str, parent_operand,
                 conditions: list[Compare]):
        self.schema = (alias,)
        self.alias = alias
        self.parent_operand = parent_operand
        self.conditions = list(conditions)
        self._predicate = compile_single_alias_predicate(conditions, alias)

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        parent_in = bindings.resolve(self.parent_operand)
        yield from _node_batches(ctx, bindings,
                                 ctx.document.children(parent_in),
                                 self._predicate, bool(self.conditions))

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        conds = " ∧ ".join(str(c) for c in self.conditions) or "true"
        return (f"{pad}ChildLookup[{self.alias}] "
                f"parent={self.parent_operand} σ({conds}){self._annotate()}")


class ValueIndexProbe(PhysicalOp):
    """Label-index access by a *dynamic* value (resolved per probe).

    The access path behind value-join plans: with an outer text node's
    value in hand, ``(TEXT, value, in)`` index lookup finds all equal text
    nodes without scanning.  ``value_operand`` is typically
    ``Attr(outer_alias, "value")``.
    """

    def __init__(self, alias: str, node_type: int, value_operand,
                 conditions: list[Compare]):
        self.schema = (alias,)
        self.alias = alias
        self.node_type = node_type
        self.value_operand = value_operand
        self.conditions = list(conditions)
        self._predicate = compile_single_alias_predicate(conditions, alias)

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        value = bindings.resolve(self.value_operand)
        if not isinstance(value, str):  # pragma: no cover - defensive
            return
        if self.node_type == ELEMENT:
            matches = ctx.document.nodes_with_label(value)
        else:
            matches = ctx.document.text_nodes_with_value(value)
        yield from _node_batches(ctx, bindings, matches, self._predicate,
                                 bool(self.conditions))

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        kind = "elem" if self.node_type == ELEMENT else "text"
        conds = " ∧ ".join(str(c) for c in self.conditions) or "true"
        return (f"{pad}ValueIndexProbe[{self.alias}] "
                f"({kind}, value={self.value_operand}) σ({conds})"
                f"{self._annotate()}")


class ValueIndexScan(PhysicalOp):
    """Secondary value-index access: child text nodes of ``label``
    elements whose value satisfies an equality or range predicate.

    Backed by the per-label ``(value, elem_in, text_in)`` B+-tree
    created with ``XmlDbms.create_index``.  ``low_operand`` /
    ``high_operand`` are Const for static predicates or Attr/VarField
    for probes (resolved per execution through the bindings); equality
    is both operands equal and inclusive.  The scan collects the
    matching text in-values from the value-ordered index and re-sorts
    them, so rows leave in document order like every other access path
    (the in-list is charged to the memory meter while held).
    """

    def __init__(self, alias: str, label: str, low_operand, high_operand,
                 low_inclusive: bool, high_inclusive: bool,
                 conditions: list[Compare]):
        self.schema = (alias,)
        self.alias = alias
        self.label = label
        self.low_operand = low_operand
        self.high_operand = high_operand
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.conditions = list(conditions)
        self._predicate = compile_single_alias_predicate(conditions, alias)

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        low = (bindings.resolve(self.low_operand)
               if self.low_operand is not None else None)
        high = (bindings.resolve(self.high_operand)
                if self.high_operand is not None else None)
        matches = ctx.document.value_index_matches(
            self.label, low, high, self.low_inclusive, self.high_inclusive)
        charged = 8 * len(matches)
        ctx.meter.charge(charged)
        try:
            nodes = (ctx.document.node(text_in) for text_in in matches)
            yield from _node_batches(ctx, bindings, nodes, self._predicate,
                                     bool(self.conditions))
        finally:
            ctx.meter.release(charged)

    def _bounds(self) -> str:
        if (self.low_operand is not None
                and self.low_operand == self.high_operand
                and self.low_inclusive and self.high_inclusive):
            return f"value = {self.low_operand}"
        low = "" if self.low_operand is None else \
            f"{self.low_operand} {'≤' if self.low_inclusive else '<'} "
        high = "" if self.high_operand is None else \
            f" {'≤' if self.high_inclusive else '<'} {self.high_operand}"
        return f"{low}value{high}"

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        conds = " ∧ ".join(str(c) for c in self.conditions) or "true"
        return (f"{pad}ValueIndexScan[{self.alias}] "
                f"(label={self.label!r}, {self._bounds()}) σ({conds})"
                f"{self._annotate()}")


class Filter(PhysicalOp):
    """Apply arbitrary algebraic conditions to child rows.

    Conditions may reference the child's aliases, enclosing outer aliases
    and external variables (all resolved through the bindings) — this is
    the correlated filter wrapped around materialised inners.
    """

    def __init__(self, child: PhysicalOp, conditions: list[Compare]):
        self.child = child
        self.conditions = list(conditions)
        self.schema = child.schema

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        schema = self.schema
        conditions = self.conditions
        extended = bindings.extended
        for batch in self.child.batches(ctx, bindings):
            ctx.tick_batch(len(batch))
            out: Batch = []
            for row in batch:
                combined = extended(schema, row)
                if all(combined.holds(condition)
                       for condition in conditions):
                    out.append(row)
            if out:
                yield out

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        conds = " ∧ ".join(str(c) for c in self.conditions) or "true"
        return (f"{pad}Filter({conds}){self._annotate()}\n"
                f"{self.child.explain(indent + 2)}")


# --------------------------------------------------------------------------
# Joins
# --------------------------------------------------------------------------


class NestedLoopsJoin(PhysicalOp):
    """Order-preserving nested-loops join, block-at-a-time.

    ``join_conditions`` may reference aliases from both sides (evaluated on
    the combined row).  The inner side is re-executed per outer row (the
    paper rules out block-nested-loops proper — it would not be
    order-preserving), but both inputs arrive and matches leave in
    batches.  Wrap the inner in a
    :class:`~repro.physical.materialize.Materializer` when a rescan is
    expensive.
    """

    def __init__(self, outer: PhysicalOp, inner: PhysicalOp,
                 join_conditions: list[Compare]):
        self.outer = outer
        self.inner = inner
        self.join_conditions = list(join_conditions)
        self.schema = outer.schema + inner.schema

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        size = ctx.batch_size
        outer_schema = self.outer.schema
        schema = self.schema
        conditions = self.join_conditions
        out: Batch = []
        for outer_batch in self.outer.batches(ctx, bindings):
            for outer_row in outer_batch:
                inner_bindings = bindings.extended(outer_schema, outer_row)
                for inner_batch in self.inner.batches(ctx, inner_bindings):
                    ctx.tick_batch(len(inner_batch))
                    if conditions:
                        for inner_row in inner_batch:
                            row = outer_row + inner_row
                            combined = bindings.extended(schema, row)
                            if all(combined.holds(condition)
                                   for condition in conditions):
                                out.append(row)
                    else:
                        out.extend(outer_row + inner_row
                                   for inner_row in inner_batch)
                    while len(out) >= size:
                        yield out[:size]
                        del out[:size]
        if out:
            yield out

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        conds = " ∧ ".join(str(c) for c in self.join_conditions) or "true"
        return (f"{pad}NestedLoopsJoin({conds}){self._annotate()}\n"
                f"{self.outer.explain(indent + 2)}\n"
                f"{self.inner.explain(indent + 2)}")


class IndexNestedLoopsJoin(PhysicalOp):
    """INL join: the probe is a correlated access path.

    The probe's operands may reference outer aliases; the join condition
    is folded into the probe (range bounds / parent operand / residual
    conditions), so no separate predicate list is needed here.
    """

    def __init__(self, outer: PhysicalOp, probe: PhysicalOp):
        self.outer = outer
        self.probe = probe
        self.schema = outer.schema + probe.schema

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        size = ctx.batch_size
        outer_schema = self.outer.schema
        out: Batch = []
        for outer_batch in self.outer.batches(ctx, bindings):
            for outer_row in outer_batch:
                probe_bindings = bindings.extended(outer_schema, outer_row)
                for probe_batch in self.probe.batches(ctx, probe_bindings):
                    ctx.tick_batch(len(probe_batch))
                    out.extend(outer_row + probe_row
                               for probe_row in probe_batch)
                    while len(out) >= size:
                        yield out[:size]
                        del out[:size]
        if out:
            yield out

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return (f"{pad}IndexNestedLoopsJoin{self._annotate()}\n"
                f"{self.outer.explain(indent + 2)}\n"
                f"{self.probe.explain(indent + 2)}")


class SemiJoin(PhysicalOp):
    """Existence filter: outer rows with at least one probe match.

    Realizes the projection-pushing trick of Example 6 — the probed
    relation contributes no columns, so probing can stop at the first
    match (the probe pipeline is closed as soon as its first batch
    arrives).
    """

    def __init__(self, outer: PhysicalOp, probe: PhysicalOp):
        self.outer = outer
        self.probe = probe
        self.schema = outer.schema

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        outer_schema = self.outer.schema
        for outer_batch in self.outer.batches(ctx, bindings):
            ctx.tick_batch(len(outer_batch))
            out: Batch = []
            for outer_row in outer_batch:
                probe_bindings = bindings.extended(outer_schema, outer_row)
                probe = self.probe.batches(ctx, probe_bindings)
                try:
                    for probe_batch in probe:
                        if probe_batch:
                            out.append(outer_row)
                            break
                finally:
                    probe.close()
            if out:
                yield out

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        return (f"{pad}SemiJoin (exists){self._annotate()}\n"
                f"{self.outer.explain(indent + 2)}\n"
                f"{self.probe.explain(indent + 2)}")


# --------------------------------------------------------------------------
# Residual predicates and projection
# --------------------------------------------------------------------------


class ResidualFilter(PhysicalOp):
    """Evaluate residual XQ conditions per row, navigationally.

    Residuals carry a binding map from XQ variables to either a row alias
    or an external variable; evaluation delegates to the milestone-2
    navigational evaluator, so semantics (including the text-node typing
    rule) are identical on every engine.
    """

    def __init__(self, child: PhysicalOp, residuals: list[Residual]):
        self.child = child
        self.residuals = list(residuals)
        self.schema = child.schema

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        from repro.engine.navigational import NavigationalEvaluator

        evaluator = NavigationalEvaluator(ctx.document, ticker=ctx.tick)
        schema = self.schema
        residuals = self.residuals
        holds = self._residual_holds
        extended = bindings.extended
        for batch in self.child.batches(ctx, bindings):
            ctx.tick_batch(len(batch))
            out: Batch = []
            for row in batch:
                combined = extended(schema, row)
                if all(holds(evaluator, residual, combined)
                       for residual in residuals):
                    out.append(row)
            if out:
                yield out

    @staticmethod
    def _residual_holds(evaluator, residual: Residual,
                        combined: Bindings) -> bool:
        env = {}
        for var, (kind, name) in residual.bound:
            if kind == "alias":
                env[var] = combined.node_for_alias(name)
            else:
                env[var] = combined.node_for_var(name)
        return evaluator.condition(residual.cond, env)

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        conds = " ∧ ".join(str(r) for r in self.residuals)
        return (f"{pad}ResidualFilter({conds}){self._annotate()}\n"
                f"{self.child.explain(indent + 2)}")


class ProjectBindings(PhysicalOp):
    """Project rows onto the vartuple aliases, removing duplicates.

    ``assume_sorted=True`` is milestone 3's one-pass strategy: input rows
    arrive hierarchically sorted on the projection attributes, so a
    duplicate is always adjacent and a single "last emitted" comparison
    suffices.  With ``assume_sorted=False`` a seen-set is kept — charged
    to the memory meter once per batch of new keys, and released when the
    pipeline finishes or is torn down mid-batch — used when the planner
    chose a non-order-preserving join order *and* a final sort was pushed
    below the projection instead.
    """

    def __init__(self, child: PhysicalOp, aliases: tuple[str, ...],
                 assume_sorted: bool = True):
        self.child = child
        self.aliases = aliases
        self.assume_sorted = assume_sorted
        self.schema = aliases
        try:
            self._positions = [child.schema.index(alias)
                               for alias in aliases]
        except ValueError as exc:
            raise PlanningError(f"projection alias missing from child "
                                f"schema {child.schema}: {exc}") from None

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        positions = self._positions
        if self.assume_sorted:
            last_key: tuple[int, ...] | None = None
            for batch in self.child.batches(ctx, bindings):
                ctx.tick_batch(len(batch))
                out: Batch = []
                for row in batch:
                    projected = tuple(row[position]
                                      for position in positions)
                    key = tuple(node.in_ for node in projected)
                    if key != last_key:
                        last_key = key
                        out.append(projected)
                if out:
                    yield out
            return
        seen: set[tuple[int, ...]] = set()
        charged = 0
        try:
            for batch in self.child.batches(ctx, bindings):
                ctx.tick_batch(len(batch))
                out = []
                added = 0
                for row in batch:
                    projected = tuple(row[position]
                                      for position in positions)
                    key = tuple(node.in_ for node in projected)
                    if key not in seen:
                        seen.add(key)
                        added += 1
                        out.append(projected)
                if added:
                    charged += NODE_BYTES * added
                    ctx.meter.charge(NODE_BYTES * added)
                if out:
                    yield out
        finally:
            ctx.meter.release(charged)

    def explain(self, indent: int = 0) -> str:
        pad = " " * indent
        attrs = ", ".join(f"{alias}.in" for alias in self.aliases)
        mode = "one-pass" if self.assume_sorted else "hash"
        return (f"{pad}ProjectBindings({attrs}) dedup={mode}"
                f"{self._annotate()}\n{self.child.explain(indent + 2)}")


class ConstantRow(PhysicalOp):
    """Yields exactly one empty row — the nullary relation with the empty
    tuple ("true"), used for PSX blocks with no relations."""

    schema: tuple[str, ...] = ()

    def batches(self, ctx: ExecutionContext,
                bindings: Bindings) -> Iterator[Batch]:
        yield [()]

    def explain(self, indent: int = 0) -> str:
        return " " * indent + "ConstantRow()"
