"""Physical operators (the executors behind TPM plans).

Operators follow the pipelined iterator model (the paper's bonus-point
feature) — each ``execute`` yields binding rows lazily — while the
materialising mode of milestone 3 ("write to disk each intermediate
result, and re-read it whenever necessary") is available through
:class:`~repro.physical.materialize.Materializer` and is what the
unoptimised engine profiles use.

A *row* is a tuple of decoded :class:`~repro.xasr.schema.XasrNode` values,
positionally aligned with the operator's ``schema`` (a tuple of relation
aliases).  Correlated plans additionally read outer variables from the
:class:`~repro.physical.context.Bindings`.

All operators are order-preserving in the sense of milestone 3: each
yields rows lexicographically ascending in its leaf aliases' in-values,
so a left-deep plan whose leaf order starts with the vartuple aliases
delivers hierarchical document order without sorting.
"""

from repro.physical.context import Bindings, ExecutionContext
from repro.physical.operators import (
    ChildLookup,
    ConstantRow,
    Filter,
    FullScan,
    IndexNestedLoopsJoin,
    LabelIndexScan,
    NestedLoopsJoin,
    PhysicalOp,
    PrimaryLookup,
    PrimaryRangeScan,
    ProjectBindings,
    ResidualFilter,
    SemiJoin,
    ValueIndexProbe,
)
from repro.physical.sort import ExternalSort
from repro.physical.materialize import Materializer

__all__ = [
    "ExecutionContext",
    "Bindings",
    "PhysicalOp",
    "FullScan",
    "LabelIndexScan",
    "PrimaryLookup",
    "PrimaryRangeScan",
    "ChildLookup",
    "NestedLoopsJoin",
    "IndexNestedLoopsJoin",
    "SemiJoin",
    "ResidualFilter",
    "ProjectBindings",
    "ConstantRow",
    "Filter",
    "ValueIndexProbe",
    "ExternalSort",
    "Materializer",
]
