"""Cardinality estimation from document statistics.

The estimator consumes exactly the statistics the paper prescribes
(per-label counts, average node depth, node totals) and exposes the
quantities the cost model needs:

* base cardinality of a selection over XASR;
* fan-out of the child axis;
* expected descendant count (the average-depth trick: in any tree, the sum
  of subtree sizes equals the sum of depths plus n, so the expected number
  of proper descendants of a uniformly random node is exactly the average
  depth);
* join selectivities for structural and value joins.

**Calibration.**  ``calibration`` degrades the estimator on purpose:

* ``"calibrated"`` — use the statistics faithfully;
* ``"uniform-labels"`` — ignore label skew: every label gets the same
  selectivity (Engine 2's failure mode in Figure 7: with skew-blind
  estimates, two joins "with very different selectivities" look alike and
  the unselective one ends up at the bottom of the plan);
* ``"pessimistic-text"`` — assume text-value equality never filters
  (selectivity 1), discouraging value-probe plans.
"""

from __future__ import annotations

from repro.algebra.ra import Attr, Compare, Const, EQ, GT, LT, VarField
from repro.xasr.loader import GLOBAL_HISTOGRAM, DocumentStatistics
from repro.xasr.schema import ELEMENT, TEXT
from repro.xq.ast import ROOT_VAR

#: Default guess for the selectivity of ``text-value = constant`` among
#: text nodes, when no per-value statistics exist.
TEXT_VALUE_SELECTIVITY = 0.01

#: Default guess for the selectivity of a ``low < text-value < high``
#: range among text nodes, when no histogram exists.
TEXT_RANGE_SELECTIVITY = 0.1

CALIBRATIONS = ("calibrated", "uniform-labels", "pessimistic-text")


class CardinalityEstimator:
    """Estimates cardinalities of XASR selections and joins."""

    def __init__(self, statistics: DocumentStatistics,
                 calibration: str = "calibrated"):
        if calibration not in CALIBRATIONS:
            raise ValueError(f"unknown calibration {calibration!r}")
        self.statistics = statistics
        self.calibration = calibration

    # -- base quantities --------------------------------------------------------

    @property
    def relation_size(self) -> int:
        """|XASR| — one tuple per node."""
        return max(1, self.statistics.total_nodes)

    def label_cardinality(self, label: str) -> float:
        """Estimated number of elements with ``label``."""
        stats = self.statistics
        if self.calibration == "uniform-labels":
            distinct = max(1, len(stats.label_counts))
            return stats.element_count / distinct
        return float(stats.label_counts.get(label, 0))

    def type_cardinality(self, node_type: int) -> float:
        stats = self.statistics
        if node_type == ELEMENT:
            return float(stats.element_count)
        if node_type == TEXT:
            return float(stats.text_count)
        return 1.0  # the root

    def child_fanout(self) -> float:
        """Average number of children per node.

        Every non-root node has exactly one parent, so ``n`` nodes share
        ``n - 1`` child edges: the average is ``(n-1)/n`` ≈ 1.  (An
        earlier version added a spurious ``+ 1.0``, doubling every
        parent-join estimate; ``tests/test_planner.py`` pins the correct
        value.)
        """
        return (self.relation_size - 1) / self.relation_size

    def descendant_count(self) -> float:
        """Expected number of proper descendants of a random node."""
        return max(1.0, self.statistics.average_depth)

    def text_value_selectivity(self) -> float:
        """Flat fallback selectivity of ``text-value = constant``."""
        if self.calibration == "pessimistic-text":
            return 1.0
        return TEXT_VALUE_SELECTIVITY

    def _histogram(self, label: str):
        """The histogram for ``label`` under the active calibration.

        Histograms refine estimates only in ``"calibrated"`` mode; the
        degraded calibrations keep their deliberately flat guesses so
        the Figure-7 failure modes stay reproducible.
        """
        if self.calibration != "calibrated":
            return None
        histogram = self.statistics.value_histograms.get(label)
        if histogram is None or histogram.total == 0:
            return None
        return histogram

    def text_eq_cardinality(self, value: str) -> float:
        """Estimated text nodes whose value equals ``value``.

        Uses the document-wide value histogram when one exists (i.e. the
        flat :data:`TEXT_VALUE_SELECTIVITY` guess is only the fallback).
        """
        histogram = self._histogram(GLOBAL_HISTOGRAM)
        if histogram is not None:
            return max(histogram.estimate_eq(value), 0.01)
        return self.type_cardinality(TEXT) * self.text_value_selectivity()

    def text_range_cardinality(self, low: str | None,
                               high: str | None) -> float:
        """Estimated text nodes with ``low < value < high``."""
        histogram = self._histogram(GLOBAL_HISTOGRAM)
        if histogram is not None:
            return max(histogram.estimate_range(low, high), 0.01)
        if self.calibration == "pessimistic-text":
            return self.type_cardinality(TEXT)
        return self.type_cardinality(TEXT) * TEXT_RANGE_SELECTIVITY

    def label_text_cardinality(self, label: str, value: str | None = None,
                               low: str | None = None,
                               high: str | None = None) -> float:
        """Estimated child-text nodes of ``label`` elements matching a
        value predicate (equality when ``value`` is given, else the
        ``low``/``high`` range).

        This is the output estimate of a
        :class:`~repro.physical.operators.ValueIndexScan`; the per-label
        histogram makes it independent of how common the value is under
        *other* labels.
        """
        histogram = self._histogram(label)
        if histogram is not None:
            if value is not None:
                return max(histogram.estimate_eq(value), 0.01)
            return max(histogram.estimate_range(low, high), 0.01)
        matches = float(self.statistics.label_counts.get(label, 0))
        if value is not None:
            return max(matches * self.text_value_selectivity(), 0.01)
        return max(matches * TEXT_RANGE_SELECTIVITY, 0.01)

    def label_text_probe_cardinality(self, label: str) -> float:
        """Expected matches of one *dynamic* equality probe against a
        label's value index (the value is only known per execution):
        occurrences per distinct value, from the per-label histogram."""
        histogram = self._histogram(label)
        if histogram is not None:
            distinct = sum(histogram.distincts)
            return max(histogram.total / max(1, distinct), 0.01)
        matches = float(self.statistics.label_counts.get(label, 0))
        return max(matches * self.text_value_selectivity(), 0.01)

    # -- selections -----------------------------------------------------------------

    def base_cardinality(self, conditions: list[Compare], alias: str
                         ) -> float:
        """Estimated rows of ``σ_conditions(XASR)`` for one alias.

        Handles the condition shapes the translator emits; anything else
        contributes an independence-assumption factor of 1/3.
        """
        cardinality = float(self.relation_size)
        node_type = None
        label = None
        text_value = None
        text_low = None
        text_high = None
        extra = 1.0
        for condition in conditions:
            left, op, right = condition.left, condition.op, condition.right
            if isinstance(right, Attr) and not isinstance(left, Attr):
                left, right = right, left
                op = condition.flipped().op
            if not isinstance(left, Attr) or left.alias != alias:
                continue
            if left.column == "type" and op == EQ \
                    and isinstance(right, Const):
                node_type = right.value
            elif left.column == "value" and op == EQ \
                    and isinstance(right, Const):
                if node_type == TEXT:
                    text_value = right.value
                else:
                    label = right.value
            elif left.column == "value" and op in (LT, GT) \
                    and isinstance(right, Const):
                # A text-value range bound; the pair (or a single open
                # bound) is estimated from the value histogram below.
                if op == GT:
                    text_low = right.value
                else:
                    text_high = right.value
            elif left.column == "parent_in" and op == EQ:
                extra *= self.child_fanout() / self.relation_size
            elif left.column in ("in", "out") and op in (LT, GT):
                # One side of a descendant interval: the pair of them
                # selects avg-depth nodes out of the relation.  An
                # interval anchored at the document root spans the whole
                # relation and filters nothing.
                if not _is_root_field(right):
                    extra *= (self.descendant_count()
                              / self.relation_size) ** 0.5
            elif left.column == "in" and op == EQ:
                extra *= 1.0 / self.relation_size
            else:
                extra *= 1 / 3
        if label is not None:
            cardinality = self.label_cardinality(label)
        elif text_value is not None:
            cardinality = self.text_eq_cardinality(text_value)
        elif text_low is not None or text_high is not None:
            cardinality = self.text_range_cardinality(text_low, text_high)
        elif node_type is not None:
            cardinality = self.type_cardinality(int(node_type))
        return max(cardinality * extra, 0.01)

    # -- joins -------------------------------------------------------------------------

    def join_selectivity(self, conditions: list[Compare]) -> float:
        """Selectivity of join predicates between two sub-plans."""
        if not conditions:
            return 1.0  # cross product
        selectivity = 1.0
        seen_interval = False
        for condition in conditions:
            shape = _join_shape(condition)
            if shape == "parent":
                selectivity *= self.child_fanout() / self.relation_size
            elif shape == "interval":
                if not seen_interval:
                    selectivity *= (self.descendant_count()
                                    / self.relation_size)
                    seen_interval = True
            elif shape == "value":
                selectivity *= self.text_value_selectivity()
            elif shape == "key":
                selectivity *= 1.0 / self.relation_size
            else:
                selectivity *= 1 / 3
        return selectivity


def _is_root_field(operand) -> bool:
    """True for ``$#root.in`` / ``$#root.out`` operands."""
    return isinstance(operand, VarField) and operand.var == ROOT_VAR


def _join_shape(condition: Compare) -> str:
    """Classify a two-alias join condition."""
    left, right = condition.left, condition.right
    if not (isinstance(left, Attr) and isinstance(right, Attr)):
        return "other"
    columns = {left.column, right.column}
    if condition.op == EQ:
        if columns == {"parent_in", "in"}:
            return "parent"
        if columns == {"value"}:
            return "value"
        if columns == {"in"}:
            return "key"
        return "other"
    if columns <= {"in", "out"}:
        return "interval"
    return "other"
