"""Cardinality estimation from document statistics.

The estimator consumes exactly the statistics the paper prescribes
(per-label counts, average node depth, node totals) and exposes the
quantities the cost model needs:

* base cardinality of a selection over XASR;
* fan-out of the child axis;
* expected descendant count (the average-depth trick: in any tree, the sum
  of subtree sizes equals the sum of depths plus n, so the expected number
  of proper descendants of a uniformly random node is exactly the average
  depth);
* join selectivities for structural and value joins.

**Calibration.**  ``calibration`` degrades the estimator on purpose:

* ``"calibrated"`` — use the statistics faithfully;
* ``"uniform-labels"`` — ignore label skew: every label gets the same
  selectivity (Engine 2's failure mode in Figure 7: with skew-blind
  estimates, two joins "with very different selectivities" look alike and
  the unselective one ends up at the bottom of the plan);
* ``"pessimistic-text"`` — assume text-value equality never filters
  (selectivity 1), discouraging value-probe plans.
"""

from __future__ import annotations

from repro.algebra.ra import Attr, Compare, Const, EQ, GT, LT, VarField
from repro.xasr.loader import DocumentStatistics
from repro.xasr.schema import ELEMENT, TEXT
from repro.xq.ast import ROOT_VAR

#: Default guess for the selectivity of ``text-value = constant`` among
#: text nodes, when no per-value statistics exist.
TEXT_VALUE_SELECTIVITY = 0.01

CALIBRATIONS = ("calibrated", "uniform-labels", "pessimistic-text")


class CardinalityEstimator:
    """Estimates cardinalities of XASR selections and joins."""

    def __init__(self, statistics: DocumentStatistics,
                 calibration: str = "calibrated"):
        if calibration not in CALIBRATIONS:
            raise ValueError(f"unknown calibration {calibration!r}")
        self.statistics = statistics
        self.calibration = calibration

    # -- base quantities --------------------------------------------------------

    @property
    def relation_size(self) -> int:
        """|XASR| — one tuple per node."""
        return max(1, self.statistics.total_nodes)

    def label_cardinality(self, label: str) -> float:
        """Estimated number of elements with ``label``."""
        stats = self.statistics
        if self.calibration == "uniform-labels":
            distinct = max(1, len(stats.label_counts))
            return stats.element_count / distinct
        return float(stats.label_counts.get(label, 0))

    def type_cardinality(self, node_type: int) -> float:
        stats = self.statistics
        if node_type == ELEMENT:
            return float(stats.element_count)
        if node_type == TEXT:
            return float(stats.text_count)
        return 1.0  # the root

    def child_fanout(self) -> float:
        """Average number of children per node (every non-root node has
        exactly one parent)."""
        return (self.relation_size - 1) / self.relation_size + 1.0

    def descendant_count(self) -> float:
        """Expected number of proper descendants of a random node."""
        return max(1.0, self.statistics.average_depth)

    def text_value_selectivity(self) -> float:
        if self.calibration == "pessimistic-text":
            return 1.0
        return TEXT_VALUE_SELECTIVITY

    # -- selections -----------------------------------------------------------------

    def base_cardinality(self, conditions: list[Compare], alias: str
                         ) -> float:
        """Estimated rows of ``σ_conditions(XASR)`` for one alias.

        Handles the condition shapes the translator emits; anything else
        contributes an independence-assumption factor of 1/3.
        """
        cardinality = float(self.relation_size)
        node_type = None
        label = None
        text_value = None
        extra = 1.0
        for condition in conditions:
            left, op, right = condition.left, condition.op, condition.right
            if isinstance(right, Attr) and not isinstance(left, Attr):
                left, right = right, left
                op = condition.flipped().op
            if not isinstance(left, Attr) or left.alias != alias:
                continue
            if left.column == "type" and op == EQ \
                    and isinstance(right, Const):
                node_type = right.value
            elif left.column == "value" and op == EQ \
                    and isinstance(right, Const):
                if node_type == TEXT:
                    text_value = right.value
                else:
                    label = right.value
            elif left.column == "parent_in" and op == EQ:
                extra *= self.child_fanout() / self.relation_size
            elif left.column in ("in", "out") and op in (LT, GT):
                # One side of a descendant interval: the pair of them
                # selects avg-depth nodes out of the relation.  An
                # interval anchored at the document root spans the whole
                # relation and filters nothing.
                if not _is_root_field(right):
                    extra *= (self.descendant_count()
                              / self.relation_size) ** 0.5
            elif left.column == "in" and op == EQ:
                extra *= 1.0 / self.relation_size
            else:
                extra *= 1 / 3
        if label is not None:
            cardinality = self.label_cardinality(label)
        elif text_value is not None:
            cardinality = (self.type_cardinality(TEXT)
                           * self.text_value_selectivity())
        elif node_type is not None:
            cardinality = self.type_cardinality(int(node_type))
        return max(cardinality * extra, 0.01)

    # -- joins -------------------------------------------------------------------------

    def join_selectivity(self, conditions: list[Compare]) -> float:
        """Selectivity of join predicates between two sub-plans."""
        if not conditions:
            return 1.0  # cross product
        selectivity = 1.0
        seen_interval = False
        for condition in conditions:
            shape = _join_shape(condition)
            if shape == "parent":
                selectivity *= self.child_fanout() / self.relation_size
            elif shape == "interval":
                if not seen_interval:
                    selectivity *= (self.descendant_count()
                                    / self.relation_size)
                    seen_interval = True
            elif shape == "value":
                selectivity *= self.text_value_selectivity()
            elif shape == "key":
                selectivity *= 1.0 / self.relation_size
            else:
                selectivity *= 1 / 3
        return selectivity


def _is_root_field(operand) -> bool:
    """True for ``$#root.in`` / ``$#root.out`` operands."""
    return isinstance(operand, VarField) and operand.var == ROOT_VAR


def _join_shape(condition: Compare) -> str:
    """Classify a two-alias join condition."""
    left, right = condition.left, condition.right
    if not (isinstance(left, Attr) and isinstance(right, Attr)):
        return "other"
    columns = {left.column, right.column}
    if condition.op == EQ:
        if columns == {"parent_in", "in"}:
            return "parent"
        if columns == {"value"}:
            return "value"
        if columns == {"in"}:
            return "key"
        return "other"
    if columns <= {"in", "out"}:
        return "interval"
    return "other"
