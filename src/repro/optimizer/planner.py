"""PSX blocks → physical plans.

This is where milestones 3 and 4 meet: selection pushing (local predicates
sink into access paths), join creation (two-alias predicates become join
or probe conditions instead of post-filters on a product), access-path
selection, cost-based join reordering, semijoin creation via projection
pushing (Example 6's QP2), and the document-order decision.

The planner is configured by :class:`PlannerConfig` — the feature flags of
one "student engine".  Turning flags off degrades the planner back through
the milestones:

* everything off → QP0-style plans: products in syntactic order, all
  predicates evaluated on top, external sort before projection
  (milestone 2/early-3 behaviour);
* heuristics on, cost off → milestone 3: selections pushed, joins created,
  order-preserving join orders, one-pass duplicate elimination;
* everything on → milestone 4: statistics-driven access paths, INL joins,
  join reordering, semijoins.

Order safety invariant: a left-deep tree of order-preserving joins whose
first ``k`` leaves are exactly the vartuple aliases (in vartuple order)
yields rows lexicographically sorted on the projection attributes, so the
projection deduplicates in one pass; any other leaf order gets an external
sort below the projection.  Semijoins add no columns and never break the
invariant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.ra import (
    Attr,
    Compare,
    Const,
    EQ,
    GT,
    LT,
    PSX,
    VarField,
)
from repro.errors import PlanningError
from repro.optimizer.cost import CostModel, Costed
from repro.physical.context import DEFAULT_BATCH_SIZE
from repro.optimizer.stats import CardinalityEstimator
from repro.physical.materialize import Materializer
from repro.physical.operators import (
    ChildLookup,
    ConstantRow,
    Filter,
    FullScan,
    IndexNestedLoopsJoin,
    LabelIndexScan,
    NestedLoopsJoin,
    PhysicalOp,
    PrimaryLookup,
    PrimaryRangeScan,
    ProjectBindings,
    ResidualFilter,
    SemiJoin,
    ValueIndexProbe,
    ValueIndexScan,
)
from repro.physical.sort import ExternalSort
from repro.xasr.loader import DocumentStatistics
from repro.xasr.schema import ELEMENT, TEXT


@dataclass(frozen=True)
class PlannerConfig:
    """Feature flags of one engine's optimizer."""

    use_label_index: bool = True
    use_parent_index: bool = True
    use_primary_range: bool = True
    use_inl_join: bool = True
    use_semijoin: bool = True
    #: Consider secondary value indexes (``XmlDbms.create_index``) for
    #: text-value equality and range predicates.
    use_value_index: bool = True
    push_selections: bool = True
    create_joins: bool = True
    join_reorder: str = "cost"        # "syntactic" | "cost"
    order_strategy: str = "auto"      # "preserve" | "sort" | "auto"
    cost_based: bool = True
    calibration: str = "calibrated"
    sort_run_budget_rows: int = 10_000
    materialize_threshold_rows: int = 2_000
    #: Rows per block in the vectorized execution protocol; recorded on
    #: plan roots so ``explain()`` reports it.  The session layer may
    #: override the size actually used at execution time
    #: (``ExecutionOptions.batch_size``).
    batch_size: int = DEFAULT_BATCH_SIZE

    def __post_init__(self) -> None:
        if self.join_reorder not in ("syntactic", "cost"):
            raise PlanningError(f"bad join_reorder {self.join_reorder!r}")
        if self.order_strategy not in ("preserve", "sort", "auto"):
            raise PlanningError(
                f"bad order_strategy {self.order_strategy!r}")
        if self.batch_size < 1:
            raise PlanningError(
                f"batch_size must be >= 1, got {self.batch_size}")


@dataclass
class _Access:
    """A chosen access path for one alias."""

    op: PhysicalOp
    costed: Costed
    correlated: bool            # reads outer aliases per probe
    leftover: list[Compare]     # join conds not folded into the op


class Planner:
    """Builds a physical plan for each PSX block of a TPM tree.

    ``value_indexes`` names the document labels that carry a secondary
    value index (``XmlDbms.create_index``); plan caches key on the
    document's catalog version, which index creation bumps, so a planner
    never holds a stale view of the available indexes.
    """

    def __init__(self, statistics: DocumentStatistics,
                 config: PlannerConfig | None = None,
                 value_indexes: frozenset[str] | None = None):
        self.config = config or PlannerConfig()
        self.estimator = CardinalityEstimator(
            statistics, calibration=self.config.calibration)
        self.cost_model = CostModel(self.estimator)
        self.value_indexes = frozenset(value_indexes or ())

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------

    def plan(self, psx: PSX) -> PhysicalOp:
        """Physical plan producing deduplicated vartuple rows for ``psx``."""
        if not psx.relations:
            op: PhysicalOp = ConstantRow()
            if psx.residuals:
                op = ResidualFilter(op, list(psx.residuals))
            root = ProjectBindings(op, aliases=(), assume_sorted=True)
            root.batch_size = self.config.batch_size
            return root

        value_preds = (_find_value_predicates(psx, self.value_indexes)
                       if self.config.use_value_index else {})
        candidates: list[tuple[float, PhysicalOp]] = []
        for leaf_order, strategy in self._leaf_orders(psx, value_preds):
            plan, costed = self._build(psx, leaf_order, strategy,
                                       value_preds)
            candidates.append((costed.cost, plan))
        if self.config.cost_based:
            candidates.sort(key=lambda item: item[0])
        chosen = candidates[0][1]
        chosen.batch_size = self.config.batch_size
        return chosen

    # ------------------------------------------------------------------
    # join-order candidates
    # ------------------------------------------------------------------

    def _leaf_orders(self, psx: PSX,
                     value_preds: dict[str, "_ValuePred"] | None = None
                     ) -> list[tuple[list[str], str]]:
        """Candidate (leaf order, order strategy) pairs.

        Strategy "preserve": the vartuple aliases lead, in vartuple order;
        one-pass dedup, no sort.  Strategy "sort": cost-greedy order with
        an external sort below the projection.
        """
        config = self.config
        binding = list(dict.fromkeys(psx.projected_aliases))
        nonbinding = [alias for alias in psx.relations
                      if alias not in binding]

        orders: list[tuple[list[str], str]] = []
        if config.join_reorder == "syntactic":
            syntactic = list(psx.relations)
            safe = syntactic[:len(binding)] == binding
            if safe and config.order_strategy in ("preserve", "auto"):
                orders.append((syntactic, "preserve"))
            else:
                orders.append((syntactic, "sort"))
            return orders

        if config.order_strategy in ("preserve", "auto"):
            orders.append((binding + self._greedy_tail(psx, binding,
                                                       nonbinding,
                                                       value_preds),
                           "preserve"))
        if config.order_strategy in ("sort", "auto"):
            orders.append((self._greedy_order(psx, value_preds), "sort"))
        if not orders:
            orders.append((list(psx.relations), "sort"))
        return orders

    def _greedy_tail(self, psx: PSX, placed: list[str],
                     remaining: list[str],
                     value_preds: dict[str, "_ValuePred"] | None = None
                     ) -> list[str]:
        """Order the non-binding aliases: connected-first, cheapest-first."""
        tail: list[str] = []
        current = list(placed)
        pending = list(remaining)
        while pending:
            best = min(pending,
                       key=lambda alias: (*self._attach_estimate(
                           psx, current, alias, value_preds), alias))
            tail.append(best)
            current.append(best)
            pending.remove(best)
        return tail

    def _greedy_order(self, psx: PSX,
                      value_preds: dict[str, "_ValuePred"] | None = None
                      ) -> list[str]:
        """Full greedy join order: cheapest base, then cheapest attach."""
        aliases = list(psx.relations)
        if not self.config.cost_based:
            return aliases
        # Ties (equal estimates) are broken deterministically by alias
        # name.  With a well-calibrated estimator ties are rare; with a
        # skew-blind estimator every label selection ties, so the
        # tie-break — not the data — picks the join order.  This is the
        # reproduction of Figure 7's Engine-2 "unlucky estimates" failure.
        start = min(aliases,
                    key=lambda alias: (self._base_estimate(
                        psx, alias, value_preds), alias))
        order = [start]
        pending = [alias for alias in aliases if alias != start]
        while pending:
            best = min(pending,
                       key=lambda alias: (*self._attach_estimate(
                           psx, order, alias, value_preds), alias))
            order.append(best)
            pending.remove(best)
        return order

    def _base_estimate(self, psx: PSX, alias: str,
                       value_preds: dict[str, "_ValuePred"] | None = None
                       ) -> float:
        rows = self.estimator.base_cardinality(
            psx.local_conditions(alias), alias)
        # A text alias answerable from a per-label value index is
        # estimated with the label-scoped histogram: the document-wide
        # estimate can be orders of magnitude off for values shared with
        # other labels, which would hide the index-first join order.
        pred = (value_preds or {}).get(alias)
        if pred is not None:
            indexed = self._value_pred_estimate(pred)
            if indexed is not None:
                rows = min(rows, indexed)
        return rows

    def _value_pred_estimate(self, pred: "_ValuePred") -> float | None:
        """Per-label estimate of a value predicate with static bounds."""
        estimator = self.estimator
        if pred.eq is not None:
            if isinstance(pred.eq[1], Const):
                return estimator.label_text_cardinality(
                    pred.label, value=str(pred.eq[1].value))
            return estimator.label_text_probe_cardinality(pred.label)
        low = (str(pred.low[1].value) if pred.low is not None
               and isinstance(pred.low[1], Const) else None)
        high = (str(pred.high[1].value) if pred.high is not None
                and isinstance(pred.high[1], Const) else None)
        if low is None and high is None:
            return None
        return estimator.label_text_cardinality(pred.label, low=low,
                                                high=high)

    def _attach_estimate(self, psx: PSX, placed: list[str], alias: str,
                         value_preds: dict[str, "_ValuePred"] | None = None
                         ) -> tuple[int, float]:
        """Sort key for greedy attachment: connected beats disconnected,
        then estimated result growth."""
        connecting = [condition for condition in psx.conditions
                      if condition.is_join_condition()
                      and alias in condition.aliases()
                      and (condition.aliases() - {alias}) <= set(placed)]
        rows = self._base_estimate(psx, alias, value_preds)
        selectivity = self.estimator.join_selectivity(connecting)
        return (0 if connecting else 1, rows * selectivity)

    # ------------------------------------------------------------------
    # plan construction
    # ------------------------------------------------------------------

    def _build(self, psx: PSX, leaf_order: list[str], strategy: str,
               value_preds: dict[str, "_ValuePred"] | None = None
               ) -> tuple[PhysicalOp, Costed]:
        config = self.config
        binding = list(dict.fromkeys(psx.projected_aliases))
        nonbinding_set = {alias for alias in psx.relations
                          if alias not in binding}
        consumed: set[int] = set()  # ids of conditions already enforced

        def available_conditions(placed: list[str], alias: str
                                 ) -> list[Compare]:
            found = []
            for condition in psx.conditions:
                if id(condition) in consumed:
                    continue
                aliases = condition.aliases()
                if alias in aliases and aliases <= set(placed) | {alias}:
                    found.append(condition)
            return found

        placed: list[str] = []
        plan: PhysicalOp | None = None
        plan_cost = Costed(0.0, 1.0)

        for alias in leaf_order:
            conditions = available_conditions(placed, alias)
            if not config.push_selections:
                # Milestone-2 style: scan raw, filter later on top.
                access = _Access(FullScan(alias, []),
                                 self.cost_model.full_scan(
                                     self.estimator.relation_size),
                                 correlated=False, leftover=conditions)
            else:
                correlated_allowed = bool(placed) and config.use_inl_join
                access = self._choose_access(
                    alias, conditions, correlated_allowed,
                    (value_preds or {}).get(alias))
            for condition in conditions:
                if condition not in access.leftover:
                    consumed.add(id(condition))

            if plan is None:
                plan = access.op
                if access.leftover:
                    plan = Filter(plan, access.leftover)
                    for condition in access.leftover:
                        consumed.add(id(condition))
                plan_cost = access.costed
                placed.append(alias)
                continue

            # A semijoin discards the probe's columns, so it is only legal
            # when nothing later (conditions still pending, residuals)
            # needs this alias.
            future = [c for c in psx.conditions
                      if id(c) not in consumed and c not in conditions]
            referenced_later = (
                any(alias in c.aliases() for c in future)
                or any(binding == ("alias", alias)
                       for residual in psx.residuals
                       for __, binding in residual.bound))
            # Semijoins add no columns, so they are order-safe under any
            # strategy.
            semijoin_ok = (config.use_semijoin
                           and alias in nonbinding_set
                           and not referenced_later)
            plan, plan_cost = self._attach(plan, plan_cost, access,
                                           semijoin=semijoin_ok)
            for condition in access.leftover:
                consumed.add(id(condition))
            placed.append(alias)

        assert plan is not None
        remaining = [condition for condition in psx.conditions
                     if id(condition) not in consumed]
        if remaining:
            plan = Filter(plan, remaining)
        if psx.residuals:
            plan = ResidualFilter(plan, list(psx.residuals))

        if strategy == "sort" and binding:
            sort = ExternalSort(plan, tuple(binding),
                                run_budget_rows=config.sort_run_budget_rows)
            sort_cost = self.cost_model.external_sort(plan_cost)
            plan, plan_cost = sort, sort_cost
        plan = ProjectBindings(plan, tuple(psx.projected_aliases),
                               assume_sorted=True)
        plan.estimated_cost = plan_cost.cost
        plan.estimated_rows = plan_cost.rows
        return plan, plan_cost

    def _attach(self, plan: PhysicalOp, plan_cost: Costed, access: _Access,
                semijoin: bool) -> tuple[PhysicalOp, Costed]:
        """Join the chosen access path onto the current left-deep plan."""
        config = self.config
        if access.correlated and config.use_inl_join:
            inner: PhysicalOp = access.op
            if access.leftover:
                inner = Filter(inner, access.leftover)
            if semijoin:
                joined: PhysicalOp = SemiJoin(plan, inner)
                cost = self.cost_model.semi_join(plan_cost, access.costed)
            else:
                joined = IndexNestedLoopsJoin(plan, inner)
                cost = self.cost_model.index_nested_loops_join(
                    plan_cost, access.costed)
            return joined, cost

        inner = Materializer(access.op,
                             memory_threshold_rows=config
                             .materialize_threshold_rows)
        selectivity = self.estimator.join_selectivity(access.leftover)
        if semijoin:
            probe: PhysicalOp = Filter(inner, access.leftover) \
                if access.leftover else inner
            joined = SemiJoin(plan, probe)
            cost = self.cost_model.semi_join(plan_cost, access.costed)
        else:
            joined = NestedLoopsJoin(plan, inner, access.leftover)
            cost = self.cost_model.nested_loops_join(plan_cost,
                                                     access.costed,
                                                     selectivity)
        return joined, cost

    # ------------------------------------------------------------------
    # access-path selection
    # ------------------------------------------------------------------

    def _choose_access(self, alias: str, conditions: list[Compare],
                       correlated_allowed: bool,
                       value_pred: "_ValuePred | None" = None) -> _Access:
        """Pick the cheapest feasible access path for one alias.

        ``conditions`` are all enforceable conditions (local ones plus join
        conditions against already-placed aliases).  Conditions the chosen
        path cannot enforce itself come back as ``leftover`` (evaluated by
        the enclosing join).

        Correlation discipline: an access op that reads other aliases
        (through its key operand or its filter conditions) is marked
        ``correlated`` and may only run as an INL/semijoin probe; when
        probes are not allowed, correlated conditions are kept out of the
        op entirely and surface as join leftovers, so the op stays safely
        materialisable.
        """
        config = self.config
        estimator = self.estimator
        model = self.cost_model
        shapes = _classify(alias, conditions, correlated_allowed)
        local = [c for c in conditions
                 if not _mentions_other_alias(c, alias)]
        correlated_conds = [c for c in conditions if c not in local]
        local_rows = estimator.base_cardinality(local, alias)
        # Fraction of the relation surviving the local predicates — the
        # per-probe output estimate for correlated access paths.
        local_fraction = local_rows / estimator.relation_size

        options: list[tuple[float, int, _Access]] = []

        def add(op: PhysicalOp, costed: Costed, key_correlated: bool,
                leftover: list[Compare], rank: int) -> None:
            internal = any(_mentions_other_alias(c, alias)
                           for c in getattr(op, "conditions", []))
            options.append((costed.cost, rank,
                            _Access(op, costed,
                                    key_correlated or internal, leftover)))

        def rest_for(absorbed: list[Compare]) -> tuple[list[Compare],
                                                       list[Compare]]:
            """Conditions for inside the op vs. leftover, given what the
            access method absorbed."""
            if correlated_allowed:
                return ([c for c in conditions if c not in absorbed], [])
            return ([c for c in local if c not in absorbed],
                    [c for c in correlated_conds if c not in absorbed])

        if shapes.in_eq is not None and (correlated_allowed
                                         or not shapes.in_correlated):
            inside, leftover = rest_for([shapes.in_eq])
            op = PrimaryLookup(alias, shapes.in_operand, inside)
            costed = Costed(model.primary_lookup().cost,
                            max(local_fraction, 0.001))
            add(op, costed, shapes.in_correlated, leftover, rank=0)

        if shapes.parent_eq is not None and config.use_parent_index \
                and (correlated_allowed or not shapes.parent_correlated):
            inside, leftover = rest_for([shapes.parent_eq])
            op = ChildLookup(alias, shapes.parent_operand, inside)
            fanout = estimator.child_fanout()
            rows = max(fanout * local_fraction, 0.001)
            costed = model.child_lookup(fanout, rows)
            add(op, costed, shapes.parent_correlated, leftover, rank=1)

        if shapes.range_pair is not None and config.use_primary_range:
            low_cond, high_cond, low_op, high_op, corr = shapes.range_pair
            if correlated_allowed or not corr:
                inside, leftover = rest_for([low_cond, high_cond])
                op = PrimaryRangeScan(alias, low_op, high_op, inside)
                # A range anchored at the document root is a full-relation
                # scan; any other anchor spans an average subtree.
                if _is_root_anchor(low_op):
                    candidates = float(estimator.relation_size)
                else:
                    candidates = estimator.descendant_count()
                rows = max(candidates * local_fraction, 0.001)
                costed = model.primary_range_scan(candidates, rows)
                add(op, costed, corr, leftover, rank=2)

        if value_pred is not None and config.use_value_index:
            option = self._value_index_option(alias, value_pred,
                                              conditions, rest_for,
                                              correlated_allowed)
            if option is not None:
                op, costed, key_correlated, leftover = option
                add(op, costed, key_correlated, leftover, rank=3)

        if shapes.label is not None and config.use_label_index:
            node_type, value_cond, type_cond = shapes.label
            inside, leftover = rest_for([value_cond, type_cond])
            value = value_cond.right.value \
                if isinstance(value_cond.right, Const) \
                else value_cond.left.value
            if node_type == ELEMENT:
                matches = estimator.label_cardinality(value)
            else:
                matches = estimator.text_eq_cardinality(value)
            op = LabelIndexScan(alias, node_type, value, inside)
            costed = model.label_index_scan(max(matches, 0.01))
            add(op, costed, False, leftover, rank=3)

        if shapes.value_probe is not None and config.use_label_index \
                and correlated_allowed:
            node_type, value_cond, type_cond, operand = shapes.value_probe
            inside, leftover = rest_for([value_cond, type_cond])
            matches = (estimator.type_cardinality(node_type)
                       * estimator.text_value_selectivity())
            # Beyond the probed (type, value) the op only re-applies the
            # remaining local predicates.
            type_fraction = max(
                estimator.type_cardinality(node_type), 1.0) \
                / estimator.relation_size
            rows = max(matches * min(1.0, local_fraction / type_fraction),
                       0.001)
            op = ValueIndexProbe(alias, node_type, operand, inside)
            costed = Costed(model.label_index_scan(max(matches, 0.01)).cost,
                            rows)
            add(op, costed, True, leftover, rank=4)

        # Full scan fallback: only uncorrelated conditions inside, so the
        # scan stays materialisable; correlated ones join later.
        op = FullScan(alias, local)
        costed = model.full_scan(max(local_rows, 0.01))
        add(op, costed, False, correlated_conds, rank=9)

        if self.config.cost_based:
            options.sort(key=lambda item: (item[0], item[1]))
        else:
            options.sort(key=lambda item: item[1])
        return options[0][2]

    def _value_index_option(self, alias: str, value_pred: "_ValuePred",
                            conditions: list[Compare], rest_for,
                            correlated_allowed: bool):
        """Build the :class:`ValueIndexScan` access option for a text
        alias whose parent element carries an indexed label.

        Only value bounds that are enforceable *now* (their conditions
        are in ``conditions``) are folded into the scan; the parent-join
        condition is never absorbed — the index guarantees an
        L-labelled parent, not the specific joined row — and surfaces
        through the usual inside/leftover split.
        """
        enforceable = set(map(id, conditions))
        eq = low = high = None
        if value_pred.eq is not None \
                and id(value_pred.eq[0]) in enforceable:
            eq = value_pred.eq
        else:
            if value_pred.low is not None \
                    and id(value_pred.low[0]) in enforceable:
                low = value_pred.low
            if value_pred.high is not None \
                    and id(value_pred.high[0]) in enforceable:
                high = value_pred.high
        if eq is None and low is None and high is None:
            return None
        absorbed = [bound[0] for bound in (eq, low, high)
                    if bound is not None]
        if value_pred.type_cond is not None \
                and id(value_pred.type_cond) in enforceable:
            absorbed.append(value_pred.type_cond)
        operands = [bound[1] for bound in (eq, low, high)
                    if bound is not None]
        key_correlated = any(isinstance(operand, Attr)
                             for operand in operands)
        if key_correlated and not correlated_allowed:
            return None
        inside, leftover = rest_for(absorbed)
        label = value_pred.label
        estimator = self.estimator
        if eq is not None:
            low_operand = high_operand = eq[1]
            low_inclusive = high_inclusive = True
            if isinstance(eq[1], Const):
                matches = estimator.label_text_cardinality(
                    label, value=str(eq[1].value))
            else:
                matches = estimator.label_text_probe_cardinality(label)
        else:
            low_operand = low[1] if low is not None else None
            high_operand = high[1] if high is not None else None
            low_inclusive = high_inclusive = False
            low_value = (str(low[1].value) if low is not None
                         and isinstance(low[1], Const) else None)
            high_value = (str(high[1].value) if high is not None
                          and isinstance(high[1], Const) else None)
            matches = estimator.label_text_cardinality(
                label, low=low_value, high=high_value)
        op = ValueIndexScan(alias, label, low_operand, high_operand,
                            low_inclusive, high_inclusive, inside)
        costed = self.cost_model.value_index_scan(max(matches, 0.01),
                                                  max(matches, 0.01))
        return op, costed, key_correlated, leftover


# --------------------------------------------------------------------------
# condition shape analysis
# --------------------------------------------------------------------------


@dataclass
class _ValuePred:
    """A value predicate answerable from a secondary value index.

    Attached to the *text* alias ``T`` of the pattern ``T.parent_in =
    A.in ∧ A.type = elem ∧ A.value = label ∧ T.type = text ∧ T.value ⊛
    bound`` when ``label`` carries a value index.  ``eq``/``low``/
    ``high`` pair each bound's :class:`Compare` with its non-``T``
    operand (Const for static predicates, Attr/VarField for probes).
    """

    label: str
    type_cond: Compare | None
    eq: tuple[Compare, object] | None = None
    low: tuple[Compare, object] | None = None
    high: tuple[Compare, object] | None = None


def _find_value_predicates(psx: PSX, value_indexes: frozenset[str]
                           ) -> dict[str, _ValuePred]:
    """Map text aliases to value-index predicates available in ``psx``.

    The detection is cross-alias — the label constraining the text
    node's *parent* element lives on another alias — which is why it
    runs over the whole PSX block rather than inside per-alias shape
    classification.
    """
    if not value_indexes:
        return {}
    types: dict[str, int] = {}
    type_conds: dict[str, Compare] = {}
    labels: dict[str, str] = {}
    for condition in psx.conditions:
        left, op, right = condition.left, condition.op, condition.right
        if isinstance(right, Attr) and not isinstance(left, Attr):
            left, right = right, left
        if not isinstance(left, Attr) or op != EQ \
                or not isinstance(right, Const):
            continue
        if left.column == "type":
            types[left.alias] = int(right.value)
            type_conds[left.alias] = condition
        elif left.column == "value" and isinstance(right.value, str):
            labels.setdefault(left.alias, right.value)
    # Labels only count for element aliases.
    labels = {alias: label for alias, label in labels.items()
              if types.get(alias) == ELEMENT and label in value_indexes}

    parent_of: dict[str, str] = {}  # text alias → indexed parent label
    for condition in psx.conditions:
        if condition.op != EQ:
            continue
        left, right = condition.left, condition.right
        if not (isinstance(left, Attr) and isinstance(right, Attr)):
            continue
        if left.column == "in" and right.column == "parent_in":
            left, right = right, left
        if not (left.column == "parent_in" and right.column == "in"):
            continue
        if types.get(left.alias) == TEXT and right.alias in labels:
            parent_of.setdefault(left.alias, labels[right.alias])

    found: dict[str, _ValuePred] = {}
    for text_alias, label in parent_of.items():
        pred = _ValuePred(label=label,
                          type_cond=type_conds.get(text_alias))
        for condition in psx.conditions:
            normalized = _orient(condition, text_alias)
            if normalized is None:
                continue
            attr, op, other, __ = normalized
            if attr.column != "value":
                continue
            if op == EQ and pred.eq is None:
                pred.eq = (condition, other)
            elif op == GT and pred.low is None:
                pred.low = (condition, other)
            elif op == LT and pred.high is None:
                pred.high = (condition, other)
        if pred.eq or pred.low or pred.high:
            found[text_alias] = pred
    return found


@dataclass
class _Shapes:
    in_eq: Compare | None = None
    in_operand: object = None
    in_correlated: bool = False
    parent_eq: Compare | None = None
    parent_operand: object = None
    parent_correlated: bool = False
    range_pair: tuple | None = None
    label: tuple | None = None
    value_probe: tuple | None = None


def _mentions_other_alias(condition: Compare, alias: str) -> bool:
    return bool(condition.aliases() - {alias})


def _classify(alias: str, conditions: list[Compare],
              correlated_allowed: bool) -> _Shapes:
    """Find index-able condition shapes for ``alias``."""
    shapes = _Shapes()
    node_type: int | None = None
    type_cond: Compare | None = None
    value_const: Compare | None = None
    value_attr: Compare | None = None
    low: tuple[Compare, object] | None = None
    high: tuple[Compare, object] | None = None

    for condition in conditions:
        normalized = _orient(condition, alias)
        if normalized is None:
            continue
        attr, op, other, other_correlated = normalized
        if not correlated_allowed and other_correlated:
            continue
        if attr.column == "in" and op == EQ:
            shapes.in_eq = condition
            shapes.in_operand = other
            shapes.in_correlated = other_correlated
        elif attr.column == "parent_in" and op == EQ:
            shapes.parent_eq = condition
            shapes.parent_operand = other
            shapes.parent_correlated = other_correlated
        elif attr.column == "in" and op == GT:
            low = (condition, other, other_correlated)
        elif attr.column == "out" and op == LT:
            high = (condition, other, other_correlated)
        elif attr.column == "type" and op == EQ \
                and isinstance(other, Const):
            node_type = int(other.value)
            type_cond = condition
        elif attr.column == "value" and op == EQ:
            if isinstance(other, Const):
                value_const = condition
            elif isinstance(other, Attr):
                value_attr = condition

    if low is not None and high is not None:
        # alias.in > X.in  ∧  alias.out < X.out — the bounds must come
        # from the same source for a clustered descendant range.
        if _same_source(low[1], high[1]):
            shapes.range_pair = (low[0], high[0], low[1], high[1],
                                 low[2] or high[2])
    if node_type is not None and value_const is not None:
        shapes.label = (node_type, value_const, type_cond)
    if node_type is not None and value_attr is not None:
        other = value_attr.right if isinstance(value_attr.left, Attr) \
            and value_attr.left.alias == alias else value_attr.left
        shapes.value_probe = (node_type, value_attr, type_cond, other)
    return shapes


def _orient(condition: Compare, alias: str):
    """Return (attr-of-alias, op, other-operand, correlated) or None."""
    left, op, right = condition.left, condition.op, condition.right
    if isinstance(left, Attr) and left.alias == alias \
            and not (isinstance(right, Attr) and right.alias == alias):
        other = right
    elif isinstance(right, Attr) and right.alias == alias \
            and not (isinstance(left, Attr) and left.alias == alias):
        flipped = condition.flipped()
        left, op, right = flipped.left, flipped.op, flipped.right
        other = right
    else:
        return None
    correlated = isinstance(other, Attr)
    return left, op, other, correlated


def _is_root_anchor(operand) -> bool:
    from repro.xq.ast import ROOT_VAR

    return isinstance(operand, VarField) and operand.var == ROOT_VAR


def _same_source(low_operand, high_operand) -> bool:
    if isinstance(low_operand, VarField) \
            and isinstance(high_operand, VarField):
        return (low_operand.var == high_operand.var
                and low_operand.fld == "in" and high_operand.fld == "out")
    if isinstance(low_operand, Attr) and isinstance(high_operand, Attr):
        return (low_operand.alias == high_operand.alias
                and low_operand.column == "in"
                and high_operand.column == "out")
    return False
