"""The page-I/O cost model.

The paper made the students derive cost formulas themselves ("the formulas
for cost-estimates could not simply be taken out of a book"); these are
the formulas this implementation derived for its own operators.

Units: one unit = one logical page access through the buffer pool.  A
small CPU term (rows processed × :data:`CPU_FACTOR`) breaks ties between
plans with equal I/O.

Per-operator formulas (``h`` = primary-tree height, ``m`` = rows of the
input, ``k`` = matching rows):

=====================  =======================================================
FullScan               leaf pages of the primary tree
LabelIndexScan         h_idx + k/entries-per-index-page + k·h   (record fetch)
PrimaryLookup          h
PrimaryRangeScan       h + (subtree nodes)/nodes-per-page
ChildLookup            h_idx + fanout·h
ValueIndexScan         h_idx + k/entries-per-index-page + k·h   (record fetch)
NestedLoopsJoin        cost(outer) + rows(outer)·pages(inner materialised)
IndexNestedLoopsJoin   cost(outer) + rows(outer)·cost(probe)
SemiJoin               cost(outer) + rows(outer)·cost(probe)/2  (early out)
ExternalSort           2·pages(input)·passes + cost(input)
=====================  =======================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.optimizer.stats import CardinalityEstimator

#: Estimated XASR records per primary leaf page (record ≈ 40 bytes inline
#: value, 4 KiB pages, 90% fill).
NODES_PER_PAGE = 80

#: Index entries per secondary-index leaf page (keys only).
ENTRIES_PER_INDEX_PAGE = 200

#: CPU tie-breaker per row.
CPU_FACTOR = 0.001


@dataclass
class Costed:
    """A cost estimate: page I/Os plus estimated output rows."""

    cost: float
    rows: float

    def __add__(self, other: "Costed") -> "Costed":
        return Costed(self.cost + other.cost, self.rows + other.rows)


class CostModel:
    """Cost formulas parameterised by the estimator."""

    def __init__(self, estimator: CardinalityEstimator):
        self.estimator = estimator

    # -- derived base quantities -----------------------------------------------

    @property
    def relation_pages(self) -> float:
        return max(1.0, self.estimator.relation_size / NODES_PER_PAGE)

    @property
    def tree_height(self) -> float:
        return max(1.0, math.log(self.relation_pages + 1, 100))

    # -- access paths -------------------------------------------------------------

    def full_scan(self, output_rows: float) -> Costed:
        return Costed(self.relation_pages
                      + self.estimator.relation_size * CPU_FACTOR,
                      output_rows)

    def label_index_scan(self, matches: float) -> Costed:
        index_pages = self.tree_height + matches / ENTRIES_PER_INDEX_PAGE
        fetches = matches * self.tree_height
        return Costed(index_pages + fetches + matches * CPU_FACTOR, matches)

    def primary_lookup(self) -> Costed:
        return Costed(self.tree_height, 1.0)

    def primary_range_scan(self, range_rows: float,
                           output_rows: float) -> Costed:
        pages = self.tree_height + range_rows / NODES_PER_PAGE
        return Costed(pages + range_rows * CPU_FACTOR, output_rows)

    def child_lookup(self, fanout: float, output_rows: float) -> Costed:
        fetches = fanout * self.tree_height
        return Costed(self.tree_height + fetches + fanout * CPU_FACTOR,
                      output_rows)

    def value_index_scan(self, matches: float,
                         output_rows: float) -> Costed:
        """Per-label value index: descend + contiguous entries + one
        record fetch per match (plus the in-list sort, a CPU term)."""
        index_pages = self.tree_height + matches / ENTRIES_PER_INDEX_PAGE
        fetches = matches * self.tree_height
        return Costed(index_pages + fetches + matches * CPU_FACTOR,
                      output_rows)

    # -- joins ------------------------------------------------------------------------

    def nested_loops_join(self, outer: Costed, inner: Costed,
                          selectivity: float) -> Costed:
        inner_pages = max(1.0, inner.rows / NODES_PER_PAGE)
        rows = outer.rows * inner.rows * selectivity
        cost = (outer.cost + inner.cost
                + outer.rows * inner_pages
                + outer.rows * inner.rows * CPU_FACTOR)
        return Costed(cost, rows)

    def index_nested_loops_join(self, outer: Costed,
                                probe: Costed) -> Costed:
        rows = outer.rows * probe.rows
        cost = outer.cost + outer.rows * probe.cost
        return Costed(cost, rows)

    def semi_join(self, outer: Costed, probe: Costed,
                  pass_fraction: float = 0.5) -> Costed:
        # Early-out: on average half the probe cost; output bounded by
        # the outer.
        cost = outer.cost + outer.rows * probe.cost / 2
        return Costed(cost, max(outer.rows * pass_fraction, 0.01))

    def external_sort(self, input_: Costed,
                      run_budget_rows: float = 10_000.0) -> Costed:
        pages = max(1.0, input_.rows / NODES_PER_PAGE)
        runs = max(1.0, input_.rows / run_budget_rows)
        passes = 1.0 if runs <= 1 else (1.0 + math.ceil(math.log(runs, 8)))
        return Costed(input_.cost + 2 * pages * passes
                      + input_.rows * CPU_FACTOR,
                      input_.rows)
