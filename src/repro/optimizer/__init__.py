"""Milestone 4: statistics, cost model, and the cost-based planner.

"As a minimum of information, each implementation maintained the
selectivity of each of the element node labels occurring in the document,
and the average depth of a node in the data tree, as a gross measure for
the selectivities of ancestor-descendant joins."

* :mod:`~repro.optimizer.stats` — the cardinality estimator built on those
  statistics, with *calibration* knobs: the paper's Engine 2 lost its only
  test because of "unlucky estimates", and reproducing Figure 7 requires
  being able to degrade the estimator without touching the planner;
* :mod:`~repro.optimizer.cost` — page-I/O cost formulas per access path
  and join method;
* :mod:`~repro.optimizer.planner` — PSX block → physical plan: access-path
  selection, join-order search (syntactic / greedy cost-based /
  exhaustive), semijoin creation via projection pushing, and the
  order-strategy decision (order-preserving vs. sort-based).
"""

from repro.optimizer.planner import Planner, PlannerConfig
from repro.optimizer.stats import CardinalityEstimator
from repro.optimizer.cost import CostModel

__all__ = [
    "CardinalityEstimator",
    "CostModel",
    "Planner",
    "PlannerConfig",
]
