"""Recursive-descent parser for XQ.

The concrete syntax is a friendly superset of Figure 1's abstract syntax:

* multi-step paths (``$x/a/b``, ``$x//name/text()``) are accepted and
  desugared into nested ``for``/``some`` expressions over single steps;
* absolute paths (``/journal``, ``//article``) desugar to steps from the
  reserved root variable;
* element constructors take XQuery form: ``<a>{ expr }</a>``, with nested
  constructors, several embedded ``{ expr }`` blocks and literal text all
  allowed in the content;
* ``if (cond) then q`` may optionally end in ``else ()`` (the only legal
  else branch in XQ).

Example::

    >>> from repro.xq import parse_query, unparse
    >>> q = parse_query('for $j in /journal return $j//name')
    >>> print(unparse(q))
    for $j in #root/child::journal return for $#1 in \
$j/descendant::name return $#1
"""

from __future__ import annotations

from repro.errors import XQSyntaxError
from repro.xq.ast import (
    And,
    Axis,
    Condition,
    Constr,
    DeleteNode,
    Empty,
    For,
    If,
    InsertNode,
    InsertPosition,
    LabelTest,
    NodeTest,
    Not,
    Or,
    Program,
    Query,
    RenameNode,
    ReplaceValue,
    ROOT_VAR,
    Sequence,
    Some,
    Step,
    TextLiteral,
    TextTest,
    TrueCond,
    UpdateExpr,
    UpdateList,
    Var,
    VarCmpConst,
    VarEqConst,
    VarEqVar,
    WildcardTest,
)

_KEYWORDS = {"for", "in", "return", "if", "then", "else", "some",
             "satisfies", "and", "or", "not", "true"}

#: Keywords opening an updating expression.  Contextual: they are only
#: recognised at the start of a program body (and after the commas of an
#: update list), so element labels and variables may still use them.
_UPDATE_STARTERS = ("insert", "delete", "replace", "rename")

_NAME_START_EXTRA = set("_")
_NAME_EXTRA = set("_-.")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Scanner:
    """Character-level scanner with position tracking.

    The parser drives it directly (no token stream) so that element
    constructors can switch into raw-content mode, exactly like an XQuery
    lexer's state machine.
    """

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> XQSyntaxError:
        return XQSyntaxError(message, self.line, self.column)

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def advance(self, count: int = 1) -> str:
        consumed = self.text[self.pos:self.pos + count]
        for ch in consumed:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return consumed

    def skip_ws(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.advance()
            elif self.text.startswith("(:", self.pos):
                end = self.text.find(":)", self.pos + 2)
                if end < 0:
                    raise self.error("unterminated comment (: ... :)")
                self.advance(end + 2 - self.pos)
            else:
                break

    # -- lookahead ---------------------------------------------------------

    def looking_at(self, literal: str) -> bool:
        self.skip_ws()
        return self.text.startswith(literal, self.pos)

    def looking_at_keyword(self, word: str) -> bool:
        """True if the next token is exactly the keyword ``word``."""
        self.skip_ws()
        if not self.text.startswith(word, self.pos):
            return False
        after = self.pos + len(word)
        return after >= len(self.text) or not _is_name_char(self.text[after])

    # -- consumption -------------------------------------------------------

    def try_literal(self, literal: str) -> bool:
        if self.looking_at(literal):
            self.advance(len(literal))
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.try_literal(literal):
            found = self.peek() or "<end of query>"
            raise self.error(f"expected {literal!r}, found {found!r}")

    def try_keyword(self, word: str) -> bool:
        if self.looking_at_keyword(word):
            self.advance(len(word))
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.try_keyword(word):
            raise self.error(f"expected keyword {word!r}")

    def read_name(self) -> str:
        self.skip_ws()
        if not _is_name_start(self.peek()):
            found = self.peek() or "<end of query>"
            raise self.error(f"expected a name, found {found!r}")
        start = self.pos
        self.advance()
        while _is_name_char(self.peek()):
            self.advance()
        return self.text[start:self.pos]

    def read_variable(self) -> str:
        self.skip_ws()
        self.expect("$")
        # '$#n' re-reads fresh variables produced by path desugaring, so
        # unparse∘parse round-trips; users cannot clash with them because a
        # plain name may not start with '#'.
        if self.peek() == "#":
            self.advance()
            digits = []
            while self.peek().isdigit():
                digits.append(self.advance())
            if not digits:
                raise self.error("expected digits after '$#'")
            return "#" + "".join(digits)
        name = self.read_name()
        if name in _KEYWORDS:
            raise self.error(f"{name!r} is a keyword, not a variable name")
        return name

    def read_string(self) -> str:
        self.skip_ws()
        quote = self.peek()
        if quote not in ("'", '"'):
            raise self.error("expected a string literal")
        self.advance()
        parts: list[str] = []
        while True:
            ch = self.peek()
            if not ch:
                raise self.error("unterminated string literal")
            if ch == quote:
                self.advance()
                # XQuery-style doubled quote escapes the quote itself.
                if self.peek() == quote:
                    parts.append(self.advance())
                    continue
                return "".join(parts)
            parts.append(self.advance())


class _PathStep:
    """One parsed concrete-syntax step, before desugaring."""

    __slots__ = ("axis", "test")

    def __init__(self, axis: Axis, test: NodeTest):
        self.axis = axis
        self.test = test


class _Parser:
    def __init__(self, text: str):
        self.scanner = _Scanner(text)
        self._fresh_counter = 0

    # -- fresh variables for path desugaring -------------------------------

    def fresh_var(self) -> str:
        """Generate a variable name unwritable in the concrete syntax."""
        self._fresh_counter += 1
        return f"#{self._fresh_counter}"

    # -- entry point --------------------------------------------------------

    def parse(self) -> Query:
        body = self.parse_program().body
        if isinstance(body, UpdateExpr):
            raise XQSyntaxError("updating expression where a query was "
                                "expected; use parse_program / "
                                "Session.execute for updates")
        return body

    def parse_program(self) -> Program:
        externals = self.parse_prolog()
        if any(self.scanner.looking_at_keyword(word)
               for word in _UPDATE_STARTERS):
            body: Query | UpdateExpr = self.parse_update_list()
        else:
            body = self.parse_sequence()
        if not self.scanner.at_end():
            raise self.scanner.error(
                f"unexpected trailing input {self.scanner.peek()!r}")
        return Program(body=body, externals=externals)

    # -- updating expressions ------------------------------------------------

    def parse_update_list(self) -> UpdateExpr:
        """One or more comma-separated updating expressions."""
        updates = [self.parse_update()]
        while self.scanner.try_literal(","):
            updates.append(self.parse_update())
        if len(updates) == 1:
            return updates[0]
        return UpdateList(tuple(updates))

    def parse_update(self) -> UpdateExpr:
        scanner = self.scanner
        if scanner.try_keyword("insert"):
            return self.parse_insert()
        if scanner.try_keyword("delete"):
            if not scanner.try_keyword("nodes"):
                scanner.expect_keyword("node")
            return DeleteNode(target=self.parse_update_target())
        if scanner.try_keyword("replace"):
            scanner.expect_keyword("value")
            scanner.expect_keyword("of")
            scanner.expect_keyword("node")
            target = self.parse_update_target()
            scanner.expect_keyword("with")
            return ReplaceValue(target=target,
                                value=self.parse_update_string("with"))
        if scanner.try_keyword("rename"):
            scanner.expect_keyword("node")
            target = self.parse_update_target()
            scanner.expect_keyword("as")
            return RenameNode(target=target, name=self.parse_update_name())
        raise scanner.error("expected an updating expression (insert, "
                            "delete, replace, rename)")

    def parse_insert(self) -> InsertNode:
        scanner = self.scanner
        scanner.expect_keyword("node")
        content = self.parse_insert_content()
        if scanner.try_keyword("as"):
            if scanner.try_keyword("first"):
                position = InsertPosition.FIRST_INTO
            else:
                scanner.expect_keyword("last")
                position = InsertPosition.LAST_INTO
            scanner.expect_keyword("into")
        elif scanner.try_keyword("into"):
            # Plain ``into`` leaves the position to the implementation
            # (XQUF 3.1.1); this one appends, like ``as last into``.
            position = InsertPosition.LAST_INTO
        elif scanner.try_keyword("before"):
            position = InsertPosition.BEFORE
        elif scanner.try_keyword("after"):
            position = InsertPosition.AFTER
        else:
            raise scanner.error("expected 'into', 'as first into', "
                                "'as last into', 'before' or 'after'")
        return InsertNode(content=content, position=position,
                          target=self.parse_update_target())

    def parse_insert_content(self) -> Query:
        """Content of an insert: constructor, string, or external var.

        Content is evaluated without access to the stored document
        (copied-in new nodes only), so paths are not accepted here.
        """
        if self.scanner.looking_at("<"):
            return self.parse_constructor()
        operand = self._try_string_or_var()
        if operand is None:
            raise self.scanner.error(
                "insert content must be an element constructor, a "
                "string literal or a variable")
        return operand

    def parse_update_target(self) -> Query:
        """Target of an update: a path expression over the document.

        ``for``-shaped targets are also accepted — multi-step paths
        desugar to nested fors, and their unparsed form must re-parse.
        """
        scanner = self.scanner
        if scanner.looking_at_keyword("for"):
            return self.parse_for()
        scanner.skip_ws()
        if scanner.peek() not in ("$", "/"):
            raise scanner.error("update target must be a path expression "
                                "(starting with '$' or '/')")
        return self.parse_path_query()

    def _try_string_or_var(self) -> Query | None:
        """A string-literal or ``$var`` operand, or None — the shared
        scalar-operand scan of the updating grammar."""
        scanner = self.scanner
        scanner.skip_ws()
        if scanner.peek() in ("'", '"'):
            return TextLiteral(scanner.read_string())
        if scanner.peek() == "$":
            return Var(scanner.read_variable())
        return None

    def parse_update_string(self, after: str) -> Query:
        operand = self._try_string_or_var()
        if operand is None:
            raise self.scanner.error(f"expected a string literal or a "
                                     f"variable after '{after}'")
        return operand

    def parse_update_name(self) -> Query:
        operand = self._try_string_or_var()
        if operand is not None:
            return operand
        return TextLiteral(self.scanner.read_name())

    # -- prolog -------------------------------------------------------------

    def parse_prolog(self) -> tuple[str, ...]:
        """``declare variable $x external;`` declarations, in order."""
        scanner = self.scanner
        externals: list[str] = []
        while scanner.looking_at_keyword("declare"):
            scanner.advance(len("declare"))
            scanner.expect_keyword("variable")
            var = scanner.read_variable()
            scanner.expect_keyword("external")
            scanner.expect(";")
            if var in externals:
                raise scanner.error(
                    f"variable ${var} declared external twice")
            externals.append(var)
        return tuple(externals)

    # -- queries ------------------------------------------------------------

    def parse_sequence(self) -> Query:
        query = self.parse_single()
        while self.scanner.try_literal(","):
            query = Sequence(query, self.parse_single())
        return query

    def parse_single(self) -> Query:
        scanner = self.scanner
        if scanner.looking_at_keyword("for"):
            return self.parse_for()
        if scanner.looking_at_keyword("if"):
            return self.parse_if()
        if scanner.looking_at("<"):
            return self.parse_constructor()
        if scanner.looking_at("("):
            return self.parse_parenthesized()
        if scanner.looking_at("$") or scanner.looking_at("/"):
            return self.parse_path_query()
        found = scanner.peek() or "<end of query>"
        raise scanner.error(f"expected a query expression, found {found!r}")

    def parse_parenthesized(self) -> Query:
        scanner = self.scanner
        scanner.expect("(")
        if scanner.try_literal(")"):
            return Empty()
        inner = self.parse_sequence()
        scanner.expect(")")
        return inner

    def parse_for(self) -> Query:
        scanner = self.scanner
        scanner.expect_keyword("for")
        var = scanner.read_variable()
        scanner.expect_keyword("in")
        base, steps = self.parse_path()
        if not steps:
            raise scanner.error("'for' requires a path with at least one "
                                "step (variables bind to single nodes)")
        scanner.expect_keyword("return")
        body = self.parse_single()
        return self._desugar_for(var, base, steps, body)

    def _desugar_for(self, var: str, base: str, steps: list[_PathStep],
                     body: Query) -> Query:
        """``for $v in $base/s1/.../sn return body`` as nested fors."""
        *outer_steps, last = steps
        bindings: list[tuple[str, str, _PathStep]] = []
        current = base
        for step in outer_steps:
            temp = self.fresh_var()
            bindings.append((temp, current, step))
            current = temp
        result: Query = For(var, Step(current, last.axis, last.test), body)
        for temp, source_var, step in reversed(bindings):
            result = For(temp, Step(source_var, step.axis, step.test), result)
        return result

    def parse_if(self) -> Query:
        scanner = self.scanner
        scanner.expect_keyword("if")
        scanner.expect("(")
        cond = self.parse_condition()
        scanner.expect(")")
        scanner.expect_keyword("then")
        body = self.parse_single()
        if scanner.try_keyword("else"):
            scanner.expect("(")
            scanner.expect(")")
        return If(cond, body)

    def parse_constructor(self) -> Query:
        scanner = self.scanner
        scanner.expect("<")
        label = scanner.read_name()
        scanner.skip_ws()
        if scanner.try_literal("/>"):
            return Constr(label, Empty())
        scanner.expect(">")
        body = self.parse_constructor_content(label)
        return Constr(label, body)

    def parse_constructor_content(self, label: str) -> Query:
        """Content of ``<label> ... </label>``: text, ``{expr}``, nested
        constructors."""
        scanner = self.scanner
        parts: list[Query] = []
        text_run: list[str] = []

        def flush_text() -> None:
            if text_run:
                content = "".join(text_run)
                text_run.clear()
                if content.strip():
                    parts.append(TextLiteral(content.strip()))

        while True:
            ch = scanner.peek()
            if not ch:
                raise scanner.error(f"unterminated constructor <{label}>")
            if scanner.text.startswith("</", scanner.pos):
                flush_text()
                scanner.advance(2)
                closing = scanner.read_name()
                if closing != label:
                    raise scanner.error(f"mismatched </{closing}>, expected "
                                        f"</{label}>")
                scanner.skip_ws()
                scanner.expect(">")
                break
            if ch == "<":
                flush_text()
                parts.append(self.parse_constructor())
                continue
            if ch == "{":
                flush_text()
                scanner.advance()
                scanner.skip_ws()
                if scanner.try_literal("}"):
                    continue
                parts.append(self.parse_sequence())
                scanner.expect("}")
                continue
            text_run.append(scanner.advance())
        flush_text()
        if not parts:
            return Empty()
        body = parts[0]
        for part in parts[1:]:
            body = Sequence(body, part)
        return body

    # -- paths --------------------------------------------------------------

    def parse_path(self) -> tuple[str, list[_PathStep]]:
        """Parse ``$var(/step)*`` or an absolute ``/step(/step)*`` path.

        Returns the base variable name and the step list (possibly empty for
        a bare variable).
        """
        scanner = self.scanner
        scanner.skip_ws()
        if scanner.peek() == "$":
            base = scanner.read_variable()
        elif scanner.peek() == "/":
            base = ROOT_VAR
        else:
            raise scanner.error("expected a variable or an absolute path")
        steps: list[_PathStep] = []
        while True:
            scanner.skip_ws()
            if scanner.text.startswith("//", scanner.pos):
                scanner.advance(2)
                steps.append(_PathStep(Axis.DESCENDANT, self.parse_nodetest()))
            elif scanner.peek() == "/":
                scanner.advance()
                axis = Axis.CHILD
                save = scanner.pos
                if _is_name_start(scanner.peek()):
                    word = scanner.read_name()
                    if scanner.text.startswith("::", scanner.pos):
                        scanner.advance(2)
                        axis = self._axis_from_name(word)
                        steps.append(_PathStep(axis, self.parse_nodetest()))
                        continue
                    scanner.pos = save
                steps.append(_PathStep(axis, self.parse_nodetest()))
            else:
                break
        if base == ROOT_VAR and not steps:
            raise scanner.error("'/' must be followed by a step")
        return base, steps

    def _axis_from_name(self, word: str) -> Axis:
        if word == "child":
            return Axis.CHILD
        if word == "descendant":
            return Axis.DESCENDANT
        raise self.scanner.error(f"unknown axis {word!r} (XQ has child and "
                                 "descendant only)")

    def parse_nodetest(self) -> NodeTest:
        scanner = self.scanner
        scanner.skip_ws()
        if scanner.try_literal("*"):
            return WildcardTest()
        name = scanner.read_name()
        if name == "text":
            scanner.expect("(")
            scanner.expect(")")
            return TextTest()
        return LabelTest(name)

    def parse_path_query(self) -> Query:
        """A path used as a query expression; desugars to nested fors."""
        base, steps = self.parse_path()
        if not steps:
            return Var(base)
        *outer, last = steps
        current = base
        bindings: list[tuple[str, str, _PathStep]] = []
        for step in outer:
            temp = self.fresh_var()
            bindings.append((temp, current, step))
            current = temp
        result: Query = Step(current, last.axis, last.test)
        for temp, source_var, step in reversed(bindings):
            result = For(temp, Step(source_var, step.axis, step.test), result)
        return result

    # -- conditions -----------------------------------------------------------

    def parse_condition(self) -> Condition:
        cond = self.parse_and_condition()
        while self.scanner.try_keyword("or"):
            cond = Or(cond, self.parse_and_condition())
        return cond

    def parse_and_condition(self) -> Condition:
        cond = self.parse_primary_condition()
        while self.scanner.try_keyword("and"):
            cond = And(cond, self.parse_primary_condition())
        return cond

    def parse_primary_condition(self) -> Condition:
        scanner = self.scanner
        if scanner.try_keyword("true"):
            scanner.expect("(")
            scanner.expect(")")
            return TrueCond()
        if scanner.try_keyword("not"):
            scanner.expect("(")
            cond = self.parse_condition()
            scanner.expect(")")
            return Not(cond)
        if scanner.looking_at_keyword("some"):
            return self.parse_some()
        if scanner.looking_at("("):
            scanner.expect("(")
            cond = self.parse_condition()
            scanner.expect(")")
            return cond
        if scanner.looking_at("$"):
            left = scanner.read_variable()
            scanner.skip_ws()
            if scanner.peek() in ("<", ">"):
                op = scanner.advance()
                return VarCmpConst(left, op, scanner.read_string())
            scanner.expect("=")
            scanner.skip_ws()
            if scanner.peek() in ("'", '"'):
                return VarEqConst(left, scanner.read_string())
            right = scanner.read_variable()
            return VarEqVar(left, right)
        found = scanner.peek() or "<end of query>"
        raise scanner.error(f"expected a condition, found {found!r}")

    def parse_some(self) -> Condition:
        scanner = self.scanner
        scanner.expect_keyword("some")
        var = scanner.read_variable()
        scanner.expect_keyword("in")
        base, steps = self.parse_path()
        if not steps:
            raise scanner.error("'some' requires a path with at least one "
                                "step")
        scanner.expect_keyword("satisfies")
        cond = self.parse_condition()
        return self._desugar_some(var, base, steps, cond)

    def _desugar_some(self, var: str, base: str, steps: list[_PathStep],
                      cond: Condition) -> Condition:
        """``some $v in $base/s1/.../sn satisfies c`` as nested somes."""
        *outer_steps, last = steps
        current = base
        bindings: list[tuple[str, str, _PathStep]] = []
        for step in outer_steps:
            temp = self.fresh_var()
            bindings.append((temp, current, step))
            current = temp
        result: Condition = Some(var, Step(current, last.axis, last.test),
                                 cond)
        for temp, source_var, step in reversed(bindings):
            result = Some(temp, Step(source_var, step.axis, step.test),
                          result)
        return result


def parse_query(text: str) -> Query:
    """Parse XQ query ``text`` into its abstract syntax tree.

    A ``declare variable $x external;`` prolog is accepted but discarded;
    use :func:`parse_program` to keep the declarations.  Raises
    :class:`~repro.errors.XQSyntaxError` with a source position on
    malformed input.
    """
    return _Parser(text).parse()


def parse_program(text: str) -> Program:
    """Parse a full XQ program: external-variable prolog plus query.

    Returns a :class:`~repro.xq.ast.Program` whose ``externals`` lists the
    ``declare variable $x external;`` declarations in source order.
    """
    return _Parser(text).parse_program()
