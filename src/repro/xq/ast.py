"""Abstract syntax of XQ, mirroring Figure 1 of the paper.

::

    query ::= () | <a>query</a> | query query
            | var | var/axis::nu
            | for var in var/axis::nu return query
            | if cond then query
    cond  ::= var = var | var = string | true()
            | var < string | var > string
            | some var in var/axis::nu satisfies cond
            | cond and cond | cond or cond | not(cond)

The ``<``/``>`` string comparisons extend Figure 1 (which has equality
only); they make range predicates over text values expressible, which
the secondary value indexes answer with B+-tree range scans.
    axis  ::= child | descendant
    nu    ::= a | * | text()

Variables are stored *without* the ``$`` sigil.  The reserved name
:data:`ROOT_VAR` (spelled ``#root``, not writable in the concrete syntax)
denotes the document root; absolute paths desugar to steps from it.

All AST nodes are frozen dataclasses: they hash, compare structurally, and
can safely be shared between rewrite stages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Reserved variable bound to the virtual document root (XASR in-value 1).
ROOT_VAR = "#root"


class Axis(enum.Enum):
    """The two downward axes of XQ."""

    CHILD = "child"
    DESCENDANT = "descendant"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


# --------------------------------------------------------------------------
# Node tests (nu)
# --------------------------------------------------------------------------


class NodeTest:
    """Base class of node tests."""

    __slots__ = ()


@dataclass(frozen=True)
class LabelTest(NodeTest):
    """Matches element nodes labelled ``name``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class WildcardTest(NodeTest):
    """Matches any element node (``*``)."""

    def __str__(self) -> str:
        return "*"


@dataclass(frozen=True)
class TextTest(NodeTest):
    """Matches text nodes (``text()``)."""

    def __str__(self) -> str:
        return "text()"


# --------------------------------------------------------------------------
# Queries
# --------------------------------------------------------------------------


class Query:
    """Base class of query expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Empty(Query):
    """The empty sequence ``()``."""


@dataclass(frozen=True)
class Constr(Query):
    """Element construction ``<label>{ body }</label>``."""

    label: str
    body: Query


@dataclass(frozen=True)
class Sequence(Query):
    """Concatenation ``left, right`` (the grammar's ``query query``)."""

    left: Query
    right: Query


@dataclass(frozen=True)
class TextLiteral(Query):
    """Literal text inside a constructor, e.g. ``<a>hello</a>``.

    Not part of Figure 1's abstract grammar, but the natural concrete-syntax
    companion of element construction; evaluates to a single text node.
    """

    text: str


@dataclass(frozen=True)
class Var(Query):
    """A variable occurrence; evaluates to the single node it is bound to."""

    name: str


@dataclass(frozen=True)
class Step(Query):
    """A single navigation step ``$var/axis::nu``."""

    var: str
    axis: Axis
    test: NodeTest


@dataclass(frozen=True)
class For(Query):
    """``for $var in source return body`` — ``source`` is a single step."""

    var: str
    source: Step
    body: Query


@dataclass(frozen=True)
class If(Query):
    """``if (cond) then body`` with an implicitly empty else branch."""

    cond: Condition
    body: Query


# --------------------------------------------------------------------------
# Conditions
# --------------------------------------------------------------------------


class Condition:
    """Base class of condition expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class TrueCond(Condition):
    """The constant ``true()``."""


@dataclass(frozen=True)
class VarEqVar(Condition):
    """``$left = $right`` — defined only when both bind to text nodes."""

    left: str
    right: str


@dataclass(frozen=True)
class VarEqConst(Condition):
    """``$var = "literal"`` — defined only when ``$var`` binds to a text
    node."""

    var: str
    literal: str


@dataclass(frozen=True)
class VarCmpConst(Condition):
    """``$var < "literal"`` / ``$var > "literal"`` — lexicographic
    comparison of a text-bound variable's value against a string.

    The ordering is plain code-point (Python string) comparison, the
    same order the value indexes and histograms sort by, so range
    predicates are answerable from a B+-tree range scan.
    """

    var: str
    op: str  # "<" | ">"
    literal: str

    def __post_init__(self) -> None:
        if self.op not in ("<", ">"):
            raise ValueError(f"VarCmpConst op must be < or >, got "
                             f"{self.op!r}")


@dataclass(frozen=True)
class Some(Condition):
    """``some $var in source satisfies cond``."""

    var: str
    source: Step
    cond: Condition


@dataclass(frozen=True)
class And(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True)
class Or(Condition):
    left: Condition
    right: Condition


@dataclass(frozen=True)
class Not(Condition):
    cond: Condition


# --------------------------------------------------------------------------
# Update expressions (the XQuery Update Facility subset)
# --------------------------------------------------------------------------


class UpdateExpr:
    """Base class of updating expressions.

    Updating expressions are statements, not queries: they evaluate to
    the empty sequence and instead contribute primitives to a pending
    update list (:mod:`repro.updates.pul`).  ``target`` fields hold
    ordinary XQ path queries evaluated against the *original* document
    state; the updates themselves apply atomically afterwards.
    """

    __slots__ = ()


class InsertPosition(enum.Enum):
    """Where an inserted subtree lands relative to the target node."""

    #: Last child of the target (``into`` and ``as last into``).
    LAST_INTO = "as last into"
    #: First child of the target.
    FIRST_INTO = "as first into"
    #: Immediately preceding sibling of the target.
    BEFORE = "before"
    #: Immediately following sibling of the target.
    AFTER = "after"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class InsertNode(UpdateExpr):
    """``insert node content [as first|as last] into|before|after target``.

    ``content`` is a constructor, text literal or external variable
    (evaluated without access to the document); ``target`` must select
    exactly one node.
    """

    content: Query
    position: InsertPosition
    target: Query


@dataclass(frozen=True)
class DeleteNode(UpdateExpr):
    """``delete node target`` / ``delete nodes target``.

    Deletes the whole subtree under every selected node (zero nodes is a
    no-op, matching XQUF).
    """

    target: Query


@dataclass(frozen=True)
class ReplaceValue(UpdateExpr):
    """``replace value of node target with value``.

    ``target`` must select exactly one text node, or an element whose
    content is a single text node (or empty); ``value`` is a text
    literal or an external variable.
    """

    target: Query
    value: Query


@dataclass(frozen=True)
class RenameNode(UpdateExpr):
    """``rename node target as name`` — target must be one element."""

    target: Query
    name: Query


@dataclass(frozen=True)
class UpdateList(UpdateExpr):
    """A comma-separated list of updating expressions.

    All member expressions' targets are evaluated against the original
    document and their primitives merged into one pending update list,
    which is validated and applied as a single atomic transaction
    (XQUF's snapshot semantics).
    """

    updates: tuple[UpdateExpr, ...]


def update_free_variables(expr: UpdateExpr) -> frozenset[str]:
    """Free variables of an updating expression (targets and values)."""
    if isinstance(expr, UpdateList):
        out: frozenset[str] = frozenset()
        for update in expr.updates:
            out |= update_free_variables(update)
        return out
    if isinstance(expr, InsertNode):
        return free_variables(expr.content) | free_variables(expr.target)
    if isinstance(expr, DeleteNode):
        return free_variables(expr.target)
    if isinstance(expr, ReplaceValue):
        return free_variables(expr.target) | free_variables(expr.value)
    if isinstance(expr, RenameNode):
        return free_variables(expr.target) | free_variables(expr.name)
    raise TypeError(f"not an update expression: {expr!r}")


# --------------------------------------------------------------------------
# Programs: a query plus its external-variable prolog
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Program:
    """A full XQ program: external-variable declarations plus the body.

    ``declare variable $x external;`` entries populate ``externals``;
    ``body`` is the query proper — or, for updating programs, an
    :class:`UpdateExpr`.  Programs are frozen (hence hashable), so a
    program can serve directly as a plan-cache key: two textually
    different query strings that desugar to the same core AST share one
    cached plan.
    """

    body: Query | UpdateExpr
    externals: tuple[str, ...] = ()

    @property
    def is_updating(self) -> bool:
        """True when the body is an updating expression."""
        return isinstance(self.body, UpdateExpr)

    def required_variables(self) -> frozenset[str]:
        """Variables an execution must supply bindings for.

        The union of the declared externals and the free variables of the
        body (minus the reserved root) — free variables without a
        declaration are *implicit* externals, bindable through the
        ``bindings={...}`` dict alone.
        """
        if isinstance(self.body, UpdateExpr):
            free = update_free_variables(self.body)
        else:
            free = free_variables(self.body)
        return frozenset(self.externals) | (free - {ROOT_VAR})


# --------------------------------------------------------------------------
# Structural helpers shared by evaluators and the algebraic translator
# --------------------------------------------------------------------------


def free_variables(expr: Query | Condition) -> frozenset[str]:
    """Free variables of a query or condition.

    ``for`` and ``some`` bind their variable in the body/condition; the
    source step's variable is free.
    """
    if isinstance(expr, (Empty, TextLiteral, TrueCond)):
        return frozenset()
    if isinstance(expr, Var):
        return frozenset({expr.name})
    if isinstance(expr, Step):
        return frozenset({expr.var})
    if isinstance(expr, Constr):
        return free_variables(expr.body)
    if isinstance(expr, Sequence):
        return free_variables(expr.left) | free_variables(expr.right)
    if isinstance(expr, For):
        return (free_variables(expr.source)
                | (free_variables(expr.body) - {expr.var}))
    if isinstance(expr, If):
        return free_variables(expr.cond) | free_variables(expr.body)
    if isinstance(expr, VarEqVar):
        return frozenset({expr.left, expr.right})
    if isinstance(expr, (VarEqConst, VarCmpConst)):
        return frozenset({expr.var})
    if isinstance(expr, Some):
        return (free_variables(expr.source)
                | (free_variables(expr.cond) - {expr.var}))
    if isinstance(expr, (And, Or)):
        return free_variables(expr.left) | free_variables(expr.right)
    if isinstance(expr, Not):
        return free_variables(expr.cond)
    raise TypeError(f"not an XQ expression: {expr!r}")


def contains_constructor(expr: Query) -> bool:
    """True if ``expr`` syntactically contains a node constructor.

    The relfor merging rule of milestone 3 must *not* merge across a
    constructor (see "strict merging" in the paper): a merged relfor would
    fail to emit empty constructed elements for outer bindings with no inner
    matches.
    """
    if isinstance(expr, (Constr, TextLiteral)):
        return True
    if isinstance(expr, Sequence):
        return (contains_constructor(expr.left)
                or contains_constructor(expr.right))
    if isinstance(expr, For):
        return contains_constructor(expr.body)
    if isinstance(expr, If):
        return contains_constructor(expr.body)
    return False


def query_size(expr: Query | Condition) -> int:
    """Number of AST nodes — a convenient complexity measure for tests."""
    if isinstance(expr, (Empty, TextLiteral, Var, Step, TrueCond, VarEqVar,
                         VarEqConst, VarCmpConst)):
        return 1
    if isinstance(expr, Constr):
        return 1 + query_size(expr.body)
    if isinstance(expr, Sequence):
        return 1 + query_size(expr.left) + query_size(expr.right)
    if isinstance(expr, For):
        return 1 + query_size(expr.source) + query_size(expr.body)
    if isinstance(expr, If):
        return 1 + query_size(expr.cond) + query_size(expr.body)
    if isinstance(expr, Some):
        return 1 + query_size(expr.source) + query_size(expr.cond)
    if isinstance(expr, (And, Or)):
        return 1 + query_size(expr.left) + query_size(expr.right)
    if isinstance(expr, Not):
        return 1 + query_size(expr.cond)
    raise TypeError(f"not an XQ expression: {expr!r}")
