"""Unparsing: AST back to canonical XQ concrete syntax.

The output re-parses to an equal AST (``parse(unparse(q)) == q`` for ASTs
produced by the parser — fresh desugaring variables are spelled ``$#n`` and
re-read as-is), which the test suite exercises as a round-trip property.
"""

from __future__ import annotations

from repro.xq.ast import (
    And,
    Condition,
    Constr,
    DeleteNode,
    Empty,
    For,
    If,
    InsertNode,
    Not,
    Or,
    Query,
    RenameNode,
    ReplaceValue,
    ROOT_VAR,
    Sequence,
    Some,
    Step,
    TextLiteral,
    TrueCond,
    UpdateExpr,
    UpdateList,
    Var,
    VarCmpConst,
    VarEqConst,
    VarEqVar,
)


def unparse(expr: Query | Condition | UpdateExpr) -> str:
    """Render an XQ query, condition or updating expression as text."""
    if isinstance(expr, UpdateExpr):
        return _update(expr)
    if isinstance(expr, Query):
        return _query(expr)
    return _condition(expr)


def _string(text: str) -> str:
    return '"' + text.replace('"', '""') + '"'


def _update(expr: UpdateExpr) -> str:
    if isinstance(expr, UpdateList):
        return ", ".join(_update(update) for update in expr.updates)
    if isinstance(expr, InsertNode):
        content = (_string(expr.content.text)
                   if isinstance(expr.content, TextLiteral)
                   else _query(expr.content))
        return (f"insert node {content} {expr.position.value} "
                f"{_query(expr.target)}")
    if isinstance(expr, DeleteNode):
        return f"delete node {_query(expr.target)}"
    if isinstance(expr, ReplaceValue):
        value = (_string(expr.value.text)
                 if isinstance(expr.value, TextLiteral)
                 else _query(expr.value))
        return f"replace value of node {_query(expr.target)} with {value}"
    if isinstance(expr, RenameNode):
        name = (_string(expr.name.text)
                if isinstance(expr.name, TextLiteral)
                else _query(expr.name))
        return f"rename node {_query(expr.target)} as {name}"
    raise TypeError(f"not an update expression: {expr!r}")


def _var(name: str) -> str:
    return f"${name}"


def _step(step: Step) -> str:
    prefix = "" if step.var == ROOT_VAR else _var(step.var)
    return f"{prefix}/{step.axis.value}::{step.test}"


def _query(expr: Query) -> str:
    if isinstance(expr, Empty):
        return "()"
    if isinstance(expr, TextLiteral):
        # Only legal inside a constructor; _constructor_body handles that
        # case.  A standalone text literal has no stand-alone concrete
        # syntax, so wrap it in a constructor-shaped marker for debugging.
        return f"<text>{expr.text}</text>"
    if isinstance(expr, Constr):
        if isinstance(expr.body, Empty):
            return f"<{expr.label}/>"
        return f"<{expr.label}>{_constructor_body(expr.body)}</{expr.label}>"
    if isinstance(expr, Sequence):
        return f"{_query(expr.left)}, {_query(expr.right)}"
    if isinstance(expr, Var):
        return _var(expr.name)
    if isinstance(expr, Step):
        return _step(expr)
    if isinstance(expr, For):
        return (f"for {_var(expr.var)} in {_step(expr.source)} "
                f"return {_braced(expr.body)}")
    if isinstance(expr, If):
        return f"if ({_condition(expr.cond)}) then {_braced(expr.body)}"
    raise TypeError(f"not an XQ query: {expr!r}")


def _constructor_body(expr: Query) -> str:
    """Render constructor content: text literals and nested constructors go
    in raw, everything else inside ``{ ... }`` blocks."""
    parts = _flatten_sequence(expr)
    rendered: list[str] = []
    for part in parts:
        if isinstance(part, TextLiteral):
            rendered.append(part.text)
        elif isinstance(part, Constr):
            rendered.append(_query(part))
        else:
            rendered.append(f"{{ {_query(part)} }}")
    return "".join(rendered)


def _flatten_sequence(expr: Query) -> list[Query]:
    if isinstance(expr, Sequence):
        return _flatten_sequence(expr.left) + _flatten_sequence(expr.right)
    return [expr]


def _braced(expr: Query) -> str:
    """Parenthesize sequences so they parse back as one return body."""
    if isinstance(expr, Sequence):
        return f"({_query(expr)})"
    return _query(expr)


def _condition(cond: Condition) -> str:
    if isinstance(cond, TrueCond):
        return "true()"
    if isinstance(cond, VarEqVar):
        return f"{_var(cond.left)} = {_var(cond.right)}"
    if isinstance(cond, VarEqConst):
        escaped = cond.literal.replace('"', '""')
        return f'{_var(cond.var)} = "{escaped}"'
    if isinstance(cond, VarCmpConst):
        escaped = cond.literal.replace('"', '""')
        return f'{_var(cond.var)} {cond.op} "{escaped}"'
    if isinstance(cond, Some):
        return (f"some {_var(cond.var)} in {_step(cond.source)} "
                f"satisfies {_condition(cond.cond)}")
    if isinstance(cond, And):
        return f"({_condition(cond.left)} and {_condition(cond.right)})"
    if isinstance(cond, Or):
        return f"({_condition(cond.left)} or {_condition(cond.right)})"
    if isinstance(cond, Not):
        return f"not({_condition(cond.cond)})"
    raise TypeError(f"not an XQ condition: {cond!r}")
