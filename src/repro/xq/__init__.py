"""The XQ query language (Figure 1 of the paper).

XQ is composition-free XQuery [Koch, WebDB 2005]: for-expressions,
conditionals, node construction and downward navigation, but no recursion,
duplicate elimination, reordering or aggregation.  Its key property —
variables always bind to *single nodes* of the input document — is what
makes the milestone-2 streaming evaluation and the milestone-3 relational
translation possible.

Public API
----------
:func:`parse_query`
    Text → abstract syntax tree (:mod:`repro.xq.ast`).  The concrete syntax
    accepts multi-step paths (``$x/a//b``) and absolute paths (``/journal``)
    and desugars them to the single-step core grammar.
:func:`evaluate`
    The milestone-1 in-memory evaluator (the library's reference oracle).
:func:`unparse`
    AST → canonical query text.
"""

from repro.xq.ast import (
    And,
    Axis,
    Condition,
    Constr,
    DeleteNode,
    Empty,
    For,
    If,
    InsertNode,
    InsertPosition,
    LabelTest,
    NodeTest,
    Not,
    Or,
    Program,
    Query,
    RenameNode,
    ReplaceValue,
    ROOT_VAR,
    Sequence,
    Some,
    Step,
    TextLiteral,
    TextTest,
    TrueCond,
    UpdateExpr,
    UpdateList,
    Var,
    VarCmpConst,
    VarEqConst,
    VarEqVar,
    WildcardTest,
)
from repro.xq.eval_memory import evaluate
from repro.xq.parser import parse_program, parse_query
from repro.xq.pretty import unparse

__all__ = [
    "Axis",
    "NodeTest",
    "LabelTest",
    "WildcardTest",
    "TextTest",
    "Query",
    "Empty",
    "Constr",
    "Sequence",
    "Var",
    "TextLiteral",
    "Step",
    "For",
    "If",
    "Condition",
    "TrueCond",
    "VarEqVar",
    "VarEqConst",
    "VarCmpConst",
    "Some",
    "And",
    "Or",
    "Not",
    "ROOT_VAR",
    "UpdateExpr",
    "InsertNode",
    "InsertPosition",
    "DeleteNode",
    "ReplaceValue",
    "RenameNode",
    "UpdateList",
    "Program",
    "parse_query",
    "parse_program",
    "evaluate",
    "unparse",
]
