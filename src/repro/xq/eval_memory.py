"""Milestone 1: the in-memory XQ evaluator.

A direct transcription of the denotational semantics: an environment maps
variables to *single nodes* of the input document (or of previously
constructed trees), and every query form maps to a list of result nodes.

This evaluator is the library's correctness oracle — the role Galax played
in the course.  Every other engine (navigational, algebraic, optimized) is
tested for result equality against it.

The paper's simplification is honored faithfully: equality comparisons are
only defined when the compared variables are bound to **text nodes**;
anything else raises :class:`~repro.errors.XQTypeError` at runtime.

Like the storage-backed engines, the evaluator is interruptible: the
optional ``ticker`` callback is invoked inside every navigation loop (the
engine facade wires it to the execution context's deadline check) and the
optional ``meter`` is charged for every node the evaluator materialises
(copies made for construction and yielded results), so the grading
testbed's time and memory caps apply to milestone 1 too.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import XQEvalError, XQTypeError
from repro.xmlkit.dom import Document, Element, Node, Text
from repro.xq.ast import (
    And,
    Axis,
    Condition,
    Constr,
    Empty,
    For,
    If,
    LabelTest,
    Not,
    Or,
    Query,
    ROOT_VAR,
    Sequence,
    Some,
    Step,
    TextLiteral,
    TextTest,
    TrueCond,
    Var,
    VarCmpConst,
    VarEqConst,
    VarEqVar,
    WildcardTest,
)

Environment = dict[str, Node]

#: Crude per-node memory charge, matching the physical layer's accounting
#: (see :data:`repro.physical.context.NODE_BYTES`).
_NODE_BYTES = 96


def _no_tick() -> None:
    return None


class _NoMeter:
    """Null object standing in for a memory meter when none is supplied."""

    __slots__ = ()

    def charge(self, nbytes: int) -> None:
        return None


_NO_METER = _NoMeter()


def evaluate(query: Query, document: Document,
             environment: Environment | None = None,
             ticker=None, meter=None) -> list[Node]:
    """Evaluate ``query`` against ``document``.

    Returns the result sequence as a list of nodes.  Nodes originating from
    the input document are returned *by reference*; constructed elements own
    deep copies of their content (XQuery's copy semantics for node
    construction).

    ``environment`` optionally pre-binds free variables; the root variable
    is always bound to the document node.  ``ticker`` is called inside
    navigation loops (deadline enforcement); ``meter.charge(nbytes)`` is
    called for every materialised node (memory enforcement).
    """
    return list(stream(query, document, environment=environment,
                       ticker=ticker, meter=meter))


def stream(query: Query, document: Document,
           environment: Environment | None = None,
           ticker=None, meter=None) -> Iterator[Node]:
    """Like :func:`evaluate`, but yields result nodes lazily."""
    env: Environment = {ROOT_VAR: document}
    if environment:
        env.update(environment)
    tick = ticker if ticker is not None else _no_tick
    charge = meter if meter is not None else _NO_METER
    yield from _eval(query, env, tick, charge)


def _eval(query: Query, env: Environment, tick, meter) -> Iterator[Node]:
    if isinstance(query, Empty):
        return
    if isinstance(query, TextLiteral):
        # reprolint: disable=RL005 constructed nodes live as long as the
        # result; the caller's meter scope releases in bulk
        meter.charge(_NODE_BYTES)
        yield Text(query.text)
        return
    if isinstance(query, Constr):
        element = Element(query.label)
        # reprolint: disable=RL005 constructed nodes live as long as the
        # result; the caller's meter scope releases in bulk
        meter.charge(_NODE_BYTES)
        for item in _eval(query.body, env, tick, meter):
            element.append(_copy(item, meter))
        yield element
        return
    if isinstance(query, Sequence):
        yield from _eval(query.left, env, tick, meter)
        yield from _eval(query.right, env, tick, meter)
        return
    if isinstance(query, Var):
        yield _lookup(env, query.name)
        return
    if isinstance(query, Step):
        yield from _step(query, env, tick)
        return
    if isinstance(query, For):
        for node in _step(query.source, env, tick):
            inner = dict(env)
            inner[query.var] = node
            yield from _eval(query.body, inner, tick, meter)
        return
    if isinstance(query, If):
        if _cond(query.cond, env, tick):
            yield from _eval(query.body, env, tick, meter)
        return
    raise XQEvalError(f"cannot evaluate query node {query!r}")


def _step(step: Step, env: Environment, tick) -> Iterator[Node]:
    """Nodes reached from the step's base variable, in document order."""
    base = _lookup(env, step.var)
    if isinstance(base, Text):
        return  # text nodes have no children or descendants
    if step.axis is Axis.CHILD:
        candidates = base.iter_children()
    else:
        candidates = base.iter_descendants()
    test = step.test
    if isinstance(test, LabelTest):
        wanted = test.name
        for node in candidates:
            tick()
            if isinstance(node, Element) and node.name == wanted:
                yield node
    elif isinstance(test, WildcardTest):
        for node in candidates:
            tick()
            if isinstance(node, Element):
                yield node
    elif isinstance(test, TextTest):
        for node in candidates:
            tick()
            if isinstance(node, Text):
                yield node
    else:  # pragma: no cover - defensive
        raise XQEvalError(f"unknown node test {test!r}")


def _cond(cond: Condition, env: Environment, tick) -> bool:
    if isinstance(cond, TrueCond):
        return True
    if isinstance(cond, VarEqVar):
        left = _text_value(env, cond.left)
        right = _text_value(env, cond.right)
        return left == right
    if isinstance(cond, VarEqConst):
        return _text_value(env, cond.var) == cond.literal
    if isinstance(cond, VarCmpConst):
        value = _text_value(env, cond.var)
        return value < cond.literal if cond.op == "<" \
            else value > cond.literal
    if isinstance(cond, Some):
        for node in _step(cond.source, env, tick):
            inner = dict(env)
            inner[cond.var] = node
            if _cond(cond.cond, inner, tick):
                return True
        return False
    if isinstance(cond, And):
        return _cond(cond.left, env, tick) and _cond(cond.right, env, tick)
    if isinstance(cond, Or):
        return _cond(cond.left, env, tick) or _cond(cond.right, env, tick)
    if isinstance(cond, Not):
        return not _cond(cond.cond, env, tick)
    raise XQEvalError(f"cannot evaluate condition {cond!r}")


def _lookup(env: Environment, name: str) -> Node:
    try:
        return env[name]
    except KeyError:
        raise XQEvalError(f"unbound variable ${name}") from None


def _text_value(env: Environment, name: str) -> str:
    """The text content of the node ``$name`` is bound to.

    Per the paper, comparisons are only implemented for text-node bindings;
    any other node kind is a runtime type error.
    """
    node = _lookup(env, name)
    if not isinstance(node, Text):
        raise XQTypeError(
            f"comparison requires ${name} to be bound to a text node, "
            f"got a {node.kind.value} node")
    return node.text


def _copy(node: Node, meter=_NO_METER) -> Node:
    """Deep copy a node for insertion under a constructed element."""
    # reprolint: disable=RL005 copies are owned by the constructed tree;
    # the caller's meter scope releases in bulk
    meter.charge(_NODE_BYTES)
    if isinstance(node, Text):
        return Text(node.text)
    if isinstance(node, Element):
        clone = Element(node.name, node.attributes)
        for child in node.children:
            clone.append(_copy(child, meter))
        return clone
    if isinstance(node, Document):
        # Copying the root copies the forest below it.
        clone_children = [_copy(child, meter) for child in node.children]
        if len(clone_children) == 1:
            return clone_children[0]
        wrapper = Element("#document")
        for child in clone_children:
            wrapper.append(child)
        return wrapper
    raise XQEvalError(f"cannot copy node {node!r}")


def serialize_result(nodes: list[Node], indent: int | None = None) -> str:
    """Serialize a result sequence to XML text.

    Input-document nodes are serialized with their whole subtree, matching
    the paper's semantics where "the subtree to which a variable is bound is
    written to the output".
    """
    from repro.xmlkit.serializer import serialize

    return "".join(serialize(node, indent=indent) for node in nodes)
