"""reprolint: project-invariant static analysis for this codebase.

The serving stack's correctness rests on conventions that ordinary
linters cannot see: a declared latch hierarchy, ``# guarded by:``
field annotations, an async front door that must never block its event
loop, a wire-error taxonomy that must stay registered, and
charge/release style resource pairing.  This package checks those
conventions with nothing but the standard library's ``ast`` module —
no type inference, no new dependencies — and is wired into CI as
``python -m repro.analysis --baseline analysis-baseline.json``.

Layout:

* :mod:`repro.analysis.model` — findings, fingerprints, suppressions.
* :mod:`repro.analysis.loader` — source loading, comment extraction,
  ``# reprolint: disable=RLxxx <reason>`` suppression parsing.
* :mod:`repro.analysis.scopes` — parent links, qualified names, and
  the lexical ``with``-statement lock-context tracker.
* :mod:`repro.analysis.config` — the declared lock hierarchy (checked
  against the code: a declared lock that no longer matches any
  acquisition is itself an error).
* :mod:`repro.analysis.rules` — the rule implementations (RL001-RL005).
* :mod:`repro.analysis.baseline` — the committed-findings ratchet.

See ``docs/static-analysis.md`` for the rule catalog and conventions.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis.config import validate_hierarchy
from repro.analysis.loader import Module, load_path, load_source
from repro.analysis.model import Finding
from repro.analysis.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "Module",
    "analyze_modules",
    "analyze_paths",
    "load_path",
    "load_source",
    "repo_root",
]


def repo_root() -> Path:
    """The repository root (three levels above this package)."""
    return Path(__file__).resolve().parents[3]


def iter_source_files(root: Path, targets: Sequence[Path]) -> List[Path]:
    """Every ``*.py`` file under the targets, sorted, de-duplicated."""
    files: set = set()
    for target in targets:
        if target.is_dir():
            files.update(target.rglob("*.py"))
        elif target.suffix == ".py":
            files.add(target)
    return sorted(files)


def analyze_modules(modules: Iterable[Module],
                    rules: Optional[Sequence[str]] = None
                    ) -> List[Finding]:
    """Run the (selected) rules over already-loaded modules.

    Returns the surviving findings: suppressed ones are dropped, and
    loader-level problems (unparseable files, malformed suppressions —
    a suppression without a reason is a finding, not a waiver) are
    always included.  Findings come back sorted by location.
    """
    modules = list(modules)
    findings: List[Finding] = []
    for module in modules:
        findings.extend(module.problems)
    if rules is None or "RL000" in rules:
        findings.extend(validate_hierarchy(modules))
    for rule_id, _title, check in ALL_RULES:
        if rules is not None and rule_id not in rules:
            continue
        for finding in check(modules):
            if not _suppressed(modules, finding):
                findings.append(finding)
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def _suppressed(modules: Iterable[Module], finding: Finding) -> bool:
    for module in modules:
        if module.path == finding.path:
            return module.is_suppressed(finding.rule, finding.line)
    return False


def analyze_paths(targets: Optional[Sequence[str]] = None,
                  root: Optional[Path] = None,
                  rules: Optional[Sequence[str]] = None
                  ) -> List[Finding]:
    """Load and analyze files or directories (default: ``src/repro``)."""
    root = root or repo_root()
    if targets:
        paths = [Path(target) if Path(target).is_absolute()
                 else root / target for target in targets]
    else:
        paths = [root / "src" / "repro"]
    modules = [load_path(path, root)
               for path in iter_source_files(root, paths)]
    return analyze_modules(modules, rules=rules)
