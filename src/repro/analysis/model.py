"""Finding and suppression model for the reprolint analyzer.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` deliberately excludes the line number —
baselines must survive unrelated edits above a finding — and hashes
the rule, file, enclosing definition and message instead.  Messages
therefore never embed line numbers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is repo-relative with forward slashes; ``qualname`` is the
    enclosing definition (``Class.method``, a bare function name, or
    ``<module>``); ``hint`` is the suggested fix, shown to the user but
    excluded from the fingerprint.
    """

    rule: str
    path: str
    line: int
    col: int
    qualname: str
    message: str
    hint: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """A line-number-independent identity for baseline matching."""
        key = "|".join((self.rule, self.path, self.qualname,
                        self.message))
        return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]

    def format(self) -> str:
        """The one-line human rendering, editor-clickable."""
        text = (f"{self.path}:{self.line}:{self.col}: {self.rule} "
                f"[{self.qualname}] {self.message}")
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# reprolint: disable=RLxxx <reason>`` comment.

    ``rules`` is the tuple of rule ids the comment waives; ``reason``
    is mandatory at parse time (a reasonless suppression is reported
    as an RL000 finding by the loader, never honoured).
    """

    line: int
    rules: tuple
    reason: str
