"""Scope and lock-context resolution over plain ``ast`` trees.

Everything reprolint knows about structure comes from here: parent
links (``ast`` has none), qualified names for findings, iteration over
function scopes, and the lexical lock tracker — "which ``with`` items
enclose this node, inside its own function?".  The tracker is purely
lexical: it does not follow calls, which is exactly the discipline the
checked conventions demand (helpers that *assume* a caller's lock are
named ``*_locked`` and exempted by the guarded-by rule).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_PARENT = "_reprolint_parent"


def attach_parents(tree: ast.AST) -> None:
    """Set a parent backlink on every node (idempotent)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT, node)


def parent_of(node: ast.AST):
    """The node's parent, or None at the tree root."""
    return getattr(node, _PARENT, None)


def qualname_of(node: ast.AST) -> str:
    """``Class.method``-style name of the definition enclosing a node."""
    names: List[str] = []
    current = node
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                ast.ClassDef)):
            names.append(current.name)
        current = parent_of(current)
    return ".".join(reversed(names)) or "<module>"


def enclosing_class(node: ast.AST):
    """The nearest enclosing ClassDef, or None."""
    current = parent_of(node)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        current = parent_of(current)
    return None


def iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every (async) function definition in the tree, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested scopes.

    Nested ``def``/``lambda`` bodies run at some other time, possibly
    on some other thread — their lock context is their own problem, so
    lexical rules must not attribute the enclosing function's locks
    (or code) to them.
    """
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_NODES):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def expr_text(node: ast.AST) -> str:
    """The source rendering of an expression (``ast.unparse``)."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def with_item_exprs(item: ast.withitem) -> List[ast.expr]:
    """The lock expression(s) of one ``with`` item.

    A conditional acquisition — ``with (latch.exclusive() if x else
    latch.shared()):`` — contributes both arms, so either form matches
    a declared lock site.
    """
    expr = item.context_expr
    if isinstance(expr, ast.IfExp):
        return [expr.body, expr.orelse]
    return [expr]


def held_with_items(node: ast.AST) -> List[ast.withitem]:
    """The ``with`` items lexically held at ``node``, outermost first.

    Climbs parents until the function (or class/module) boundary.  A
    node inside a ``with`` statement's *items* is not yet under that
    statement's locks; only nodes in the body are.
    """
    held: List[ast.withitem] = []
    current = node
    parent = parent_of(current)
    while parent is not None and not isinstance(
            parent, _SCOPE_NODES + (ast.ClassDef, ast.Module)):
        if isinstance(parent, (ast.With, ast.AsyncWith)):
            if current in parent.body:
                held.extend(reversed(parent.items))
        current = parent
        parent = parent_of(current)
    held.reverse()
    return held


def held_lock_texts(node: ast.AST) -> List[str]:
    """Unparsed lock expressions lexically held at ``node``."""
    texts: List[str] = []
    for item in held_with_items(node):
        for expr in with_item_exprs(item):
            texts.append(expr_text(expr))
    return texts


def enclosing_statement(node: ast.AST) -> ast.AST:
    """The statement a node belongs to (itself if already a stmt)."""
    current = node
    while current is not None and not isinstance(current, ast.stmt):
        current = parent_of(current)
    return current if current is not None else node


def node_location(node: ast.AST) -> Tuple[int, int]:
    """(line, col) of a node, defaulting to (1, 0)."""
    return getattr(node, "lineno", 1), getattr(node, "col_offset", 0)
