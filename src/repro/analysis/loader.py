"""Source loading for reprolint: parse trees, comments, suppressions.

Rules need more than the AST: the ``# guarded by:`` field annotations
and ``# reprolint: disable=`` suppressions live in comments, which
``ast`` drops.  The loader tokenizes each file once and keeps a
``line -> comment text`` map alongside the tree, so every rule reads
comments through the same (tokenizer-accurate, string-literal-safe)
channel.

Suppression grammar, enforced here::

    # reprolint: disable=RL001 <mandatory reason>
    # reprolint: disable=RL001,RL005 <mandatory reason>

A suppression with no reason, an unknown directive, or a malformed
rule list is itself reported as an ``RL000`` finding and is *not*
honoured — the waiver channel must never silently rot.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, List

from repro.analysis.model import Finding, Suppression
from repro.analysis.scopes import attach_parents

#: Accepts both plain ``#`` and the codebase's ``#:`` doc comments.
_PRAGMA = re.compile(r"#:?\s*reprolint:\s*(?P<directive>.*)$")
_DISABLE = re.compile(
    r"disable=(?P<rules>RL\d{3}(?:,RL\d{3})*)(?:\s+(?P<reason>\S.*))?$")


class Module:
    """One loaded source file: tree, raw lines, comments, suppressions."""

    def __init__(self, path: str, source: str):
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.comments: Dict[int, str] = {}
        self.suppressions: Dict[int, Suppression] = {}
        self.problems: List[Finding] = []
        try:
            self.tree = ast.parse(source)
        except SyntaxError as error:
            self.tree = ast.Module(body=[], type_ignores=[])
            self.problems.append(Finding(
                rule="RL000", path=path, line=error.lineno or 1,
                col=(error.offset or 1) - 1, qualname="<module>",
                message=f"file does not parse: {error.msg}"))
        attach_parents(self.tree)
        self._scan_comments()

    def _scan_comments(self) -> None:
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline)
            for token in tokens:
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return
        for line, comment in sorted(self.comments.items()):
            match = _PRAGMA.search(comment)
            if match is None:
                continue
            directive = match.group("directive").strip()
            parsed = _DISABLE.match(directive)
            if parsed is None:
                self.problems.append(Finding(
                    rule="RL000", path=self.path, line=line, col=0,
                    qualname="<module>",
                    message=f"malformed reprolint pragma "
                            f"{directive!r}; expected "
                            f"'disable=RLxxx <reason>'"))
                continue
            if not parsed.group("reason"):
                self.problems.append(Finding(
                    rule="RL000", path=self.path, line=line, col=0,
                    qualname="<module>",
                    message=f"suppression of "
                            f"{parsed.group('rules')} carries no "
                            f"reason; reasons are mandatory"))
                continue
            self.suppressions[line] = Suppression(
                line=line,
                rules=tuple(parsed.group("rules").split(",")),
                reason=parsed.group("reason").strip())

    def comment_on(self, line: int) -> str:
        """The comment token on a physical line ('' when absent)."""
        return self.comments.get(line, "")

    def is_comment_only(self, line: int) -> bool:
        """Is the physical line nothing but a comment?"""
        if not 1 <= line <= len(self.lines):
            return False
        stripped = self.lines[line - 1].strip()
        return stripped.startswith("#")

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Does a valid suppression cover ``rule`` at ``line``?

        A suppression applies on the finding's own line or anywhere in
        the contiguous block of comment-only lines directly above it
        (so a long reason may wrap over several comment lines).
        """
        suppression = self.suppressions.get(line)
        if suppression is not None and rule in suppression.rules:
            return True
        candidate = line - 1
        while candidate >= 1 and self.is_comment_only(candidate):
            suppression = self.suppressions.get(candidate)
            if suppression is not None and rule in suppression.rules:
                return True
            candidate -= 1
        return False


def load_source(path: str, source: str) -> Module:
    """A module from in-memory source (the test fixtures' entry point)."""
    return Module(path, source)


def load_path(file_path: Path, root: Path) -> Module:
    """A module from disk, keyed by its repo-relative posix path."""
    try:
        rel = file_path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = file_path.as_posix()
    return Module(rel, file_path.read_text(encoding="utf-8"))
