"""The declared lock hierarchy, checked against the code it describes.

This is the configuration RL001 (lock order) enforces: every lock that
participates in cross-lock nesting is declared here with a *rank*, and
any ``with`` statement that acquires a lower-ranked (outer) lock while
lexically inside a higher-ranked one is a deadlock-shaped ordering
violation.  Equal ranks are ignored (re-entrant re-acquisition of an
RLock, or two instances at the same level that are never nested by
design).

The ranks encode the order the code *actually* takes, top of the stack
first (see ``docs/static-analysis.md`` for the narrative version):

1.  shard mediator lock — never held across calls into lower layers
2.  QueryServer lifecycle lock, then its stats lock
3.  document latch (shared for reads, exclusive for index builds)
4.  catalog lock (``XmlDbms._lock``), then the engine-cache lock
5.  storage transaction lock, then the catalog-tree ``Database`` lock
6.  B+-tree latch
7.  per-page latch (``frame.latch`` / ``BufferPool.latched``)
8.  buffer-pool mutex
9.  pager I/O mutex

The declaration is *checked*: :func:`validate_hierarchy` fails the run
when a declared site no longer matches any acquisition in the scanned
tree, so a renamed lock cannot silently drop out of enforcement.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.analysis.model import Finding
from repro.analysis.scopes import expr_text


@dataclass(frozen=True)
class LockSite:
    """One declared lock: a rank plus a matcher over ``with`` items.

    ``home`` is the path suffix of the module that *defines* the lock;
    :func:`validate_hierarchy` only judges a declaration when its home
    module is part of the run, so analyzing a subtree does not fail
    every declaration living elsewhere.
    """

    name: str
    rank: int
    matches: Callable[[ast.expr, str, str], bool]
    home: str


def _is_self_attr(expr: ast.expr, attr: str) -> bool:
    return (isinstance(expr, ast.Attribute) and expr.attr == attr
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self")


def _attr_lock(module: str, cls: str, attr: str):
    """Matcher for ``with self.<attr>:`` inside one class of one file."""
    def matches(expr: ast.expr, path: str, classname: str) -> bool:
        return (path.endswith(module) and classname == cls
                and _is_self_attr(expr, attr))
    return matches


def _latch_call(expr: ast.expr) -> Optional[ast.expr]:
    """The receiver of ``<recv>.shared()`` / ``<recv>.exclusive()``."""
    if (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("shared", "exclusive")):
        return expr.func.value
    return None


def _document_latch(expr: ast.expr, path: str, classname: str) -> bool:
    receiver = _latch_call(expr)
    return (receiver is not None and isinstance(receiver, ast.Call)
            and isinstance(receiver.func, (ast.Attribute, ast.Name))
            and (receiver.func.attr if isinstance(receiver.func,
                                                  ast.Attribute)
                 else receiver.func.id) == "document_latch")


def _tree_latch(expr: ast.expr, path: str, classname: str) -> bool:
    receiver = _latch_call(expr)
    return (path.endswith("storage/btree.py") and receiver is not None
            and _is_self_attr(receiver, "_latch"))


def _page_latch(expr: ast.expr, path: str, classname: str) -> bool:
    receiver = _latch_call(expr)
    if receiver is not None:
        text = expr_text(receiver)
        if text == "latch" or text.endswith(".latch"):
            return True
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "latched")


LOCK_HIERARCHY = (
    LockSite("shard mediator lock", 10,
             _attr_lock("shard/mediator.py", "ShardedServer", "_lock"),
             home="shard/mediator.py"),
    LockSite("query-server lifecycle lock", 20,
             _attr_lock("core/server.py", "QueryServer",
                        "_lifecycle_lock"),
             home="core/server.py"),
    LockSite("query-server stats lock", 30,
             _attr_lock("core/server.py", "QueryServer", "_stats_lock"),
             home="core/server.py"),
    LockSite("document latch", 40, _document_latch,
             home="core/dbms.py"),
    LockSite("catalog lock", 50,
             _attr_lock("core/dbms.py", "XmlDbms", "_lock"),
             home="core/dbms.py"),
    LockSite("engine-cache lock", 55,
             _attr_lock("core/dbms.py", "XmlDbms", "_engine_lock"),
             home="core/dbms.py"),
    LockSite("storage transaction lock", 60,
             _attr_lock("storage/db.py", "Database", "_txn_lock"),
             home="storage/db.py"),
    LockSite("storage catalog lock", 62,
             _attr_lock("storage/db.py", "Database", "_lock"),
             home="storage/db.py"),
    LockSite("b+tree latch", 66, _tree_latch,
             home="storage/btree.py"),
    LockSite("page latch", 70, _page_latch,
             home="storage/buffer.py"),
    LockSite("buffer-pool mutex", 80,
             _attr_lock("storage/buffer.py", "BufferPool", "_lock"),
             home="storage/buffer.py"),
    LockSite("pager I/O mutex", 90,
             _attr_lock("storage/pager.py", "Pager", "_lock"),
             home="storage/pager.py"),
)


def match_lock(expr: ast.expr, path: str,
               classname: str) -> Optional[LockSite]:
    """The declared site a ``with`` expression acquires, if any."""
    for site in LOCK_HIERARCHY:
        if site.matches(expr, path, classname):
            return site
    return None


def validate_hierarchy(modules: Iterable) -> List[Finding]:
    """Check every declared lock still matches a real acquisition.

    Sites whose home module is not part of this run are skipped
    (analyzing a subtree must not fail every declaration living
    elsewhere); once the home module is loaded, zero matches means the
    code and the declaration have drifted apart.
    """
    from repro.analysis.scopes import enclosing_class, with_item_exprs

    modules = list(modules)
    seen = {site.name: 0 for site in LOCK_HIERARCHY}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            cls = enclosing_class(node)
            classname = cls.name if cls is not None else ""
            for item in node.items:
                for expr in with_item_exprs(item):
                    site = match_lock(expr, module.path, classname)
                    if site is not None:
                        seen[site.name] += 1
    findings: List[Finding] = []
    paths = {module.path for module in modules}
    for site in LOCK_HIERARCHY:
        if not any(path.endswith(site.home) for path in paths):
            continue
        if seen[site.name] == 0:
            findings.append(Finding(
                rule="RL000", path="src/repro/analysis/config.py",
                line=1, col=0, qualname="LOCK_HIERARCHY",
                message=f"declared lock site {site.name!r} matches no "
                        f"acquisition in the scanned tree; the config "
                        f"has drifted from the code",
                hint="update LOCK_HIERARCHY in "
                     "src/repro/analysis/config.py"))
    return findings
