"""Command-line entry point: ``python -m repro.analysis``.

Usage::

    python -m repro.analysis                         # src/repro, strict
    python -m repro.analysis src/repro/storage        # a subtree
    python -m repro.analysis --baseline analysis-baseline.json
    python -m repro.analysis --write-baseline         # regenerate
    python -m repro.analysis --list-rules

Exit status: 0 when clean (every finding baselined, no stale baseline
entries), 1 on violations, 2 on usage errors.  This is the command the
CI ``analysis`` job runs from the repository root.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import ALL_RULES, analyze_paths, repo_root
from repro.analysis import baseline as baseline_io


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="reprolint: project-invariant static analysis")
    parser.add_argument(
        "targets", nargs="*",
        help="files or directories to analyze (default: src/repro)")
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline JSON; new findings and stale entries both fail")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit")
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    return parser


def main(argv=None) -> int:
    """Run the analyzer; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, title, _check in ALL_RULES:
            print(f"{rule_id}  {title}")
        return 0
    rules = args.rules.split(",") if args.rules else None
    if rules is not None:
        known = {"RL000"} | {rule_id for rule_id, _title, _c in ALL_RULES}
        unknown = sorted(set(rules) - known)
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(unknown)} "
                  f"(see --list-rules)", file=sys.stderr)
            return 2
    root = repo_root()
    targets = []
    for target in args.targets:
        # Relative targets resolve against the caller's directory, the
        # way every other CLI does it; the repo root is a fallback so
        # the documented `src/repro/...` forms work from anywhere.
        path = Path(target)
        if not path.is_absolute() and not path.exists():
            in_root = root / path
            path = in_root if in_root.exists() else path
        if not path.exists():
            print(f"error: no such file or directory: {target}",
                  file=sys.stderr)
            return 2
        targets.append(str(path.resolve()))
    findings = analyze_paths(targets or None, root=root, rules=rules)
    baseline_path = args.baseline
    if baseline_path is not None and not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    if args.write_baseline:
        target = baseline_path or root / "analysis-baseline.json"
        baseline_io.save(target, findings)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0
    if baseline_path is not None:
        try:
            entries = baseline_io.load(baseline_path)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        new, stale = baseline_io.compare(findings, entries)
        for finding in new:
            print(finding.format())
        for entry in stale:
            print(f"{entry['path']}: baseline entry "
                  f"{entry['fingerprint']} ({entry['rule']} "
                  f"{entry['qualname']}) no longer reproduces; "
                  f"remove it from {baseline_path.name}")
        if new or stale:
            print(f"{len(new)} new finding(s), {len(stale)} stale "
                  f"baseline entr(ies)", file=sys.stderr)
            return 1
        print(f"OK: {len(findings)} finding(s), all baselined; "
              f"baseline is tight")
        return 0
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("OK: no findings")
    return 0


if __name__ == "__main__":
    sys.exit(main())
