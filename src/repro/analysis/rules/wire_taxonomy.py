"""RL004 — the wire error/message taxonomy must not drift.

Two invariants tie :mod:`repro.errors` to :mod:`repro.net.protocol`:

1. Every library exception class *raised* in the serving path
   (``net/``, ``shard/``, ``core/server.py``) must be registered in
   ``WIRE_ERRORS`` — an unregistered class silently degrades to its
   nearest registered ancestor on the wire, and the client loses the
   type it would have caught.
2. Every ``MsgKind`` member must appear in the server's dispatch
   module (``net/server.py``) — an enum member with no server branch
   is either dead protocol surface or a not-yet-implemented frame,
   and both deserve a finding until resolved.

Both sides are recovered from the AST of the real files, so the rule
keeps working as the taxonomy grows: a class added to ``errors.py``
and raised in the serving path is flagged until it is registered.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from repro.analysis.model import Finding
from repro.analysis.scopes import qualname_of

RULE = "RL004"
TITLE = "wire-taxonomy"

def _class_bases(tree: ast.AST) -> Dict[str, Set[str]]:
    bases: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases[node.name] = {
                base.id for base in node.bases
                if isinstance(base, ast.Name)}
    return bases


def _library_errors(errors_tree: ast.AST) -> Set[str]:
    """Every class in ``errors.py`` descending from ``ReproError``."""
    bases = _class_bases(errors_tree)
    errors = {"ReproError"}
    changed = True
    while changed:
        changed = False
        for name, parents in bases.items():
            if name not in errors and parents & errors:
                errors.add(name)
                changed = True
    return errors


def _registered_errors(protocol_tree: ast.AST) -> Set[str]:
    """The class names enumerated in the ``WIRE_ERRORS`` registry."""
    for node in ast.walk(protocol_tree):
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(isinstance(target, ast.Name)
                   and target.id == "WIRE_ERRORS"
                   for target in targets):
            continue
        return {child.id for child in ast.walk(node.value)
                if isinstance(child, ast.Name)
                and child.id not in ("cls",)}
    return set()


def _msg_kinds(protocol_tree: ast.AST) -> Dict[str, int]:
    """``member name -> line`` of the ``MsgKind`` enum."""
    members: Dict[str, int] = {}
    for node in ast.walk(protocol_tree):
        if isinstance(node, ast.ClassDef) and node.name == "MsgKind":
            for stmt in node.body:
                if (isinstance(stmt, ast.Assign)
                        and len(stmt.targets) == 1
                        and isinstance(stmt.targets[0], ast.Name)):
                    members[stmt.targets[0].id] = stmt.lineno
    return members


def _raised_name(node: ast.Raise) -> str:
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if isinstance(exc, ast.Name):
        return exc.id
    return ""


def _find(modules, suffix: str):
    for module in modules:
        if module.path.endswith(suffix):
            return module
    return None


def check(modules: Iterable) -> List[Finding]:
    """Flag unregistered raised errors and undispatched MsgKinds."""
    modules = list(modules)
    errors_module = _find(modules, "repro/errors.py")
    protocol_module = _find(modules, "repro/net/protocol.py")
    if errors_module is None or protocol_module is None:
        return []  # partial run without the taxonomy's home files
    library = _library_errors(errors_module.tree)
    registered = _registered_errors(protocol_module.tree)
    findings: List[Finding] = []
    for module in modules:
        in_scope = ("repro/net/" in module.path
                    or "repro/shard/" in module.path
                    or module.path.endswith("core/server.py"))
        if not in_scope:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise):
                continue
            name = _raised_name(node)
            if name in library and name not in registered:
                findings.append(Finding(
                    rule=RULE, path=module.path, line=node.lineno,
                    col=node.col_offset, qualname=qualname_of(node),
                    message=f"{name} is raised on the serving path "
                            f"but is not registered in WIRE_ERRORS; "
                            f"it would cross the wire as its base "
                            f"class",
                    hint="add the class to WIRE_ERRORS in "
                         "src/repro/net/protocol.py"))
    server_module = _find(modules, "repro/net/server.py")
    if server_module is not None:
        referenced = {
            node.attr for node in ast.walk(server_module.tree)
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "MsgKind"}
        for member, line in sorted(_msg_kinds(
                protocol_module.tree).items()):
            if member not in referenced:
                findings.append(Finding(
                    rule=RULE, path=protocol_module.path, line=line,
                    col=4, qualname=f"MsgKind.{member}",
                    message=f"MsgKind.{member} has no dispatch branch "
                            f"in src/repro/net/server.py",
                    hint="handle the frame kind in _Connection "
                         "or retire the enum member"))
    return findings
