"""RL003 — no blocking calls inside the async front door.

Within ``async def`` functions under ``src/repro/net/``, anything that
can park the thread parks the *event loop* — every connection stalls,
not just the offending one.  The asyncio front end's contract is that
blocking work hops to the worker pool via ``run_in_executor`` and its
results come back through ``asyncio.wrap_future``; this rule flags the
lexical appearance of known blocking calls that bypass that route:

* ``time.sleep``, ``os.fsync``, ``select.select``, ``subprocess.run``
  and friends (dotted names);
* ``<future>.result(...)`` — blocking future wait (await
  ``asyncio.wrap_future(fut)`` instead);
* ``<lock>.acquire(...)`` — a threading lock wait;
* ``<queue-ish>.get(...)`` — ``queue.Queue.get`` blocking reads,
  recognized by the receiver's name to keep ``dict.get`` out of it;
* bare socket operations (``recv``/``send``/``accept``/``connect``
  on a socket-named receiver).

Callables merely *referenced* (handed to ``run_in_executor``, wrapped
in ``functools.partial``, or defined in nested ``def``/``lambda``
bodies) are not calls on the event loop and are not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.model import Finding
from repro.analysis.scopes import expr_text, own_nodes, qualname_of

RULE = "RL003"
TITLE = "async-blocking"

#: Fully dotted calls that always block.
BLOCKING_DOTTED = {
    "time.sleep": "use 'await asyncio.sleep(...)'",
    "os.fsync": "run it via 'await loop.run_in_executor(...)'",
    "os.sync": "run it via 'await loop.run_in_executor(...)'",
    "select.select": "use asyncio's own readiness notifications",
    "subprocess.run": "use 'await asyncio.create_subprocess_exec(...)'",
    "subprocess.check_output":
        "use 'await asyncio.create_subprocess_exec(...)'",
    "socket.create_connection": "use 'await asyncio.open_connection'",
}

_SOCKET_METHODS = ("recv", "send", "sendall", "accept", "connect")


def _dotted(func: ast.expr) -> str:
    if (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)):
        return f"{func.value.id}.{func.attr}"
    return ""


def _queueish(text: str) -> bool:
    lowered = text.lower()
    return ("queue" in lowered or lowered.endswith("_q")
            or lowered == "q")


def _blocking_reason(call: ast.Call) -> tuple:
    """``(message, hint)`` when the call is blocking, else ``("", "")``."""
    dotted = _dotted(call.func)
    if dotted in BLOCKING_DOTTED:
        return (f"blocking call {dotted}() on the event loop",
                BLOCKING_DOTTED[dotted])
    if not isinstance(call.func, ast.Attribute):
        return "", ""
    attr = call.func.attr
    receiver = expr_text(call.func.value)
    if attr == "result":
        return (f"blocking {receiver}.result() on the event loop",
                "await 'asyncio.wrap_future(...)' instead")
    if attr == "acquire":
        return (f"blocking {receiver}.acquire() on the event loop",
                "use 'asyncio.Lock' or hop to the executor")
    if attr == "get" and _queueish(receiver):
        return (f"blocking {receiver}.get() on the event loop",
                "bridge the queue through 'run_in_executor'")
    if attr in _SOCKET_METHODS and "sock" in receiver.lower():
        return (f"raw socket {receiver}.{attr}() on the event loop",
                "use the asyncio stream/transport APIs")
    return "", ""


def check(modules: Iterable) -> List[Finding]:
    """Flag blocking calls inside ``async def`` under ``repro/net/``."""
    findings: List[Finding] = []
    for module in modules:
        if "repro/net/" not in module.path:
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for child in own_nodes(node):
                if not isinstance(child, ast.Call):
                    continue
                message, hint = _blocking_reason(child)
                if message:
                    findings.append(Finding(
                        rule=RULE, path=module.path,
                        line=child.lineno, col=child.col_offset,
                        qualname=qualname_of(child),
                        message=message, hint=hint))
    return findings
