"""RL001 — lock acquisitions must follow the declared hierarchy.

For every ``with`` statement that acquires a lock declared in
:data:`repro.analysis.config.LOCK_HIERARCHY`, the tracker computes the
set of declared locks already held lexically (within the same
function) and flags an acquisition whose rank is *lower* than a held
rank — the classic A→B / B→A deadlock shape.  Equal ranks pass: the
buffer pool's RLock legitimately re-enters itself, and two same-level
instances are never nested across threads by design.

The check is lexical: it does not follow calls.  That is the project
convention being enforced — code that needs a lower-level lock calls
down *without* holding its own (see the buffer pool's docstring), so
any lexical inversion is a real bug, and runtime inversions across
calls are kept impossible by layering rather than by this rule.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.analysis.config import match_lock
from repro.analysis.model import Finding
from repro.analysis.scopes import (
    enclosing_class,
    held_with_items,
    qualname_of,
    with_item_exprs,
)

RULE = "RL001"
TITLE = "lock-order"


def check(modules: Iterable) -> List[Finding]:
    """Flag ``with`` items acquiring against the declared lock order."""
    findings: List[Finding] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            cls = enclosing_class(node)
            classname = cls.name if cls is not None else ""
            held = []
            for item in held_with_items(node):
                for expr in with_item_exprs(item):
                    site = match_lock(expr, module.path, classname)
                    if site is not None:
                        held.append(site)
            # Items of one statement acquire left to right: earlier
            # items are already held when a later one is evaluated.
            for item in node.items:
                for expr in with_item_exprs(item):
                    site = match_lock(expr, module.path, classname)
                    if site is None:
                        continue
                    inversions = [outer for outer in held
                                  if outer.rank > site.rank]
                    if inversions:
                        outer = max(inversions,
                                    key=lambda held_site: held_site.rank)
                        findings.append(Finding(
                            rule=RULE, path=module.path,
                            line=expr.lineno, col=expr.col_offset,
                            qualname=qualname_of(node),
                            message=f"acquires {site.name!r} (rank "
                                    f"{site.rank}) while holding "
                                    f"{outer.name!r} (rank "
                                    f"{outer.rank}); the declared "
                                    f"order is outer-first",
                            hint="release the inner lock first, or "
                                 "restructure so the lower-ranked "
                                 "lock is taken outside"))
                    held.append(site)
    return findings
