"""RL002 — annotated fields are only touched under their lock.

The convention: a field assigned in ``__init__`` may carry a
``# guarded by: self._lock`` comment (on the assignment's line or on a
comment-only line directly above; the codebase's ``#:`` doc-comment
form works too).  Every later read or write of ``self.<field>`` inside
the class must then sit lexically under ``with <lock>:`` for exactly
that lock expression.

Exemptions, by convention rather than inference:

* ``__init__`` itself — construction happens-before sharing;
* methods whose name ends in ``_locked`` — the project's marker for
  "caller already holds the lock" (the callers are checked instead);
* access through ``getattr``/``setattr`` strings is invisible to a
  lexical rule; the two stats helpers that use it take the lock
  internally and are covered by tests, not by RL002.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List

from repro.analysis.model import Finding
from repro.analysis.scopes import held_lock_texts, qualname_of

RULE = "RL002"
TITLE = "guarded-by"

_ANNOTATION = re.compile(r"#:?\s*guarded by:\s*(?P<lock>[\w.\[\]'\"]+)")


def _field_name(target: ast.expr) -> str:
    """The ``X`` of a ``self.X`` assignment target ('' otherwise)."""
    if (isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"):
        return target.attr
    return ""


def _annotation_for(module, stmt: ast.stmt) -> str:
    """The guard expression annotated on an ``__init__`` assignment."""
    last = getattr(stmt, "end_lineno", stmt.lineno)
    for line in range(stmt.lineno, last + 1):
        match = _ANNOTATION.search(module.comment_on(line))
        if match:
            return match.group("lock")
    line = stmt.lineno - 1
    while line >= 1 and module.is_comment_only(line):
        match = _ANNOTATION.search(module.comment_on(line))
        if match:
            return match.group("lock")
        line -= 1
    return ""


def _guarded_fields(module, cls: ast.ClassDef) -> Dict[str, str]:
    """``field -> lock expression`` from the class's ``__init__``."""
    guards: Dict[str, str] = {}
    for node in cls.body:
        if (isinstance(node, ast.FunctionDef)
                and node.name == "__init__"):
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Assign):
                    targets = stmt.targets
                elif isinstance(stmt, ast.AnnAssign):
                    targets = [stmt.target]
                else:
                    continue
                names = [name for name in map(_field_name, targets)
                         if name]
                if not names:
                    continue
                lock = _annotation_for(module, stmt)
                if lock:
                    for name in names:
                        guards[name] = lock
    return guards


def _check_class(module, cls: ast.ClassDef,
                 findings: List[Finding]) -> None:
    guards = _guarded_fields(module, cls)
    if not guards:
        return
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
            continue
        if method.name == "__init__" or method.name.endswith("_locked"):
            continue
        # Nested defs are deliberately *included* here: a closure
        # touching guarded state runs later, when the method's lock is
        # long released, so its accesses must hold the lock themselves
        # (held_lock_texts stops at the closure boundary).
        for node in ast.walk(method):
            if not (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and node.attr in guards):
                continue
            lock = guards[node.attr]
            if lock in held_lock_texts(node):
                continue
            findings.append(Finding(
                rule=RULE, path=module.path, line=node.lineno,
                col=node.col_offset, qualname=qualname_of(node),
                message=f"self.{node.attr} is annotated 'guarded by: "
                        f"{lock}' but is accessed without holding it",
                hint=f"wrap the access in 'with {lock}:', rename the "
                     f"method '*_locked' if callers hold it, or "
                     f"suppress with a reason"))
    return


def check(modules: Iterable) -> List[Finding]:
    """Flag annotated-field accesses outside their declared lock."""
    findings: List[Finding] = []
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                _check_class(module, node, findings)
    return findings
