"""RL005 — opened resources are released on every path.

The codebase has a handful of open/close protocols whose leak modes
are silent and expensive: a memory-meter ``charge`` with no
``release`` inflates the budget until queries start spilling; a
``pin_snapshot`` without ``release_snapshot`` retains version chains
forever; an unclosed latch or stream holds a shard connection or a
worker hostage.  For each configured pair, a call to the opener inside
a function must satisfy one of:

* it is the context expression of a ``with`` statement (the
  context-manager form carries its own release);
* its result escapes the function — returned, yielded, or stored into
  an attribute/subscript — transferring the release obligation to the
  new owner (who is checked wherever *it* closes);
* the function contains a matching closer call inside some ``finally``
  block (the classic open-then-try/finally shape).

Anything else is a leak on the exceptional path at minimum.  The rule
is lexical and per-function; protocols that intentionally retain (the
DOM evaluator's permanent node charges) carry reasoned suppressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, List, Set

from repro.analysis.model import Finding
from repro.analysis.scopes import (
    iter_functions,
    own_nodes,
    parent_of,
    qualname_of,
)

RULE = "RL005"
TITLE = "resource-pairing"


@dataclass(frozen=True)
class Pair:
    """One open/close protocol: opener method name, closer names."""

    opener: str
    closers: tuple
    resource: str


PAIRS = (
    Pair("charge", ("release",), "memory-meter charge"),
    Pair("pin_snapshot", ("release_snapshot",), "pinned snapshot"),
    Pair("acquire_shared", ("release_shared",), "shared latch"),
    Pair("acquire_exclusive", ("release_exclusive",),
         "exclusive latch"),
    Pair("submit_stream", ("close",), "query stream"),
)


def _method_call(node: ast.AST, name: str) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == name)


def _is_with_context(call: ast.Call) -> bool:
    """Is the call (part of) a ``with`` item's context expression?"""
    current: ast.AST = call
    parent = parent_of(current)
    while parent is not None and not isinstance(parent, ast.stmt):
        if (isinstance(parent, ast.withitem)
                and parent.context_expr is current):
            return True
        current = parent
        parent = parent_of(current)
    return (isinstance(parent, (ast.With, ast.AsyncWith))
            and any(item.context_expr is current
                    for item in parent.items))


def _result_names(call: ast.Call) -> Set[str]:
    """Local names the call's result lands in (via a plain Assign)."""
    parent = parent_of(call)
    if not (isinstance(parent, ast.Assign) and parent.value is call):
        return set()
    names: Set[str] = set()
    for target in parent.targets:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Tuple):
            names.update(element.id for element in target.elts
                         if isinstance(element, ast.Name))
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            names.add("*stored*")  # stored straight into an object
    return names


def _escapes(func: ast.AST, call: ast.Call) -> bool:
    """Does the opener's result leave the function's ownership?"""
    parent = parent_of(call)
    # Returned or yielded directly, or awaited into a return.
    current: ast.AST = call
    while parent is not None and not isinstance(parent, ast.stmt):
        current = parent
        parent = parent_of(current)
    if isinstance(parent, (ast.Return, ast.Expr)) and isinstance(
            getattr(parent, "value", None), (ast.Yield, ast.YieldFrom)):
        return True
    if isinstance(parent, ast.Return):
        return True
    names = _result_names(call)
    if "*stored*" in names:
        return True
    if not names:
        return False
    for node in own_nodes(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = node.value
            if value is not None and any(
                    isinstance(sub, ast.Name) and sub.id in names
                    for sub in ast.walk(value)):
                return True
        if isinstance(node, ast.Assign) and any(
                isinstance(target, (ast.Attribute, ast.Subscript))
                for target in node.targets):
            if any(isinstance(sub, ast.Name) and sub.id in names
                   for sub in ast.walk(node.value)):
                return True
    return False


def _closer_in_finally(func: ast.AST, pair: Pair) -> bool:
    """Is some closer for the pair inside a ``finally`` in this scope?"""
    for node in own_nodes(func):
        if not isinstance(node, ast.Try):
            continue
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if any(_method_call(sub, closer)
                       for closer in pair.closers):
                    return True
    return False


def check(modules: Iterable) -> List[Finding]:
    """Flag opener calls with no release path in their function."""
    findings: List[Finding] = []
    for module in modules:
        for func in iter_functions(module.tree):
            for pair in PAIRS:
                opens = [node for node in own_nodes(func)
                         if _method_call(node, pair.opener)]
                if not opens:
                    continue
                balanced = _closer_in_finally(func, pair)
                for call in opens:
                    if balanced or _is_with_context(call):
                        continue
                    if _escapes(func, call):
                        continue
                    closers = " / ".join(pair.closers)
                    findings.append(Finding(
                        rule=RULE, path=module.path,
                        line=call.lineno, col=call.col_offset,
                        qualname=qualname_of(call),
                        message=f"{pair.resource}: "
                                f"{pair.opener}() has no "
                                f"{closers}() on the error path",
                        hint="use try/finally or the context-manager "
                             "form, or store/return the resource so "
                             "its owner releases it"))
    return findings
