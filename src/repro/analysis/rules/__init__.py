"""Rule registry for reprolint.

Each rule module exposes ``RULE`` (its id), ``TITLE`` and a
``check(modules) -> list[Finding]`` entry point; this package collects
them into :data:`ALL_RULES` in id order.  Suppressions are applied by
the caller (:func:`repro.analysis.analyze_modules`), not by the rules.
"""

from __future__ import annotations

from repro.analysis.rules import (
    async_blocking,
    guarded_by,
    lock_order,
    resource_pairing,
    wire_taxonomy,
)

#: ``(rule id, title, check callable)`` for every shipped rule.
ALL_RULES = tuple(
    (module.RULE, module.TITLE, module.check)
    for module in sorted(
        (lock_order, guarded_by, async_blocking, wire_taxonomy,
         resource_pairing),
        key=lambda module: module.RULE)
)

__all__ = ["ALL_RULES"]
