"""The committed-findings ratchet for reprolint.

A baseline is a committed JSON list of finding fingerprints: the debt
that existed when a rule landed.  The CI contract is two-sided —

* a finding *not* in the baseline fails the run (no new debt), and
* a baseline entry that no longer reproduces fails the run too, so
  fixed findings must be removed (the ratchet only turns one way).

Fingerprints are line-number independent (see
:class:`repro.analysis.model.Finding`), so unrelated edits do not
churn the file.  Regenerate with ``python -m repro.analysis
--write-baseline`` after reviewing that every remaining entry is a
deliberate deferral.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.model import Finding

_VERSION = 1


def save(path: Path, findings: Iterable[Finding]) -> None:
    """Write the baseline file for the given findings."""
    entries = sorted(
        ({"fingerprint": finding.fingerprint, "rule": finding.rule,
          "path": finding.path, "qualname": finding.qualname,
          "message": finding.message}
         for finding in findings),
        key=lambda entry: (entry["path"], entry["rule"],
                           entry["fingerprint"]))
    payload = {"version": _VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")


def load(path: Path) -> List[Dict[str, str]]:
    """The baseline's entries (empty for a missing file)."""
    if not path.exists():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path} is not a reprolint baseline")
    return list(payload["findings"])


def compare(findings: Iterable[Finding],
            entries: Iterable[Dict[str, str]]
            ) -> Tuple[List[Finding], List[Dict[str, str]]]:
    """``(new findings, stale entries)`` against a baseline.

    New findings are violations the baseline does not cover; stale
    entries are baselined fingerprints that no longer reproduce and
    must be deleted from the file (the forced ratchet-down).
    """
    findings = list(findings)
    current = {finding.fingerprint for finding in findings}
    baselined = {entry["fingerprint"] for entry in entries}
    new = [finding for finding in findings
           if finding.fingerprint not in baselined]
    stale = [entry for entry in entries
             if entry["fingerprint"] not in current]
    return new, stale
