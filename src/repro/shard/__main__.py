"""``python -m repro.shard`` — run a sharded cluster behind one port.

Spawns N ``python -m repro.serve`` member processes (each with its own
database under ``--data-dir``), places documents on them through the
mediator, and serves the mediator itself over the ordinary wire
protocol — clients talk to one address and never learn the cluster
exists::

    # 4 shards, one synthetic DBLP document partitioned across all 4
    python -m repro.shard --shards 4 --generate dblp=dblp:2000 \\
        --partition dblp --port 7878

    # documents from files, each placed whole on the least-loaded shard
    python -m repro.shard --shards 2 --data-dir cluster/ \\
        --load a=a.xml --load b=b.xml

Like ``repro.serve``, one ``LISTENING <host> <port>`` line goes to
stdout once the front door is up.  SIGINT/SIGTERM stop the mediator,
then SIGTERM every member.  See ``docs/operations.md`` for the full
runbook and ``docs/sharding.md`` for how routing and merging work.
"""

from __future__ import annotations

import argparse
import logging
import signal
import sys
import tempfile
import threading

from repro.net.server import NetworkServer
from repro.serve import _generate, _parse_spec
from repro.shard.mediator import ShardedServer
from repro.shard.process import ShardCluster


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard",
        description="Serve XML documents sharded across worker "
                    "processes.")
    parser.add_argument("--shards", type=int, default=2,
                        help="member processes to spawn (default 2)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="mediator port; 0 picks a free one "
                             "(printed on stdout)")
    parser.add_argument("--data-dir", default=None,
                        help="directory for per-shard databases "
                             "(default: a temp dir); shard i uses "
                             "<dir>/shard-i.db, so a re-run recovers")
    parser.add_argument("--load", action="append", default=[],
                        metavar="NAME=XMLPATH",
                        help="place a document from an XML file "
                             "(repeatable)")
    parser.add_argument("--generate", action="append", default=[],
                        metavar="NAME=KIND:N",
                        help="place a synthetic document, e.g. "
                             "dblp=dblp:200 (repeatable)")
    parser.add_argument("--partition", action="append", default=[],
                        metavar="NAME",
                        help="split this document across every shard "
                             "instead of placing it whole "
                             "(repeatable)")
    parser.add_argument("--shard-workers", type=int, default=2,
                        help="worker threads per member process")
    parser.add_argument("--max-pending", type=int, default=64,
                        help="per-member admission-control queue depth")
    parser.add_argument("--time-limit", type=float, default=30.0,
                        help="per-query deadline in seconds "
                             "(0 = unlimited)")
    parser.add_argument("--page-size", type=int, default=64,
                        help="default rows per streamed cursor page")
    parser.add_argument("--log-interval", type=float, default=30.0,
                        help="seconds between mediator stats log "
                             "lines (0 disables)")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="log a structured line (with the stitched "
                             "span tree, if traced) for every query "
                             "slower than this many milliseconds")
    args = parser.parse_args(argv)

    logging.basicConfig(
        stream=sys.stderr, level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")

    data_dir = args.data_dir or tempfile.mkdtemp(prefix="repro-shard-")
    partitioned = set(args.partition)
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *__: stop.set())

    with ShardCluster.spawn(
            args.shards, data_dir, host=args.host,
            workers=args.shard_workers, max_pending=args.max_pending,
            time_limit=args.time_limit or None) as cluster:
        cluster.health_check()
        with ShardedServer(cluster.endpoints,
                           page_size=args.page_size) as mediator:
            for spec in args.load:
                name, path = _parse_spec(spec, "--load")
                mediator.load(name, path=path,
                              parts=(args.shards if name in partitioned
                                     else 1))
            for spec in args.generate:
                name, generator = _parse_spec(spec, "--generate")
                mediator.load(name, xml=_generate(generator),
                              parts=(args.shards if name in partitioned
                                     else 1))
            unknown = partitioned - {
                _parse_spec(spec, "--load/--generate")[0]
                for spec in args.load + args.generate}
            if unknown:
                raise SystemExit(f"--partition names documents that "
                                 f"were never loaded: "
                                 f"{sorted(unknown)}")
            server = NetworkServer(
                None, host=args.host, port=args.port,
                page_size=args.page_size,
                log_interval=args.log_interval,
                query_server=mediator,
                slow_query_seconds=(
                    None if args.slow_query_ms is None
                    else args.slow_query_ms / 1e3))
            host, port = server.start()
            print(f"LISTENING {host} {port}", flush=True)
            try:
                stop.wait()
            except KeyboardInterrupt:
                pass
            finally:
                server.stop()
    return 0


if __name__ == "__main__":
    sys.exit(main())
