"""Document partitioning: one XML tree into per-shard chunks.

The unit of distribution in :mod:`repro.shard` is the *document*: a
whole document lives on one shard, and routing is a catalog lookup.
For a document too hot (or too big) for one process, the mediator can
instead load it *partitioned*: :func:`split_document` cuts the root's
children into ``parts`` contiguous chunks, chunk ``i`` goes to shard
``i`` under the same document name, and a query over the logical
document fans out to every owning shard, its pages merged back in
document order.

Contiguity is what makes the merge trivial and exact: document order
of the logical document is chunk 0's rows, then chunk 1's, and so on —
precisely the order the mediator's k-way merge reconstructs from
``(chunk rank, row index)`` keys.  Splitting any finer than root
children (e.g. inside one huge element) is out of scope: the paper's
queries are evaluated against forests of top-level entries (articles,
sentences), which is exactly the shape this split preserves.
"""

from __future__ import annotations

from repro.errors import ShardError
from repro.xmlkit.dom import Document, Element
from repro.xmlkit.parser import parse
from repro.xmlkit.serializer import serialize


def split_document(xml: str, parts: int,
                   strip_whitespace: bool = True) -> list[str]:
    """Split one XML document into ``parts`` contiguous chunks.

    Each chunk is a complete document: the original root element (name
    and attributes preserved) wrapping a contiguous run of the root's
    children.  Chunk sizes differ by at most one child, earlier chunks
    taking the remainder, and every chunk is non-empty — asking for
    more parts than the root has children is a
    :class:`~repro.errors.ShardError`, because an empty chunk would
    make its shard answer structural queries (``/root``) differently
    from the others.

    Returns the chunks as serialized XML strings, ready for
    ``ShardedServer.load``'s per-shard placement.
    """
    if parts < 1:
        raise ShardError(f"parts must be >= 1, got {parts}")
    document = parse(xml, strip_whitespace=strip_whitespace)
    root = document.root_element
    if root is None:
        raise ShardError("cannot partition a document with no root "
                         "element")
    children = list(root.children)
    if parts > len(children):
        raise ShardError(
            f"cannot split {len(children)} root children into {parts} "
            f"non-empty parts")
    if parts == 1:
        return [serialize(document)]
    base, remainder = divmod(len(children), parts)
    chunks: list[str] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < remainder else 0)
        chunk_root = Element(root.name, attributes=root.attributes)
        for child in children[start:start + size]:
            chunk_root.append(child)
        chunk_document = Document()
        chunk_document.append(chunk_root)
        chunks.append(serialize(chunk_document))
        start += size
    return chunks
