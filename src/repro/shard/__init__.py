"""Sharded serving: documents partitioned across worker processes.

Python's GIL caps one process at roughly one core of query work no
matter how many worker threads :class:`~repro.core.server.QueryServer`
runs.  This package breaks that ceiling the way the deployment story
of a real DBMS does — more *processes*:

* :mod:`repro.shard.partition` — cut one XML document into contiguous
  per-shard chunks (document order preserved across the cut);
* :mod:`repro.shard.process` — spawn/health-check/terminate/restart
  ``python -m repro.serve`` member processes as a
  :class:`~repro.shard.process.ShardCluster`;
* :mod:`repro.shard.mediator` — :class:`ShardedServer`, the query
  front: routes single-document operations to the owning shard,
  decomposes multi-document and partitioned queries into per-shard
  subqueries, and merges the streamed pages back in document order;
* ``python -m repro.shard`` — the CLI: spawn a cluster, place
  documents, and serve the whole thing through one address speaking
  the ordinary wire protocol (the mediator duck-types ``QueryServer``,
  so :class:`~repro.net.server.NetworkServer` fronts it unchanged).

The failure model is per-shard: a dead member makes *its* documents
raise :class:`~repro.errors.ShardUnavailableError` while every other
shard keeps answering, and a restarted member (same port, same
database) is healed transparently by the connection pool's retry.
"""

from repro.errors import ShardError, ShardUnavailableError
from repro.shard.mediator import (
    ALL_DOCUMENTS,
    MediatorStats,
    ShardedServer,
    statement_text,
)
from repro.shard.partition import split_document
from repro.shard.process import ShardCluster, ShardProcess

__all__ = [
    "ShardedServer",
    "ShardCluster",
    "ShardProcess",
    "MediatorStats",
    "split_document",
    "statement_text",
    "ALL_DOCUMENTS",
    "ShardError",
    "ShardUnavailableError",
]
