"""The shard mediator: one query surface over many shard processes.

:class:`ShardedServer` fronts N independent ``python -m repro.serve``
processes (or in-process :class:`~repro.net.server.NetworkServer`
instances — the tests' fixture), each owning its own
:class:`~repro.core.dbms.XmlDbms`, and presents them as a single
server:

* **Routing.**  A catalog maps every logical document to the shard (or
  shards) holding it.  A query or update against one document travels
  to its owner over a pooled, reconnecting
  :class:`~repro.net.pool.ConnectionPool` connection and streams back
  unchanged.

* **Decomposition.**  A query against ``"*"`` (every document) or
  against a *partitioned* document (loaded with ``parts > 1``, chunk
  ``i`` on shard ``i``) fans out: one subquery per owning shard, all
  running concurrently, their pages merged back into a single stream
  in document order by a k-way merge keyed on ``(document rank, row
  index)`` — the metadata :class:`~repro.core.server.PageEnvelope`
  carries across the wire.

* **The QueryServer duck type.**  ``submit_stream`` / ``submit`` /
  ``load`` / ``stats`` / ``close`` mirror
  :class:`~repro.core.server.QueryServer`, so a
  :class:`~repro.net.server.NetworkServer` can serve a mediator
  exactly as it serves a local worker pool — that is how
  ``python -m repro.shard`` exposes a whole cluster through one
  address speaking the ordinary wire protocol.

Failure semantics: a dead shard makes queries touching *its* documents
raise :class:`~repro.errors.ShardUnavailableError` (after the pool's
one reconnect retry absorbs mere restarts), while documents on other
shards keep being served.  A fan-out that needs a dead shard fails as
a whole — partial results are never returned.  Updates are routed but
never auto-retried: an update whose connection died mid-flight may or
may not have been applied, and silently applying it twice is worse
than surfacing the failure.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import queue
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from operator import itemgetter
from pathlib import Path

from repro.core.server import DEFAULT_MAX_BUFFERED_PAGES, DEFAULT_PAGE_SIZE
from repro.errors import (
    CatalogError,
    CursorClosedError,
    ProtocolError,
    ServerClosedError,
    ShardError,
    ShardUnavailableError,
    UpdateError,
)
from repro.net.client import DEFAULT_TIMEOUT, NetClient, RemoteCursor
from repro.net.pool import ConnectionPool
from repro.obs import MetricsRegistry
from repro.shard.partition import split_document
from repro.updates.pul import UpdateResult
from repro.xq.pretty import unparse

#: Failures meaning "the shard connection is gone", mirrored from the
#: pool so leased-cursor paths classify errors the same way ``run`` does.
_CONNECTION_FAILURES = (ProtocolError, ServerClosedError,
                        ConnectionError, OSError, TimeoutError)

#: The fan-out pseudo-document: query every logical document, results
#: merged in sorted document-name order.
ALL_DOCUMENTS = "*"


def statement_text(statement) -> str:
    """The query text to put on the wire for ``statement``.

    Accepts what :class:`~repro.core.server.QueryServer` accepts — a
    string, a parsed ``Program``, or a bare query/update expression —
    and renders it back to XQ text, re-prepending ``declare variable
    $x external;`` for a program's declared externals (the body's
    unparse alone would drop them, and the shard's parser must see the
    same external surface the mediator validated against).
    """
    if isinstance(statement, str):
        return statement
    body = getattr(statement, "body", statement)
    text = unparse(body)
    externals = getattr(statement, "externals", ()) or ()
    declarations = "".join(f"declare variable ${name} external; "
                           for name in externals)
    return declarations + text


@dataclasses.dataclass(frozen=True)
class MediatorStats:
    """Mediator-local counters (no network round trips to collect).

    ``queries`` counts routed single-shard streams, ``fanouts``
    decomposed multi-shard streams; ``rows_streamed`` is rows handed to
    consumers across both.  ``pool_connects``/``pool_retries``/
    ``pool_discards`` aggregate the per-shard connection pools —
    ``pool_retries`` ticking up is the visible trace of shard restarts
    being absorbed.  For the cluster-wide view (every shard's own
    ``ServerStats`` and network metrics summed) call
    :meth:`ShardedServer.cluster_stats`, which does talk to the shards.
    """

    shards: int
    documents: int
    queries: int
    fanouts: int
    updates: int
    loads: int
    errors: int
    rows_streamed: int
    pool_connects: int
    pool_retries: int
    pool_discards: int


class ShardedServer:
    """Mediate queries over a set of shard servers.

    ``endpoints`` is the cluster membership: ``(host, port)`` per
    shard, index order defining shard ids.  The mediator dials lazily —
    constructing one against endpoints that are not up yet is fine;
    the first operation that needs a shard raises
    :class:`~repro.errors.ShardUnavailableError` if it still is not.
    """

    def __init__(self, endpoints, pool_capacity: int = 4,
                 timeout: float | None = DEFAULT_TIMEOUT,
                 page_size: int = DEFAULT_PAGE_SIZE):
        """Set up per-shard connection pools and an empty catalog."""
        endpoints = [tuple(endpoint) for endpoint in endpoints]
        if not endpoints:
            raise ShardError("a cluster needs at least one shard")
        self.endpoints = endpoints
        self.page_size = page_size
        self._pools = [
            ConnectionPool(host, port, capacity=pool_capacity,
                           timeout=timeout, shard=index)
            for index, (host, port) in enumerate(endpoints)
        ]
        #: logical document name -> owning shard ids, in chunk order.
        #: One entry means a whole document; several mean a partitioned
        #: one (chunk i on shards[i] under the same physical name).
        # guarded by: self._lock
        self._catalog: dict[str, tuple[int, ...]] = {}
        self._lock = threading.Lock()
        # guarded by: self._lock
        self._closed = False
        # guarded by: self._lock
        self._streams: set = set()
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, 2 * len(endpoints)),
            thread_name_prefix="repro-shard")
        #: Sizing hint for a fronting NetworkServer (QueryServer duck
        #: type): enough I/O slots to keep every shard busy.
        self._workers = tuple(range(max(4, 2 * len(endpoints))))
        # guarded by: self._lock
        self._queries = 0
        # guarded by: self._lock
        self._fanouts = 0
        # guarded by: self._lock
        self._updates = 0
        # guarded by: self._lock
        self._loads = 0
        # guarded by: self._lock
        self._errors = 0
        # guarded by: self._lock
        self._rows_streamed = 0
        #: Joined by a fronting NetworkServer (registry_of duck type) so
        #: the cluster front door's METRICS page carries these counters.
        self.metrics_registry = MetricsRegistry()
        self.metrics_registry.register(
            "mediator", lambda: dataclasses.asdict(self.stats()))

    # -- catalog -------------------------------------------------------------

    def _check_open(self, operation: str) -> None:
        with self._lock:
            closed = self._closed
        if closed:
            raise ServerClosedError(
                f"{operation} on a closed ShardedServer")

    def _placement(self, document: str) -> tuple[int, ...]:
        with self._lock:
            try:
                return self._catalog[document]
            except KeyError:
                raise CatalogError(
                    f"unknown document {document!r}; the mediator "
                    f"serves {sorted(self._catalog) or 'no documents'}"
                ) from None

    def _least_loaded_shard(self) -> int:
        with self._lock:
            load = [0] * len(self._pools)
            for shards in self._catalog.values():
                for shard in shards:
                    load[shard] += 1
        return min(range(len(load)), key=lambda index: (load[index],
                                                        index))

    def documents(self) -> dict[str, tuple[int, ...]]:
        """The catalog: logical document name -> owning shard ids."""
        with self._lock:
            return dict(self._catalog)

    def attach(self, document: str, shards) -> None:
        """Register a document already present on ``shards``.

        For membership the mediator did not place itself — documents
        pre-loaded by ``python -m repro.serve --load`` on the members,
        or a mediator restarting over a live cluster.  ``shards`` is a
        shard id or an ordered sequence of them (partitioned chunks).
        """
        self._check_open("attach()")
        if isinstance(shards, int):
            shards = (shards,)
        shards = tuple(shards)
        for shard in shards:
            if not 0 <= shard < len(self._pools):
                raise ShardError(f"no shard {shard} in a "
                                 f"{len(self._pools)}-shard cluster")
        if not shards:
            raise ShardError("a document needs at least one shard")
        with self._lock:
            self._catalog[document] = shards

    # -- placement -----------------------------------------------------------

    def load(self, document: str, xml: str | None = None,
             path: str | None = None, parts: int = 1) -> tuple[int, ...]:
        """Place a document on the cluster; returns the owning shards.

        With ``parts == 1`` the whole document goes to the least-loaded
        shard.  With ``parts > 1`` the root's children are split into
        ``parts`` contiguous chunks (:func:`~repro.shard.partition.
        split_document`), chunk ``i`` loaded on shard ``i`` under the
        same name — queries against the name then fan out and merge.
        Loading is idempotent (it replaces), so placement retries are
        safe; reloading an existing name keeps its placement shape.
        """
        self._check_open("load()")
        if xml is None:
            if path is None:
                raise ShardError("load() needs xml or path")
            xml = Path(path).read_text(encoding="utf-8")
        if parts > len(self._pools):
            raise ShardError(
                f"cannot spread {parts} parts over "
                f"{len(self._pools)} shards")
        if parts > 1:
            chunks = split_document(xml, parts)
            shards = tuple(range(parts))
            for shard, chunk in zip(shards, chunks, strict=True):
                self._pools[shard].run(
                    lambda client, chunk=chunk: client.load(document,
                                                            chunk))
        else:
            with self._lock:
                existing = self._catalog.get(document)
            if existing is not None and len(existing) > 1:
                raise ShardError(
                    f"{document!r} is partitioned over {existing}; "
                    f"reload it with parts={len(existing)} or attach "
                    f"a new name")
            shards = existing or (self._least_loaded_shard(),)
            self._pools[shards[0]].run(
                lambda client: client.load(document, xml))
        with self._lock:
            self._catalog[document] = shards
            self._loads += 1
        return shards

    # -- the QueryServer duck type -------------------------------------------

    def submit_stream(self, document: str, query,
                      bindings: dict | None = None,
                      serialize: bool = True,
                      page_size: int | None = None,
                      max_buffered_pages: int = DEFAULT_MAX_BUFFERED_PAGES,
                      time_limit: float | None = None,
                      trace=None):
        """A streaming result for ``document`` (or ``"*"`` for all).

        Single-owner documents return a routed stream — pages relayed
        from the owning shard.  ``"*"`` and partitioned documents
        return a fan-out stream: one subquery per owning shard, fetched
        concurrently, rows merged back in document order.  Both satisfy
        the :class:`~repro.core.server.QueryStream` consumer interface
        (``next_page`` / ``pages`` / ``close`` / ``plan_cache_hit``),
        and neither blocks the caller — shard dialing happens on first
        fetch (routed) or on the prefetch threads (fan-out).

        With a :class:`~repro.obs.TraceContext` as ``trace``, a
        ``mediator`` span opens under its current span, the trace id
        rides the subquery EXECUTE frames, and every shard's returned
        span tree is grafted under the mediator span when the stream
        ends — the stitched cluster-wide trace.
        """
        self._check_open("submit_stream()")
        if not serialize:
            raise ShardError("the mediator streams serialized rows; "
                             "submit_stream(serialize=False) is only "
                             "available on a local QueryServer")
        page_size = page_size or self.page_size
        text = statement_text(query)
        span = wire_trace = None
        if trace is not None:
            span = trace.current.child("mediator", document=document)
            wire_trace = trace.as_payload()
        if document == ALL_DOCUMENTS:
            with self._lock:
                catalog = dict(self._catalog)
            parts = [(name, shard)
                     for name in sorted(catalog)
                     for shard in catalog[name]]
            if not parts:
                raise CatalogError("the mediator serves no documents")
            return self._open_fanout(document, parts, text, bindings,
                                     page_size, max_buffered_pages,
                                     time_limit, span, wire_trace)
        shards = self._placement(document)
        if len(shards) > 1:
            parts = [(document, shard) for shard in shards]
            return self._open_fanout(document, parts, text, bindings,
                                     page_size, max_buffered_pages,
                                     time_limit, span, wire_trace)
        stream = _RoutedStream(self, shards[0], document, text,
                               bindings, page_size, time_limit,
                               span=span, wire_trace=wire_trace)
        with self._lock:
            self._queries += 1
            self._streams.add(stream)
        return stream

    def _open_fanout(self, label, parts, text, bindings, page_size,
                     max_buffered_pages, time_limit, span=None,
                     wire_trace=None):
        stream = _FanoutStream(self, label, parts, text, bindings,
                               page_size, max_buffered_pages,
                               time_limit, span=span,
                               wire_trace=wire_trace)
        with self._lock:
            self._fanouts += 1
            self._streams.add(stream)
        stream._start()
        return stream

    def submit(self, document: str, statement,
               bindings: dict | None = None, trace=None,
               **overrides) -> Future:
        """Run a statement asynchronously; returns its Future.

        This is the mediator's side of ``QueryServer.submit`` as the
        network front end uses it: updating statements.  The update is
        routed to the document's single owner and **never retried** —
        a connection that died mid-update leaves the outcome unknown,
        and the typed failure is the honest answer.  Updating a
        partitioned document raises
        :class:`~repro.errors.UpdateError`: a chunked update is not
        atomic across processes, and this codebase does not pretend
        otherwise.
        """
        self._check_open("submit()")
        return self._executor.submit(self._run_update, document,
                                     statement, bindings, trace)

    def _run_update(self, document: str, statement,
                    bindings: dict | None,
                    trace=None) -> UpdateResult:
        shards = self._placement(document)
        if len(shards) > 1:
            raise UpdateError(
                f"{document!r} is partitioned over shards {shards}; "
                f"updates to partitioned documents are not supported "
                f"(no cross-process atomicity)")
        text = statement_text(statement)
        span = wire_trace = None
        if trace is not None:
            # The submitting caller blocks on the future, so this
            # executor thread has the trace to itself until it returns.
            span = trace.current.child("mediator", document=document,
                                       shard=shards[0])
            wire_trace = trace.as_payload()
        try:
            payload = self._pools[shards[0]].run(
                lambda client: client.update(document, text,
                                             bindings=bindings,
                                             trace=wire_trace),
                retryable=False)
        except _CONNECTION_FAILURES as error:
            self._count("_errors")
            if span is not None:
                span.end(error=type(error).__name__)
            raise ShardUnavailableError(
                f"shard {shards[0]} failed during an update of "
                f"{document!r} (outcome unknown): {error}",
                shard=shards[0], document=document) from error
        except ShardUnavailableError as error:
            self._count("_errors")
            if span is not None:
                span.end(error=type(error).__name__)
            if error.document is None:
                error.document = document
            raise
        self._count("_updates")
        spans = payload.pop("spans", None)
        if span is not None:
            span.attach(spans)
            span.end()
        return UpdateResult(**payload)

    def update(self, document: str, statement,
               bindings: dict | None = None) -> UpdateResult:
        """Route an updating statement and wait for its result."""
        return self.submit(document, statement,
                           bindings=bindings).result()

    def execute(self, document: str, query,
                bindings: dict | None = None,
                time_limit: float | None = None) -> list[str]:
        """Run a query and collect every (serialized) row."""
        stream = self.submit_stream(document, query, bindings=bindings,
                                    time_limit=time_limit)
        try:
            rows: list[str] = []
            for page in stream.pages():
                rows.extend(page)
            return rows
        finally:
            stream.close()

    def query(self, document: str, query,
              bindings: dict | None = None,
              time_limit: float | None = None) -> str:
        """Run a query and concatenate its serialized rows."""
        return "".join(self.execute(document, query, bindings=bindings,
                                    time_limit=time_limit))

    # -- observability -------------------------------------------------------

    def _count(self, attribute: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, attribute, getattr(self, attribute) + amount)

    def stats(self) -> MediatorStats:
        """Mediator-local counters; see :class:`MediatorStats`."""
        pools = [pool.stats() for pool in self._pools]
        with self._lock:
            return MediatorStats(
                shards=len(self._pools),
                documents=len(self._catalog),
                queries=self._queries,
                fanouts=self._fanouts,
                updates=self._updates,
                loads=self._loads,
                errors=self._errors,
                rows_streamed=self._rows_streamed,
                pool_connects=sum(p["connects"] for p in pools),
                pool_retries=sum(p["retries"] for p in pools),
                pool_discards=sum(p["discards"] for p in pools))

    def cluster_stats(self, recent: int = 0) -> dict:
        """The cluster-wide stats view (one STATS round trip per shard).

        Returns ``{"mediator": ..., "shards": {id: stats-or-error},
        "aggregate": ..., "pools": [...]}`` where ``aggregate`` sums
        every numeric counter across the reachable shards' own
        ``server``/``network`` payloads.  A dead shard contributes an
        ``{"error": ...}`` entry instead of failing the whole view —
        an operator asking for stats mid-outage needs the survivors'
        numbers most of all.
        """
        self._check_open("cluster_stats()")
        per_shard: dict[int, dict] = {}
        aggregate: dict = {}
        for index, pool in enumerate(self._pools):
            try:
                payload = pool.run(
                    lambda client: client.stats(recent=recent))
            except ShardUnavailableError as error:
                per_shard[index] = {"error": str(error)}
                continue
            per_shard[index] = payload
            _merge_numeric(aggregate, payload)
        return {
            "mediator": dataclasses.asdict(self.stats()),
            "shards": per_shard,
            "aggregate": aggregate,
            "pools": [pool.stats() for pool in self._pools],
        }

    def health(self) -> dict[int, dict]:
        """Dial every shard: ``{shard: {"ok": bool, ...}}``.

        A healthy entry carries the shard's HELLO_OK info; an entry
        whose process advertises the *wrong* ``shard_id`` (something
        else answered on that port) is reported unhealthy too.
        """
        self._check_open("health()")
        report: dict[int, dict] = {}
        for index, pool in enumerate(self._pools):
            try:
                info = pool.run(lambda client: dict(client.server_info))
            except ShardUnavailableError as error:
                report[index] = {"ok": False, "error": str(error)}
                continue
            advertised = info.get("shard_id")
            if advertised is not None and advertised != index:
                report[index] = {
                    "ok": False, "error":
                    f"endpoint advertises shard_id {advertised}, "
                    f"expected {index}", **info}
            else:
                report[index] = {"ok": True, **info}
        return report

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close open streams, the pools, and the update executor."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            streams = list(self._streams)
            self._streams.clear()
        for stream in streams:
            stream.close(ServerClosedError(
                "ShardedServer closed while the stream was open"))
        self._executor.shutdown(wait=True)
        for pool in self._pools:
            pool.close()

    def _discard_stream(self, stream) -> None:
        with self._lock:
            self._streams.discard(stream)

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------------
# streams
# --------------------------------------------------------------------------


def _lease_cursor(server: ShardedServer, shard: int, document: str,
                  text: str, bindings, page_size, time_limit,
                  wire_trace=None) -> tuple[NetClient, RemoteCursor]:
    """EXECUTE on a pooled connection, keeping the lease for the stream.

    Retries the EXECUTE once on a stale connection (the shard-restart
    window); the caller owns releasing the returned client when the
    stream ends.  Raises
    :class:`~repro.errors.ShardUnavailableError` when the shard cannot
    be reached at all.
    """
    pool = server._pools[shard]
    last: BaseException | None = None
    for attempt in range(2):
        try:
            client = pool.acquire()
        except ShardUnavailableError as error:
            error.document = error.document or document
            raise
        try:
            cursor = client.execute(document, text, bindings=bindings,
                                    page_size=page_size,
                                    time_limit=time_limit,
                                    trace=wire_trace)
        except _CONNECTION_FAILURES as error:
            pool.release(client, discard=True)
            last = error
            if attempt == 0:
                pool.record_retry()
                continue
            raise ShardUnavailableError(
                f"shard {shard} failed twice opening a cursor on "
                f"{document!r}: {last}", shard=shard,
                document=document) from error
        except BaseException:
            pool.release(client)
            raise
        return client, cursor
    raise AssertionError("unreachable")


class _RoutedStream:
    """A single-shard stream: pages relayed from the owning shard.

    Satisfies the consumer side of
    :class:`~repro.core.server.QueryStream`.  The shard connection is
    leased lazily on the first :meth:`next_page` — submission never
    blocks — and returned to the pool when the stream ends, closes, or
    fails.  A connection failure mid-stream is terminal (the cursor's
    position died with the connection) and surfaces as
    :class:`~repro.errors.ShardUnavailableError`.
    """

    def __init__(self, server: ShardedServer, shard: int, document: str,
                 text: str, bindings, page_size: int,
                 time_limit: float | None, span=None, wire_trace=None):
        self.server = server
        self.shard = shard
        self.document = document
        self._text = text
        self._bindings = bindings
        self.page_size = page_size
        self._time_limit = time_limit
        self._span = span
        self._wire_trace = wire_trace
        self._client: NetClient | None = None
        self._cursor: RemoteCursor | None = None
        self._done = False
        self._closed = False
        self._lock = threading.Lock()
        self.plan_cache_hit: bool | None = None
        self.total_rows: int | None = None

    def next_page(self, timeout: float | None = None):
        """The next page of serialized rows; ``None`` at the end."""
        with self._lock:
            if self._closed:
                raise CursorClosedError("stream is closed")
            if self._done:
                return None
            if self._cursor is None:
                self._client, self._cursor = _lease_cursor(
                    self.server, self.shard, self.document, self._text,
                    self._bindings, self.page_size, self._time_limit,
                    wire_trace=self._wire_trace)
            try:
                envelope = self._cursor.fetch_envelope()
            except _CONNECTION_FAILURES as error:
                self._done = True
                self._release(discard=True)
                self.server._count("_errors")
                if self._span is not None:
                    self._span.end(error=type(error).__name__,
                                   shard=self.shard)
                raise ShardUnavailableError(
                    f"shard {self.shard} died mid-stream on "
                    f"{self.document!r}: {error}", shard=self.shard,
                    document=self.document) from error
            except BaseException as error:
                # A typed error over a healthy connection: the shard
                # already dropped the cursor, the connection survives.
                self._done = True
                self._release()
                self.server._count("_errors")
                if self._span is not None:
                    self._span.end(error=type(error).__name__,
                                   shard=self.shard)
                raise
            if envelope.eof:
                self._done = True
                self.plan_cache_hit = envelope.plan_cache_hit
                self.total_rows = envelope.total_rows
                if self._span is not None:
                    self._span.attach(envelope.spans)
                    self._span.end(rows=envelope.total_rows,
                                   shard=self.shard)
                self._release()
                self.server._discard_stream(self)
                return None
            self.server._count("_rows_streamed", len(envelope.rows))
            return envelope.rows

    def _release(self, discard: bool = False) -> None:
        if self._client is not None:
            self.server._pools[self.shard].release(self._client,
                                                   discard=discard)
            self._client = None
            self._cursor = None

    def pages(self):
        """Iterate pages until the stream ends."""
        while True:
            page = self.next_page()
            if page is None:
                return
            yield page

    def close(self, reason: BaseException | None = None) -> None:
        """Abandon the stream; frees the shard-side cursor (idempotent)."""
        with self._lock:
            if self._closed or (self._done and self._client is None):
                self._closed = True
                return
            self._closed = True
            cursor, self._cursor = self._cursor, None
            if cursor is not None:
                try:
                    cursor.close()
                except Exception:
                    self._release(discard=True)
                else:
                    self._release()
            if self._span is not None:
                self._span.end()
        self.server._discard_stream(self)

    @property
    def closed(self) -> bool:
        return self._closed


class _FanoutStream:
    """A decomposed stream: per-shard subqueries merged in order.

    ``parts`` lists ``(document, shard)`` pairs in global document
    order — every logical document for ``"*"``, or one entry per chunk
    of a partitioned document.  One prefetch thread per part leases a
    cursor and pushes keyed rows through a bounded queue (so fast
    shards run ahead only ``max_buffered_pages`` pages); the consumer
    side lazily drives a ``heapq.merge`` over the part iterators keyed
    by ``(part rank, base + offset)``, which reconstructs document
    order exactly because rows within a part already arrive ordered.
    A slow shard therefore stalls the merge only while one of its rows
    is genuinely next.

    Any part failing — including
    :class:`~repro.errors.ShardUnavailableError` from a dead shard —
    fails the whole stream; partial fan-out results are never served.
    """

    def __init__(self, server: ShardedServer, label: str, parts,
                 text: str, bindings, page_size: int,
                 max_buffered_pages: int, time_limit: float | None,
                 span=None, wire_trace=None):
        self.server = server
        self.document = label
        self.parts = list(parts)
        self._text = text
        self._bindings = bindings
        self.page_size = page_size
        self._time_limit = time_limit
        self._span = span
        self._wire_trace = wire_trace
        # Per-rank slots written by each prefetch thread at its eof and
        # read by the consumer thread in _finish — never shared between
        # writers, so no lock (spans themselves are not thread-safe).
        self._part_spans: list = [None] * len(self.parts)
        self._queues = [queue.Queue(maxsize=max(1, max_buffered_pages))
                        for _ in self.parts]
        self._threads: list[threading.Thread] = []
        self._merged = None
        self._done = False
        self._closed = threading.Event()
        self.plan_cache_hit: bool | None = None
        self.total_rows: int | None = None
        self._part_hits: list[bool | None] = [None] * len(self.parts)
        self._rows = 0

    def _start(self) -> None:
        for rank, (document, shard) in enumerate(self.parts):
            thread = threading.Thread(
                target=self._prefetch, args=(rank, document, shard),
                name=f"repro-shard-fanout-{rank}", daemon=True)
            self._threads.append(thread)
            thread.start()

    # -- producer side (one thread per part) ---------------------------------

    def _put(self, rank: int, item) -> bool:
        """Close-aware bounded put; False once the stream is closed."""
        while not self._closed.is_set():
            try:
                self._queues[rank].put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _prefetch(self, rank: int, document: str, shard: int) -> None:
        try:
            client, cursor = _lease_cursor(
                self.server, shard, document, self._text,
                self._bindings, self.page_size, self._time_limit,
                wire_trace=self._wire_trace)
        except BaseException as error:
            self._put(rank, ("error", error))
            return
        pool = self.server._pools[shard]
        try:
            while True:
                try:
                    envelope = cursor.fetch_envelope()
                except _CONNECTION_FAILURES as error:
                    pool.release(client, discard=True)
                    client = None
                    self._put(rank, ("error", ShardUnavailableError(
                        f"shard {shard} died mid-fanout on "
                        f"{document!r}: {error}", shard=shard,
                        document=document)))
                    return
                except BaseException as error:
                    pool.release(client)
                    client = None
                    self._put(rank, ("error", error))
                    return
                if envelope.eof:
                    self._part_hits[rank] = envelope.plan_cache_hit
                    self._part_spans[rank] = envelope.spans
                    pool.release(client)
                    client = None
                    self._put(rank, ("end", None))
                    return
                if not self._put(rank, ("rows", (envelope.base,
                                                 envelope.rows))):
                    return               # consumer closed us
        finally:
            if client is not None:
                # Closed mid-stream: the remote cursor is still open;
                # free it (best effort) before returning the lease.
                try:
                    cursor.close()
                except Exception:
                    pool.release(client, discard=True)
                else:
                    pool.release(client)

    # -- consumer side -------------------------------------------------------

    def _iter_part(self, rank: int):
        while True:
            if self._closed.is_set():
                raise CursorClosedError("stream is closed")
            try:
                kind, payload = self._queues[rank].get(timeout=0.05)
            except queue.Empty:
                continue
            if kind == "rows":
                base, rows = payload
                for offset, row in enumerate(rows):
                    yield ((rank, base + offset), row)
            elif kind == "end":
                return
            else:                        # kind == "error"
                raise payload

    def next_page(self, timeout: float | None = None):
        """The next merged page of serialized rows; ``None`` at the end."""
        if self._closed.is_set():
            raise CursorClosedError("stream is closed")
        if self._done:
            return None
        if self._merged is None:
            self._merged = heapq.merge(
                *(self._iter_part(rank)
                  for rank in range(len(self.parts))),
                key=itemgetter(0))
        try:
            page = [row for _key, row in
                    itertools.islice(self._merged, self.page_size)]
        except BaseException as error:
            self.server._count("_errors")
            if self._span is not None:
                self._span.end(error=type(error).__name__)
            self.close()
            raise
        if not page:
            self._finish()
            return None
        self._rows += len(page)
        self.server._count("_rows_streamed", len(page))
        return page

    def _finish(self) -> None:
        self._done = True
        self.total_rows = self._rows
        hits = self._part_hits
        if all(hit is not None for hit in hits):
            self.plan_cache_hit = all(hits)
        if self._span is not None:
            # Stitch on the consumer thread: every prefetch thread has
            # delivered its "end" marker (the merge is exhausted), so
            # the per-rank slots are final.
            for spans in self._part_spans:
                self._span.attach(spans)
            self._span.end(rows=self._rows, parts=len(self.parts))
        self.server._discard_stream(self)

    def pages(self):
        """Iterate merged pages until the stream ends."""
        while True:
            page = self.next_page()
            if page is None:
                return
            yield page

    def close(self, reason: BaseException | None = None) -> None:
        """Abandon the stream; prefetch threads unwind (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()
        # Drain so producers blocked on a full queue wake and exit.
        for part_queue in self._queues:
            while True:
                try:
                    part_queue.get_nowait()
                except queue.Empty:
                    break
        if self._span is not None:
            self._span.end()
        self.server._discard_stream(self)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


def _merge_numeric(target: dict, source: dict) -> None:
    """Recursively sum ``source``'s numeric leaves into ``target``."""
    for key, value in source.items():
        if isinstance(value, dict):
            _merge_numeric(target.setdefault(key, {}), value)
        elif isinstance(value, (int, float)) and not isinstance(
                value, bool):
            target[key] = target.get(key, 0) + value
