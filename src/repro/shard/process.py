"""Shard process lifecycle: spawn, health-check, terminate, restart.

A shard is an ordinary ``python -m repro.serve`` subprocess with three
cluster-specific properties:

* it runs with ``--shard-id N`` so its HELLO_OK advertises which
  cluster slot it believes it fills (the mediator's health check
  catches a process answering on the wrong port);
* its database lives at a stable per-shard path
  (``<data-dir>/shard-N.db``), so a restarted shard recovers its
  documents from the WAL instead of starting empty;
* its stdout ``LISTENING <host> <port>`` banner is parsed by the
  spawner, which is how ``--port 0`` (kernel-assigned) clusters learn
  their own membership.

:class:`ShardCluster` manages N of them as a unit — spawn them all,
SIGTERM them all, restart one in place on its old port and database —
which is everything ``python -m repro.shard`` and the crash tests
need.  Nothing here talks XQ; process management and the query path
(:mod:`repro.shard.mediator`) stay separate layers.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import ShardError, ShardUnavailableError
from repro.net.client import NetClient

#: Seconds a freshly spawned shard gets to print its LISTENING banner.
SPAWN_TIMEOUT = 30.0


def _launch(cls, index: int, argv: list[str], db_path: str):
    """Start ``argv`` and wait for its ``LISTENING`` banner.

    Shared by first spawns and in-place restarts (which reuse the old
    command line with the port pinned).  A process that exits before
    listening raises :class:`~repro.errors.ShardError` carrying its
    stderr tail.
    """
    # The member must import the same ``repro`` the spawner runs —
    # regardless of the spawner's cwd or how it set its own path.
    source_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [source_root] + ([env["PYTHONPATH"]]
                         if env.get("PYTHONPATH") else []))
    process = subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env)
    deadline = time.monotonic() + SPAWN_TIMEOUT
    banner = ""
    while time.monotonic() < deadline:
        if process.poll() is not None:
            stderr = (process.stderr.read() or "")[-2000:]
            raise ShardError(
                f"shard {index} exited with code "
                f"{process.returncode} before listening; stderr: "
                f"{stderr}")
        banner = process.stdout.readline()
        if banner:
            break
    parts = banner.split()
    if len(parts) != 3 or parts[0] != "LISTENING":
        process.kill()
        process.wait()
        raise ShardError(f"shard {index} printed {banner!r}, "
                         f"expected 'LISTENING <host> <port>'")
    return cls(index, process, parts[1], int(parts[2]), db_path, argv)


class ShardProcess:
    """One shard subprocess and the address it serves.

    Created via :meth:`spawn`; holds the ``Popen`` handle, the bound
    ``(host, port)``, and the database path — enough to health-check
    it, stop it, and spawn a successor that recovers its data.
    """

    def __init__(self, index: int, process: subprocess.Popen,
                 host: str, port: int, db_path: str,
                 argv: list[str]):
        self.index = index
        self.process = process
        self.host = host
        self.port = port
        self.db_path = db_path
        #: The exact command line, for in-place restarts.
        self.argv = argv

    @classmethod
    def spawn(cls, index: int, db_path: str, host: str = "127.0.0.1",
              port: int = 0, workers: int = 2,
              max_pending: int = 64,
              time_limit: float | None = 30.0,
              extra_args: list[str] | None = None) -> "ShardProcess":
        """Start ``python -m repro.serve --shard-id index`` and wait
        for its LISTENING banner.

        ``port=0`` lets the kernel pick; the banner tells us what it
        picked.  A process that exits (or stays silent past
        ``SPAWN_TIMEOUT``) raises :class:`~repro.errors.ShardError`
        with its stderr tail, because a shard that cannot start is a
        deployment problem, not an unavailability blip.
        """
        argv = [sys.executable, "-m", "repro.serve",
                "--host", host, "--port", str(port),
                "--db", db_path,
                "--shard-id", str(index),
                "--workers", str(workers),
                "--max-pending", str(max_pending),
                "--time-limit", str(time_limit or 0),
                "--log-interval", "0"]
        argv.extend(extra_args or [])
        return _launch(cls, index, argv, db_path)

    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` the shard serves on."""
        return (self.host, self.port)

    def alive(self) -> bool:
        """Whether the subprocess is still running."""
        return self.process.poll() is None

    def health_check(self, timeout: float = 5.0) -> dict:
        """Dial the shard and verify its advertised identity.

        Returns the HELLO_OK info on success.  Raises
        :class:`~repro.errors.ShardUnavailableError` when nothing
        answers, :class:`~repro.errors.ShardError` when something
        answers but claims a different ``shard_id`` — a mis-wired
        cluster must fail loudly, not route queries to the wrong data.
        """
        try:
            with NetClient(self.host, self.port,
                           timeout=timeout) as client:
                info = dict(client.server_info)
        except Exception as error:
            raise ShardUnavailableError(
                f"shard {self.index} at {self.host}:{self.port} "
                f"failed its health check: {error}",
                shard=self.index) from error
        advertised = info.get("shard_id")
        if advertised != self.index:
            raise ShardError(
                f"process at {self.host}:{self.port} advertises "
                f"shard_id {advertised!r}, expected {self.index}")
        return info

    def terminate(self, timeout: float = 10.0) -> int:
        """SIGTERM the shard and wait; escalate to SIGKILL on timeout."""
        if self.process.poll() is None:
            self.process.send_signal(signal.SIGTERM)
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        return self.process.returncode

    def kill(self) -> int:
        """SIGKILL the shard — the crash the failure tests inject."""
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait()
        return self.process.returncode


class ShardCluster:
    """N shard processes managed as one unit."""

    def __init__(self, shards: list[ShardProcess], data_dir: str):
        self.shards = shards
        self.data_dir = data_dir

    @classmethod
    def spawn(cls, count: int, data_dir: str, host: str = "127.0.0.1",
              workers: int = 2, max_pending: int = 64,
              time_limit: float | None = 30.0,
              extra_args: list[str] | None = None) -> "ShardCluster":
        """Start ``count`` shards with databases under ``data_dir``.

        Shard ``i`` serves ``<data_dir>/shard-i.db`` on a
        kernel-assigned port.  If any member fails to start, the ones
        already up are torn down before the error propagates — no
        half-spawned clusters.
        """
        if count < 1:
            raise ShardError(f"count must be >= 1, got {count}")
        Path(data_dir).mkdir(parents=True, exist_ok=True)
        shards: list[ShardProcess] = []
        try:
            for index in range(count):
                db_path = str(Path(data_dir) / f"shard-{index}.db")
                shards.append(ShardProcess.spawn(
                    index, db_path, host=host, workers=workers,
                    max_pending=max_pending, time_limit=time_limit,
                    extra_args=extra_args))
        except BaseException:
            for shard in shards:
                shard.terminate()
            raise
        return cls(shards, data_dir)

    @property
    def endpoints(self) -> list[tuple[str, int]]:
        """The ``(host, port)`` list, in shard-id order — what a
        :class:`~repro.shard.mediator.ShardedServer` takes."""
        return [shard.address for shard in self.shards]

    def health_check(self) -> dict[int, dict]:
        """Health-check every member; see
        :meth:`ShardProcess.health_check`."""
        return {shard.index: shard.health_check()
                for shard in self.shards}

    def restart(self, index: int, timeout: float = 10.0) -> ShardProcess:
        """Stop shard ``index`` (if alive) and respawn it in place.

        The successor binds the *same* port and reopens the *same*
        database, so its documents come back through WAL recovery and
        the mediator's pooled connections heal on their next retry —
        no catalog change, no client-visible re-membership.
        """
        old = self.shards[index]
        old.terminate(timeout=timeout)
        argv = list(old.argv)
        argv[argv.index("--port") + 1] = str(old.port)
        fresh = _launch(ShardProcess, index, argv, old.db_path)
        self.shards[index] = fresh
        return fresh

    def stop(self, timeout: float = 10.0) -> None:
        """SIGTERM every member concurrently, then reap them all."""
        for shard in self.shards:
            if shard.process.poll() is None:
                shard.process.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        for shard in self.shards:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                shard.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                shard.process.kill()
                shard.process.wait()

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
