"""Tuple and key codecs.

Two encodings live here:

* :class:`RecordCodec` — compact, schema-driven serialization of value
  tuples (used for heap records and B+-tree values);
* :func:`encode_key` / :func:`decode_key` — an **order-preserving** byte
  encoding for composite keys, so the B+-tree can compare keys with plain
  ``bytes`` comparison.

Key encoding rules (all big-endian):

* unsigned 32-bit ints → 4 bytes (``memcmp`` order = numeric order);
* strings → UTF-8 with every ``0x00`` escaped as ``0x00 0xFF``, terminated
  by ``0x00 0x00``.  This keeps prefix ordering correct for composite keys
  (a shorter string sorts before any extension of it).
"""

from __future__ import annotations

import struct

from repro.errors import StorageError

#: Column type tags understood by the codecs.
U8 = "u8"
U32 = "u32"
STR = "str"

_VALID_TYPES = (U8, U32, STR)


class RecordCodec:
    """Serialize/deserialize tuples for a fixed column-type schema.

    Example::

        codec = RecordCodec(["u32", "u32", "u32", "u8", "str"])  # XASR
        raw = codec.encode((2, 17, 1, 1, "journal"))
        codec.decode(raw)  # -> (2, 17, 1, 1, "journal")
    """

    def __init__(self, column_types: list[str]):
        for column_type in column_types:
            if column_type not in _VALID_TYPES:
                raise StorageError(f"unknown column type {column_type!r}")
        self.column_types = tuple(column_types)

    def encode(self, values: tuple) -> bytes:
        if len(values) != len(self.column_types):
            raise StorageError(
                f"arity mismatch: {len(values)} values for "
                f"{len(self.column_types)} columns")
        parts: list[bytes] = []
        for column_type, value in zip(self.column_types, values, strict=True):
            if column_type == U8:
                parts.append(struct.pack(">B", value))
            elif column_type == U32:
                parts.append(struct.pack(">I", value))
            else:
                raw = value.encode("utf-8")
                parts.append(struct.pack(">I", len(raw)))
                parts.append(raw)
        return b"".join(parts)

    def decode(self, raw: bytes | memoryview) -> tuple:
        values: list = []
        offset = 0
        raw = bytes(raw)
        for column_type in self.column_types:
            if column_type == U8:
                values.append(raw[offset])
                offset += 1
            elif column_type == U32:
                (value,) = struct.unpack_from(">I", raw, offset)
                values.append(value)
                offset += 4
            else:
                (length,) = struct.unpack_from(">I", raw, offset)
                offset += 4
                values.append(raw[offset:offset + length].decode("utf-8"))
                offset += length
        if offset != len(raw):
            raise StorageError(f"record has {len(raw) - offset} trailing "
                               "bytes")
        return tuple(values)


class KeyCodec:
    """Order-preserving codec for a fixed composite-key schema."""

    def __init__(self, column_types: list[str]):
        for column_type in column_types:
            if column_type not in (U32, STR):
                raise StorageError(
                    f"key columns must be u32 or str, got {column_type!r}")
        self.column_types = tuple(column_types)

    def encode(self, values: tuple) -> bytes:
        if len(values) != len(self.column_types):
            raise StorageError(
                f"arity mismatch: {len(values)} values for "
                f"{len(self.column_types)} key columns")
        return encode_key(values, self.column_types)

    def decode(self, raw: bytes) -> tuple:
        return decode_key(raw, self.column_types)


def encode_key(values: tuple, column_types: tuple[str, ...] | None = None
               ) -> bytes:
    """Encode a composite key so that ``bytes`` order equals tuple order.

    Types are inferred from Python values when ``column_types`` is omitted
    (ints must fit in u32).
    """
    if column_types is None:
        column_types = tuple(U32 if isinstance(v, int) else STR
                             for v in values)
    parts: list[bytes] = []
    for column_type, value in zip(column_types, values, strict=True):
        if column_type == U32:
            if not 0 <= value <= 0xFFFFFFFF:
                raise StorageError(f"key int {value} out of u32 range")
            parts.append(struct.pack(">I", value))
        else:
            encoded = value.encode("utf-8").replace(b"\x00", b"\x00\xff")
            parts.append(encoded + b"\x00\x00")
    return b"".join(parts)


def decode_key(raw: bytes, column_types: tuple[str, ...] | list[str]
               ) -> tuple:
    """Invert :func:`encode_key` for a known schema."""
    values: list = []
    offset = 0
    for column_type in column_types:
        if column_type == U32:
            (value,) = struct.unpack_from(">I", raw, offset)
            values.append(value)
            offset += 4
        else:
            chunks: list[bytes] = []
            while True:
                zero = raw.index(b"\x00", offset)
                if raw[zero:zero + 2] == b"\x00\xff":
                    chunks.append(raw[offset:zero] + b"\x00")
                    offset = zero + 2
                    continue
                if raw[zero:zero + 2] == b"\x00\x00":
                    chunks.append(raw[offset:zero])
                    offset = zero + 2
                    break
                raise StorageError("malformed string key")
            values.append(b"".join(chunks).decode("utf-8"))
    if offset != len(raw):
        raise StorageError("trailing bytes in key")
    return tuple(values)


def key_prefix_upper_bound(prefix: bytes) -> bytes:
    """Smallest byte string greater than every key starting with ``prefix``.

    Used to turn "all keys with this prefix" into a half-open range scan.
    """
    return prefix + b"\xff" * 8
