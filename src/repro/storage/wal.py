"""Write-ahead logging and crash recovery for the page file.

The paper scoped recovery out ("completely disregard concurrency control
and recovery"); the update subsystem scopes it back in.  The protocol is
a deliberately simple redo-only, full-page-image WAL:

* While a write transaction runs, **nothing** it touched reaches the
  database file: the buffer pool holds every dirtied page (no-steal, see
  :meth:`~repro.storage.buffer.BufferPool.begin_tracking`) and the pager
  defers header writes.
* At commit, the after-image of every dirtied page — plus the header
  page — is appended to the log as an LSN-stamped, CRC-guarded ``PAGE``
  record, followed by a ``COMMIT`` record, and the log is fsynced.  Only
  then are the pages written back to the database file.
* :func:`recover` (run by ``Database.open`` *before* the pager parses
  the file) replays every complete committed transaction in LSN order
  and discards any torn tail.  Full-page redo is idempotent, so replay
  over pages that were already written back is harmless.
* A checkpoint — taken every ``checkpoint_interval`` commits, on close,
  and around non-transactional bulk operations like ``load`` — flushes
  the buffer pool, fsyncs the database file and resets the log, bounding
  both recovery time and log growth.

The guarantee: after ``kill -9`` at *any* instant, reopening the
database yields exactly the state after some committed prefix of the
transaction history — an acknowledged (fsynced) commit is never lost,
and no page is ever left half-written.  What is **not** guaranteed:
transactions whose commit record did not reach disk are rolled back
wholesale (they were never acknowledged), and pages allocated by such
transactions may leak (the file stays grown; nothing references them).

The log lives next to the database file as ``<path>.wal``.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass

from repro.errors import WalError

_FILE_MAGIC = b"XWALLOG1"
_FILE_HEADER = struct.Struct(">8sI")      # magic, page_size
_RECORD = struct.Struct(">QBII")          # lsn, type, page_id, crc
_PAGE = 1
_COMMIT = 2

#: Record types that carry no payload.
_BARE_TYPES = frozenset({_COMMIT})


def _crc(lsn: int, rec_type: int, page_id: int, payload: bytes) -> int:
    head = _RECORD.pack(lsn, rec_type, page_id, 0)
    return zlib.crc32(payload, zlib.crc32(head)) & 0xFFFFFFFF


@dataclass(frozen=True)
class RecoveryReport:
    """What :func:`recover` found and did."""

    #: True if a log file with records existed at open.
    log_found: bool
    #: Complete committed transactions replayed into the database file.
    transactions_replayed: int
    #: Page images written during replay.
    pages_applied: int
    #: Bytes of torn/uncommitted log tail that were discarded.
    tail_discarded: int

    @property
    def clean(self) -> bool:
        """True when nothing needed replaying or discarding."""
        return self.transactions_replayed == 0 and self.tail_discarded == 0


def default_wal_path(db_path: str) -> str:
    return db_path + ".wal"


def recover(db_path: str, wal_path: str | None = None) -> RecoveryReport:
    """Replay committed transactions from the log into the database file.

    Must run before anything parses ``db_path`` (the header page itself
    may be among the logged images).  Scans the log sequentially,
    buffering each transaction's page images; a ``COMMIT`` record whose
    CRC checks out releases them for replay, and the first torn,
    corrupt or out-of-order record ends the scan — everything after it
    (an unacknowledged transaction) is discarded.  On success the
    database file is fsynced and the log reset, so recovery itself is
    idempotent: crashing *during* recovery just means recovering again.
    """
    wal_path = wal_path or default_wal_path(db_path)
    try:
        size = os.path.getsize(wal_path)
    except OSError:
        return RecoveryReport(False, 0, 0, 0)
    if size <= _FILE_HEADER.size:
        # Empty (or torn at creation): nothing was ever committed.
        return RecoveryReport(size > 0, 0, 0, 0)

    with open(wal_path, "rb") as log:
        header = log.read(_FILE_HEADER.size)
        magic, page_size = _FILE_HEADER.unpack(header)
        if magic != _FILE_MAGIC:
            raise WalError(f"{wal_path}: not a write-ahead log")
        if page_size < 1:
            raise WalError(f"{wal_path}: corrupt log header "
                           f"(page_size={page_size})")
        committed: list[dict[int, bytes]] = []
        pending: dict[int, bytes] = {}
        last_lsn = 0
        committed_end = _FILE_HEADER.size
        while True:
            head = log.read(_RECORD.size)
            if len(head) < _RECORD.size:
                break
            lsn, rec_type, page_id, crc = _RECORD.unpack(head)
            payload = b""
            if rec_type == _PAGE:
                payload = log.read(page_size)
                if len(payload) < page_size:
                    break
            elif rec_type not in _BARE_TYPES:
                break
            if lsn <= last_lsn or _crc(lsn, rec_type, page_id,
                                       payload) != crc:
                break
            last_lsn = lsn
            if rec_type == _PAGE:
                pending[page_id] = payload
            else:
                committed.append(pending)
                pending = {}
                committed_end = log.tell()
        # Everything past the last COMMIT is the discarded tail: torn or
        # corrupt records, and any unterminated page group — its COMMIT
        # never made it, so the transaction never happened.
        tail_discarded = size - committed_end
        del pending

    pages_applied = 0
    if committed:
        # Replay in commit order; later images of the same page win, and
        # rewriting a page that already holds these bytes is a no-op.
        with open(db_path, "r+b" if os.path.exists(db_path)
                  else "w+b") as db:
            for images in committed:
                for page_id, image in images.items():
                    db.seek(page_id * page_size)
                    db.write(image)
                    pages_applied += 1
            db.flush()
            os.fsync(db.fileno())
    # Reset the log only after the database file is durable: a crash
    # between the fsync above and this truncate re-runs an idempotent
    # replay next time.
    _reset_file(wal_path, page_size)
    return RecoveryReport(True, len(committed), pages_applied,
                          tail_discarded)


def _reset_file(wal_path: str, page_size: int) -> None:
    with open(wal_path, "wb") as log:
        log.write(_FILE_HEADER.pack(_FILE_MAGIC, page_size))
        log.flush()
        os.fsync(log.fileno())


class WriteAheadLog:
    """Append-only redo log for one database file.

    Not thread-safe on its own: the owning
    :class:`~repro.storage.db.Database` serializes transactions (and
    with them all log appends) under its transaction lock.
    """

    def __init__(self, path: str, page_size: int):
        self.path = path
        self.page_size = page_size
        self._lsn = 0
        #: Commit LSNs since the last checkpoint (observability + tests).
        self.commits_since_checkpoint = 0
        _reset_file(path, page_size)
        self._file = open(path, "r+b")
        self._file.seek(0, os.SEEK_END)

    # -- appending -----------------------------------------------------------

    def _append(self, rec_type: int, page_id: int, payload: bytes) -> int:
        self._lsn += 1
        lsn = self._lsn
        crc = _crc(lsn, rec_type, page_id, payload)
        self._file.write(_RECORD.pack(lsn, rec_type, page_id, crc))
        if payload:
            self._file.write(payload)
        return lsn

    def append_commit(self, images: dict[int, bytes]) -> int:
        """Append one transaction — page images then COMMIT — *without*
        forcing it to disk.

        ``images`` maps page ids to full after-images (each exactly one
        page).  Returns the commit record's LSN.  The transaction only
        becomes durable once a later :meth:`sync` covers it — that is the
        :class:`GroupCommitter`'s job, which batches one fsync over every
        commit appended since the last one.
        """
        for page_id, image in sorted(images.items()):
            if len(image) != self.page_size:
                raise WalError(f"page {page_id} image is {len(image)} "
                               f"bytes, expected {self.page_size}")
            self._append(_PAGE, page_id, image)
        lsn = self._append(_COMMIT, 0, b"")
        self.commits_since_checkpoint += 1
        return lsn

    def log_commit(self, images: dict[int, bytes]) -> int:
        """Append one transaction and fsync immediately.

        The single-writer path: equivalent to :meth:`append_commit`
        followed by :meth:`sync`.  When this returns, the transaction is
        durable: recovery will replay it even if the database file never
        sees the pages.
        """
        lsn = self.append_commit(images)
        self.sync()
        return lsn

    def sync(self) -> None:
        self._file.flush()
        os.fsync(self._file.fileno())

    def truncate_to(self, size: int) -> None:
        """Drop everything appended after ``size`` (commit-failure
        cleanup: a half-appended transaction must not linger where a
        later flush could make it replayable)."""
        self._file.truncate(size)
        self._file.seek(size)

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self) -> None:
        """Reset the log to empty.

        Callers must first make the database file itself durable (flush
        the buffer pool and fsync) — everything the log was protecting
        has to be in the main file before its records may be dropped.
        """
        self._file.close()
        _reset_file(self.path, self.page_size)
        self._file = open(self.path, "r+b")
        self._file.seek(0, os.SEEK_END)
        self.commits_since_checkpoint = 0

    @property
    def size(self) -> int:
        """Current log size in bytes (header included)."""
        return self._file.tell()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CommitTicket:
    """One transaction's place in the group-commit queue.

    Created by :meth:`GroupCommitter.submit` with the commit already
    appended to the log; :meth:`wait` blocks until the covering fsync
    (and the durable page write-back) completed, re-raising the
    committer's failure as a :class:`~repro.errors.WalError` if it did
    not.
    """

    __slots__ = ("commit_lsn", "images", "mods", "_event", "_error")

    def __init__(self, commit_lsn: int, images: dict[int, bytes],
                 mods: dict[int, int]):
        self.commit_lsn = commit_lsn
        self.images = images
        self.mods = mods
        self._event = threading.Event()
        self._error: WalError | None = None

    def _finish(self, error: WalError | None = None) -> None:
        self._error = error
        self._event.set()

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> None:
        """Block until durable; raise the committer's error if it failed."""
        if not self._event.wait(timeout):
            raise WalError(
                f"commit {self.commit_lsn} not durable after {timeout}s")
        if self._error is not None:
            raise self._error


class GroupCommitter:
    """Daemon thread batching commit fsyncs.

    Writers append their records under the database's transaction lock,
    publish in memory, then :meth:`submit` a ticket and wait *outside*
    every lock — so while one fsync is in flight, more commits pile into
    the queue and the next fsync covers them all.  A lone writer still
    pays exactly one fsync; 64 pipelined writers share a handful.

    After each fsync the committer runs ``on_durable(ticket)`` per
    covered commit, in commit order — the database uses this to write the
    logged images into the main file and release the held-back frames.

    An fsync failure **poisons** the committer: the failed batch, every
    queued ticket and every future submission fail with a typed
    :class:`~repro.errors.WalError` (an un-fsyncable log can never ack
    durability again); readers are unaffected.  :meth:`close` drains the
    queue first — a parked writer gets its fsync and its ack, never a
    silent drop.
    """

    def __init__(self, wal: WriteAheadLog,
                 on_durable=None):
        self._wal = wal
        self._on_durable = on_durable
        self._cond = threading.Condition()
        self._queue: list[CommitTicket] = []
        self._pending = 0
        self._poison: WalError | None = None
        self._closed = False
        #: Lifetime counters: fsyncs_saved = group_commits - group_fsyncs.
        self.group_commits = 0
        self.group_fsyncs = 0
        self.max_batch = 0
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="wal-group-committer")
        self._thread.start()

    # -- writer side ---------------------------------------------------------

    def submit(self, ticket: CommitTicket) -> CommitTicket:
        """Enqueue an appended commit for the next batched fsync."""
        with self._cond:
            if self._poison is not None:
                raise self._poison
            if self._closed:
                raise WalError("group committer is closed; commit "
                               f"{ticket.commit_lsn} was appended but "
                               "cannot be acknowledged")
            self._queue.append(ticket)
            self._pending += 1
            self.group_commits += 1
            self._cond.notify_all()
        return ticket

    def drain(self) -> None:
        """Block until every submitted commit is durable (or failed)."""
        with self._cond:
            while self._pending > 0:
                self._cond.wait(timeout=1.0)
                if not self._thread.is_alive() and self._pending > 0:
                    raise WalError("group committer thread died with "
                                   f"{self._pending} commit(s) pending")

    def stats(self) -> dict[str, int]:
        with self._cond:
            return {
                "group_commits": self.group_commits,
                "group_fsyncs": self.group_fsyncs,
                "fsyncs_saved": self.group_commits - self.group_fsyncs,
                "max_batch": self.max_batch,
                "pending_commits": self._pending,
            }

    def close(self) -> None:
        """Drain the queue (fsync + ack every parked commit), then stop.

        Idempotent.  Submissions after close fail with a typed
        :class:`~repro.errors.WalError`.
        """
        with self._cond:
            if self._closed:
                self._cond.notify_all()
            self._closed = True
            self._cond.notify_all()
        self._thread.join()

    # -- committer thread ----------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return
                batch, self._queue = self._queue, []
            self._commit_batch(batch)

    def _commit_batch(self, batch: list[CommitTicket]) -> None:
        error = self._poison
        if error is None:
            try:
                self._wal.sync()
                self.group_fsyncs += 1
                self.max_batch = max(self.max_batch, len(batch))
            except Exception as exc:  # noqa: BLE001 — poison + re-raise typed
                error = WalError(f"group commit fsync failed: {exc}")
        for ticket in batch:
            ticket_error = error
            if ticket_error is None and self._on_durable is not None:
                try:
                    self._on_durable(ticket)
                except Exception as exc:  # noqa: BLE001
                    ticket_error = WalError(
                        f"durable write-back of commit "
                        f"{ticket.commit_lsn} failed: {exc}")
                    error = ticket_error
            ticket._finish(ticket_error)
        with self._cond:
            if error is not None:
                self._poison = error
                for ticket in self._queue:
                    ticket._finish(error)
                    self._pending -= 1
                self._queue = []
            self._pending -= len(batch)
            self._cond.notify_all()
