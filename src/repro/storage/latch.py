"""Latching primitives for the concurrent storage layer.

The paper scoped concurrency control out ("completely disregard
concurrency control and recovery"); the serving layer scopes it back in.
The storage layer needs *latches* (short physical locks protecting
in-memory structures) rather than full transactional lock tables:
transaction-level isolation for updates is provided one level up, by
the per-document latches in :class:`~repro.core.dbms.XmlDbms` plus the
database-wide write-transaction lock:

* :class:`SharedLatch` is a reader-preference shared/exclusive latch.
  Any number of readers hold it together; a writer holds it alone.
  Readers never wait behind a merely *waiting* writer, which makes
  nested shared acquisition from one thread (a scan inside a scan, a
  prefix scan delegating to a range scan) deadlock-free by construction.
  Writer starvation is possible in principle under a saturated read
  load; in practice writes happen on the rare ``load``/``drop``/
  ``update`` paths and at spill-file creation, with gaps between
  reader batches.

The trade-off is deliberate: with CPython's GIL the latches are not
buying parallel speed-ups, they are buying *well-defined interleavings* —
an ``OrderedDict`` LRU move, a B+-tree split or a pager ``seek``/``read``
pair is not atomic, and two threads mid-operation can corrupt the
structure even under the GIL.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator
from contextlib import contextmanager


class SharedLatch:
    """A shared/exclusive (readers–writer) latch, reader-preference.

    ``shared()`` and ``exclusive()`` are the context-manager entry
    points; the ``acquire_*``/``release_*`` pairs exist for callers whose
    critical section does not nest lexically (e.g. a generator that must
    hold the latch across ``yield``\\ s and release it on ``close()``).

    Supported nestings: shared-inside-shared (any threads),
    exclusive-inside-exclusive and shared-inside-exclusive (same
    thread).  *Upgrading* — acquiring exclusively while the same thread
    already holds the latch shared — is not supported and deadlocks;
    release the shared hold first.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._turnstile = threading.Condition(self._mutex)
        self._active_readers = 0
        self._writer: threading.Thread | None = None
        self._writer_depth = 0

    # -- shared (read) side -------------------------------------------------

    def acquire_shared(self) -> None:
        with self._mutex:
            me = threading.current_thread()
            # Reader preference: only an *active* writer blocks a reader
            # (``_writer`` is installed strictly after the writer wins,
            # never while it waits), so shared-inside-shared can never
            # queue behind a waiting writer.  A thread that already
            # holds the latch exclusively may read under it (insert()
            # re-reading nodes it just wrote).
            while self._writer is not None and self._writer is not me:
                self._turnstile.wait()
            self._active_readers += 1

    def release_shared(self) -> None:
        with self._mutex:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._turnstile.notify_all()

    @contextmanager
    def shared(self) -> Iterator[None]:
        self.acquire_shared()
        try:
            yield
        finally:
            self.release_shared()

    # -- exclusive (write) side ---------------------------------------------

    def acquire_exclusive(self) -> None:
        with self._mutex:
            me = threading.current_thread()
            if self._writer is me:        # reentrant for one thread
                self._writer_depth += 1
                return
            # The writer is installed only once it actually holds the
            # latch alone; while waiting it blocks nobody (reader
            # preference — new readers overtake it, by design).
            while self._writer is not None or self._active_readers:
                self._turnstile.wait()
            self._writer = me
            self._writer_depth = 1

    def release_exclusive(self) -> None:
        with self._mutex:
            if self._writer is not threading.current_thread():
                raise RuntimeError("release_exclusive by a thread that "
                                   "does not hold the latch")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._turnstile.notify_all()

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        self.acquire_exclusive()
        try:
            yield
        finally:
            self.release_exclusive()

    # -- introspection ------------------------------------------------------

    def held_exclusively(self) -> bool:
        """True iff the *calling thread* holds the latch exclusively."""
        with self._mutex:
            return self._writer is threading.current_thread()
