"""Buffer pool: the main-memory window onto the page file.

Milestone 2's whole point is that the engine "does not require building the
DOM tree" and fetches "only those nodes into main memory that are currently
necessary".  The buffer pool is where that promise is enforced and
measured:

* a fixed number of frames caches pages;
* callers *pin* a page while using it and *unpin* it after (unpinned pages
  are eviction candidates, least-recently-used first);
* dirty pages are written back on eviction or flush;
* every logical access is counted, so tests and the cost model can assert
  I/O behaviour instead of guessing.

The pool also doubles as the tester's **memory meter**: the efficiency
tests of Section 4 ran engines under a 20 MB budget, and
:class:`~repro.grading.tester.Tester` sizes the pool (plus the operators'
materialisation budget) to emulate that.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import BufferPoolError
from repro.storage.latch import SharedLatch
from repro.storage.pager import Pager


@dataclass
class BufferStats:
    """Logical and physical access counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> "BufferStats":
        return BufferStats(self.hits, self.misses, self.evictions,
                           self.dirty_writebacks)


@dataclass
class _Frame:
    data: bytearray
    pin_count: int = 0
    dirty: bool = False
    #: Per-page latch: shared while a reader decodes the page, exclusive
    #: while a writer mutates its bytes.  The latch lives with the frame,
    #: which is safe because a page can only be evicted at pin count 0 —
    #: latch holders are always pinned.
    latch: SharedLatch = field(default_factory=SharedLatch)


class BufferPool:
    """LRU buffer pool over a :class:`~repro.storage.pager.Pager`.

    ``capacity`` is the number of frames.  ``on_evict`` callbacks let
    higher layers (the B+-tree node cache) invalidate derived state when a
    page leaves memory.

    The pool is thread-safe.  A single pool mutex guards the frame table,
    the LRU order and the counters; it is held only for the table
    manipulation itself, never while page *contents* are being read or
    written.  Content access is protected separately by per-page latches
    — see :meth:`latched` — so two sessions can decode different pages
    concurrently while a third faults in a fresh one.  Lock order is
    pool mutex → pager mutex; per-page latches are acquired with neither
    held and at most one at a time, so no cycle exists.
    """

    def __init__(self, pager: Pager, capacity: int = 64):
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        self.pager = pager
        self.capacity = capacity
        self.stats = BufferStats()
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        self._evict_callbacks: list[Callable[[int], None]] = []
        self._lock = threading.RLock()
        #: Pages dirtied by the active write transaction (None = no
        #: transaction).  While tracking, dirty frames are pinned in
        #: spirit: they are never evicted (no-steal) and never flushed,
        #: so the database file only sees them after the WAL has the
        #: commit record.
        self._tracked: set[int] | None = None
        #: Page frees issued during the transaction, executed at commit.
        self._deferred_frees: list[int] = []

    # -- configuration -----------------------------------------------------

    def on_evict(self, callback: Callable[[int], None]) -> None:
        """Register ``callback(page_id)`` to run whenever a page is evicted
        or flushed out of the pool."""
        with self._lock:
            self._evict_callbacks.append(callback)

    @property
    def memory_bytes(self) -> int:
        """Bytes of page data currently held (≤ capacity · page_size)."""
        with self._lock:
            return len(self._frames) * self.pager.page_size

    # -- core protocol -------------------------------------------------------

    def get_page(self, page_id: int, pin: bool = True) -> bytearray:
        """Return the page's frame data, faulting it in if needed.

        With ``pin=True`` (default) the caller must balance with
        :meth:`unpin`; prefer the :meth:`pinned` context manager.
        """
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
                self._frames.move_to_end(page_id)
            else:
                self.stats.misses += 1
                self._make_room()
                frame = _Frame(self.pager.read_page(page_id))
                self._frames[page_id] = frame
            if pin:
                frame.pin_count += 1
            return frame.data

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin; ``dirty=True`` marks the page for write-back."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count <= 0:
                raise BufferPoolError(f"unpin of page {page_id} that is "
                                      "not pinned")
            frame.pin_count -= 1
            if dirty:
                frame.dirty = True
                if self._tracked is not None:
                    self._tracked.add(page_id)

    @contextmanager
    def pinned(self, page_id: int) -> Iterator[bytearray]:
        """Pin a page for the duration of a ``with`` block (read-only)."""
        data = self.get_page(page_id)
        try:
            yield data
        finally:
            self.unpin(page_id)

    @contextmanager
    def latched(self, page_id: int,
                exclusive: bool = False) -> Iterator[bytearray]:
        """Pin a page *and* hold its per-page latch for a ``with`` block.

        Shared mode (default) admits any number of concurrent readers of
        the same page; ``exclusive=True`` is required while mutating the
        page bytes and excludes every other latch holder.  The pin is
        taken first (under the pool mutex) so the frame — and with it the
        latch — cannot be evicted while we wait; the latch itself is then
        acquired with no pool-level lock held, so a slow reader never
        stalls unrelated faults.  Exclusive latching marks the page dirty
        on exit.
        """
        data = self.get_page(page_id)
        with self._lock:
            frame = self._frames[page_id]
        latch = frame.latch
        try:
            with (latch.exclusive() if exclusive else latch.shared()):
                yield data
        finally:
            self.unpin(page_id, dirty=exclusive)

    def mark_dirty(self, page_id: int) -> None:
        """Mark a resident page dirty without changing its pin count."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise BufferPoolError(f"mark_dirty of non-resident page "
                                      f"{page_id}")
            frame.dirty = True
            if self._tracked is not None:
                self._tracked.add(page_id)

    def new_page(self) -> tuple[int, bytearray]:
        """Allocate a fresh page and return it pinned and dirty."""
        with self._lock:
            page_id = self.pager.allocate_page()
            self._make_room()
            frame = _Frame(bytearray(self.pager.page_size), pin_count=1,
                           dirty=True)
            self._frames[page_id] = frame
            if self._tracked is not None:
                self._tracked.add(page_id)
            return page_id, frame.data

    def free_page(self, page_id: int) -> None:
        """Drop a page from the pool and return it to the pager free list.

        Inside a write transaction the pager-level free (which writes the
        free-list next pointer straight into the file, destroying the
        page's committed content) is deferred until the transaction
        commits; an aborted transaction frees nothing.
        """
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None and frame.pin_count > 0:
                # Checked before touching the table: a refused free must
                # leave the pin holder's frame (and latch) fully intact.
                raise BufferPoolError(f"freeing pinned page {page_id}")
            self._frames.pop(page_id, None)
            self._notify_evict(page_id)
            if self._tracked is not None:
                self._tracked.discard(page_id)
                self._deferred_frees.append(page_id)
            else:
                self.pager.free_page(page_id)

    # -- eviction / flushing ---------------------------------------------------

    def _make_room(self) -> None:
        no_steal = self._tracked is not None
        while len(self._frames) >= self.capacity:
            victim_id = None
            for candidate_id, frame in self._frames.items():
                if frame.pin_count != 0:
                    continue
                if no_steal and frame.dirty:
                    # No-steal: a transaction's dirty page must not reach
                    # the file before its WAL records do.
                    continue
                victim_id = candidate_id
                break
            if victim_id is None:
                if no_steal:
                    raise BufferPoolError(
                        f"write transaction dirtied more pages than the "
                        f"pool holds ({self.capacity} frames); raise "
                        f"buffer_capacity or split the update")
                raise BufferPoolError(
                    f"all {self.capacity} frames are pinned; cannot evict")
            self._evict(victim_id)

    def _evict(self, page_id: int) -> None:
        frame = self._frames.pop(page_id)
        if frame.dirty:
            self.pager.write_page(page_id, bytes(frame.data))
            self.stats.dirty_writebacks += 1
        self.stats.evictions += 1
        self._notify_evict(page_id)

    def _notify_evict(self, page_id: int) -> None:
        for callback in self._evict_callbacks:
            callback(page_id)

    def flush(self) -> None:
        """Write back every dirty frame (pages stay resident)."""
        with self._lock:
            if self._tracked is not None:
                raise BufferPoolError(
                    "flush() during a write transaction would leak "
                    "uncommitted pages to the file; commit or abort first")
            for page_id, frame in self._frames.items():
                if frame.dirty:
                    self.pager.write_page(page_id, bytes(frame.data))
                    self.stats.dirty_writebacks += 1
                    frame.dirty = False

    def flush_and_clear(self) -> None:
        """Write back everything and empty the pool (e.g. before closing)."""
        with self._lock:
            self.flush()
            for page_id in list(self._frames):
                self._notify_evict(page_id)
            self._frames.clear()

    # -- write transactions ------------------------------------------------------

    def begin_tracking(self) -> None:
        """Start tracking dirtied pages for a write transaction.

        Flushes first, so the tracked set is exactly the transaction's
        own writes; from here until commit/abort, dirty frames are
        neither flushed nor evicted (no-steal) and page frees are
        deferred.  Only one transaction may track at a time — callers
        serialize (see :meth:`repro.storage.db.Database.transaction`).
        """
        with self._lock:
            if self._tracked is not None:
                raise BufferPoolError("nested write transactions are not "
                                      "supported")
            self.flush()
            self._tracked = set()
            self._deferred_frees = []

    def transaction_pages(self) -> dict[int, bytes]:
        """Snapshot ``{page_id: content}`` of the transaction's dirty pages."""
        with self._lock:
            if self._tracked is None:
                raise BufferPoolError("no write transaction is active")
            return {page_id: bytes(self._frames[page_id].data)
                    for page_id in sorted(self._tracked)}

    def end_tracking_commit(self) -> None:
        """Write the transaction's pages back and run deferred frees.

        Call only after the WAL holds the commit record: from the log's
        point of view the transaction is already durable, this merely
        moves the images into the main file (redo would produce the same
        bytes).
        """
        with self._lock:
            if self._tracked is None:
                raise BufferPoolError("no write transaction is active")
            try:
                for page_id in sorted(self._tracked):
                    frame = self._frames.get(page_id)
                    if frame is not None and frame.dirty:
                        self.pager.write_page(page_id, bytes(frame.data))
                        self.stats.dirty_writebacks += 1
                        frame.dirty = False
                frees, self._deferred_frees = self._deferred_frees, []
                for page_id in frees:
                    self.pager.free_page(page_id)
            finally:
                # The WAL already holds the commit: even if a write-back
                # or free failed, the transaction is over — frames left
                # dirty reach the file via a later flush or via replay,
                # and tracking must not linger (an orphaned tracking
                # state would block every later transaction).
                self._tracked = None
                self._deferred_frees = []

    def end_tracking_abort(self) -> None:
        """Throw the transaction's pages away without touching the file.

        No-steal guarantees none of them reached disk, so dropping the
        frames restores the pre-transaction image; deferred frees are
        forgotten (the pages were only *going* to be freed).  Callers
        must treat every in-memory structure over the dropped pages
        (B+-tree caches, meta fields) as stale — evict callbacks fire
        for each dropped page.
        """
        with self._lock:
            if self._tracked is None:
                raise BufferPoolError("no write transaction is active")
            # Validate before touching any state: refusing the abort
            # must leave the transaction fully tracked, or the dirty
            # uncommitted frames would become invisible to the no-steal
            # machinery and a later flush could write them to the file.
            for page_id in self._tracked:
                frame = self._frames.get(page_id)
                if frame is not None and frame.pin_count > 0:
                    raise BufferPoolError(
                        f"aborting with page {page_id} still pinned")
            tracked, self._tracked = self._tracked, None
            self._deferred_frees = []
            for page_id in tracked:
                self._frames.pop(page_id, None)
                self._notify_evict(page_id)

    @property
    def in_transaction(self) -> bool:
        with self._lock:
            return self._tracked is not None

    # -- introspection -----------------------------------------------------------

    def resident_pages(self) -> list[int]:
        """Page ids currently cached, in LRU-to-MRU order."""
        with self._lock:
            return list(self._frames)

    def pin_count(self, page_id: int) -> int:
        with self._lock:
            frame = self._frames.get(page_id)
            return frame.pin_count if frame is not None else 0
