"""Buffer pool: the main-memory window onto the page file.

Milestone 2's whole point is that the engine "does not require building the
DOM tree" and fetches "only those nodes into main memory that are currently
necessary".  The buffer pool is where that promise is enforced and
measured:

* a fixed number of frames caches pages;
* callers *pin* a page while using it and *unpin* it after (unpinned pages
  are eviction candidates, least-recently-used first);
* dirty pages are written back on eviction or flush;
* every logical access is counted, so tests and the cost model can assert
  I/O behaviour instead of guessing.

The pool also doubles as the tester's **memory meter**: the efficiency
tests of Section 4 ran engines under a 20 MB budget, and
:class:`~repro.grading.tester.Tester` sizes the pool (plus the operators'
materialisation budget) to emulate that.

Multi-version concurrency control
---------------------------------

On top of the frame table the pool keeps an in-memory *version store*:
before a write transaction mutates a page for the first time, the
committed image is captured; at commit the captured images are published
into per-page version chains tagged with the commit's sequence number
(the *commit LSN*).  A reader *pins a snapshot* — the commit LSN at pin
time — and binds it to its thread; every page read made while bound
resolves against the chains, so the reader sees exactly the state as of
its pin, never blocking on (or being blocked by) writers.  Old versions
are reclaimed as soon as no pinned snapshot can still need them, and
page frees are deferred until no pinned snapshot can still *reach* the
page (the pager free destroys the page's bytes).  The full lifecycle is
documented in ``docs/mvcc.md``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.errors import BufferPoolError
from repro.storage.latch import SharedLatch
from repro.storage.pager import Pager


@dataclass
class BufferStats:
    """Logical and physical access counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def snapshot(self) -> "BufferStats":
        return BufferStats(self.hits, self.misses, self.evictions,
                           self.dirty_writebacks)


@dataclass
class _Frame:
    data: bytearray
    pin_count: int = 0
    dirty: bool = False
    #: Bumped on every dirtying event.  The group committer compares the
    #: value it captured at commit time against the current one to decide
    #: whether the frame may be marked clean after the durable write-back
    #: (a mismatch means someone re-dirtied the frame in between).
    mod_count: int = 0
    #: Per-page latch: shared while a reader decodes the page, exclusive
    #: while a writer mutates its bytes.  The latch lives with the frame,
    #: which is safe because a page can only be evicted at pin count 0 —
    #: latch holders are always pinned.
    latch: SharedLatch = field(default_factory=SharedLatch)


class Snapshot:
    """A pinned read view: the database as of commit ``lsn``.

    Bind it to the current thread with :meth:`BufferPool.reading`; while
    bound, every page access through the pool resolves against the
    version store.  Pages whose committed-at-``lsn`` image differs from
    the live frame are served as private copies (``_pages``); pins taken
    on those copies are *virtual* — tracked here, never on the real
    frame (``_pins``).  Release via :meth:`BufferPool.release_snapshot`.
    """

    __slots__ = ("pool", "lsn", "_pages", "_pins", "released")

    def __init__(self, pool: "BufferPool", lsn: int):
        self.pool = pool
        self.lsn = lsn
        self._pages: dict[int, bytearray] = {}
        self._pins: dict[int, int] = {}
        self.released = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Snapshot(lsn={self.lsn}, pages={len(self._pages)})"


class BufferPool:
    """LRU buffer pool over a :class:`~repro.storage.pager.Pager`.

    ``capacity`` is the number of frames.  ``on_evict`` callbacks let
    higher layers (the B+-tree node cache) invalidate derived state when a
    page leaves memory.

    The pool is thread-safe.  A single pool mutex guards the frame table,
    the LRU order, the version store and the counters; it is held only
    for the table manipulation itself, never while page *contents* are
    being read or written.  Content access is protected separately by
    per-page latches — see :meth:`latched` — so two sessions can decode
    different pages concurrently while a third faults in a fresh one.
    Lock order is pool mutex → pager mutex; per-page latches are acquired
    with neither held and at most one at a time, so no cycle exists.
    """

    def __init__(self, pager: Pager, capacity: int = 64):
        if capacity < 1:
            raise BufferPoolError("buffer pool needs at least one frame")
        self.pager = pager
        self.capacity = capacity
        # guarded by: self._lock
        self.stats = BufferStats()
        # guarded by: self._lock
        self._frames: OrderedDict[int, _Frame] = OrderedDict()
        # guarded by: self._lock
        self._evict_callbacks: list[Callable[[int], None]] = []
        self._lock = threading.RLock()
        #: Pages dirtied by the active write transaction (None = no
        #: transaction).  While tracking, dirty frames are pinned in
        #: spirit: they are never evicted (no-steal) and never flushed,
        #: so the database file only sees them after the WAL has the
        #: commit record.
        # guarded by: self._lock
        self._tracked: set[int] | None = None
        #: Thread that owns the active write transaction.  Only events
        #: from this thread join the tracked set — a concurrent reader
        #: spilling scratch heap pages must not contaminate the
        #: transaction's write set (its pages would be logged, held back,
        #: or dropped on abort).
        # guarded by: self._lock
        self._txn_thread: int | None = None
        #: Committed image of every page the transaction touched, taken
        #: *before* the first mutation (``None`` = the page was born in
        #: this transaction and has no snapshot-visible past).
        # guarded by: self._lock
        self._txn_preimages: dict[int, bytes | None] = {}
        #: Page frees issued during the transaction, executed once the
        #: commit is durable *and* no snapshot can still reach the page.
        # guarded by: self._lock
        self._deferred_frees: list[int] = []
        # -- MVCC state ----------------------------------------------------
        #: Monotonic commit sequence ("commit LSN").  Unlike WAL LSNs it
        #: never resets at a checkpoint, so snapshot ordering survives
        #: log truncation.
        # guarded by: self._lock
        self._committed_lsn = 0
        #: Highest commit LSN whose WAL records are known fsynced.
        # guarded by: self._lock
        self._durable_lsn = 0
        #: page id → ascending ``(superseded_at, image)``: ``image`` is
        #: the page's content *before* commit ``superseded_at`` replaced
        #: it, i.e. what every snapshot pinned below ``superseded_at``
        #: must read.
        # guarded by: self._lock
        self._versions: dict[int, list[tuple[int, bytes]]] = {}
        #: commit LSN → number of snapshots pinned at it.
        # guarded by: self._lock
        self._snapshots: dict[int, int] = {}
        #: page id → latest commit LSN whose durable write-back is still
        #: pending.  Held frames are excluded from eviction and flush:
        #: their bytes must not reach the file before the covering fsync
        #: (crash before it would leave redo-less new content behind a
        #: discarded WAL tail).
        # guarded by: self._lock
        self._held: dict[int, int] = {}
        #: ``(free_gate, durability_gate, page_id)``: execute the pager
        #: free once ``durable_lsn >= durability_gate`` and no snapshot
        #: is pinned below ``free_gate``.
        # guarded by: self._lock
        self._pending_frees: list[tuple[int, int, int]] = []
        self._local = threading.local()
        # Lifetime counters for the stats surface.
        # guarded by: self._lock
        self.snapshots_opened = 0
        # guarded by: self._lock
        self.versions_installed = 0
        # guarded by: self._lock
        self.versioned_reads = 0

    # -- configuration -----------------------------------------------------

    def on_evict(self, callback: Callable[[int], None]) -> None:
        """Register ``callback(page_id)`` to run whenever a page is evicted
        or flushed out of the pool."""
        with self._lock:
            self._evict_callbacks.append(callback)

    @property
    def memory_bytes(self) -> int:
        """Bytes of page data currently held (≤ capacity · page_size)."""
        with self._lock:
            return len(self._frames) * self.pager.page_size

    # -- snapshots ---------------------------------------------------------

    def pin_snapshot(self, observe: Callable[[], object] | None = None):
        """Pin a read snapshot at the current commit LSN.

        ``observe``, if given, runs inside the same critical section that
        reads the commit LSN and its result is returned alongside the
        snapshot — this is how the catalog layer pairs a snapshot with
        the document version counters it saw, atomically with respect to
        commit publication (which bumps both under this lock).
        """
        with self._lock:
            snapshot = Snapshot(self, self._committed_lsn)
            self._snapshots[snapshot.lsn] = (
                self._snapshots.get(snapshot.lsn, 0) + 1)
            self.snapshots_opened += 1
            if observe is None:
                return snapshot
            return snapshot, observe()

    def release_snapshot(self, snapshot: Snapshot) -> None:
        """Release a pinned snapshot (idempotent) and reclaim versions."""
        with self._lock:
            if snapshot.released:
                return
            snapshot.released = True
            count = self._snapshots.get(snapshot.lsn, 0) - 1
            if count <= 0:
                self._snapshots.pop(snapshot.lsn, None)
            else:
                self._snapshots[snapshot.lsn] = count
            snapshot._pages.clear()
            snapshot._pins.clear()
            self._vacuum_locked()

    @contextmanager
    def reading(self, snapshot: Snapshot) -> Iterator[Snapshot]:
        """Bind ``snapshot`` to the current thread for a ``with`` block.

        While bound, every read through the pool resolves against the
        version store at ``snapshot.lsn``.  Binding is thread-local and
        does not nest (a bound thread must not open a write transaction).
        """
        if getattr(self._local, "snapshot", None) is not None:
            raise BufferPoolError("thread already has a bound snapshot")
        self._local.snapshot = snapshot
        try:
            yield snapshot
        finally:
            self._local.snapshot = None

    @contextmanager
    def unbound(self) -> Iterator[None]:
        """Suspend the thread's snapshot binding for a ``with`` block.

        Escape hatch for a bound reader's *own* side writes — spill heaps
        and their catalog entries — which must read and write live state
        (the reader's freshly created spill entry is invisible through a
        versioned catalog leaf).
        """
        previous = getattr(self._local, "snapshot", None)
        self._local.snapshot = None
        try:
            yield
        finally:
            self._local.snapshot = previous

    @property
    def bound_snapshot(self) -> Snapshot | None:
        """The snapshot bound to the calling thread, if any."""
        return getattr(self._local, "snapshot", None)

    def min_pinned_snapshot(self) -> int | None:
        with self._lock:
            return min(self._snapshots) if self._snapshots else None

    def reads_versioned(self, page_id: int) -> bool:
        """Does the calling thread's bound snapshot see a non-live image
        of this page?  (Fast ``False`` when no snapshot is bound.)"""
        snapshot = getattr(self._local, "snapshot", None)
        if snapshot is None:
            return False
        with self._lock:
            if page_id in snapshot._pages:
                return True
            return self._version_image_locked(page_id, snapshot.lsn) is not None

    def _version_image_locked(self, page_id: int, lsn: int) -> bytes | None:
        """The image a snapshot at ``lsn`` must read, or None for live."""
        chain = self._versions.get(page_id)
        if chain:
            for superseded_at, image in chain:
                if superseded_at > lsn:
                    return image
        if self._txn_preimages:
            image = self._txn_preimages.get(page_id, _NOT_CAPTURED)
            if image is _NOT_CAPTURED:
                return None
            if image is None:
                raise BufferPoolError(
                    f"snapshot at lsn {lsn} read page {page_id}, which "
                    f"only exists inside the in-flight transaction")
            return image
        return None

    def _snapshot_read(self, snapshot: Snapshot, page_id: int,
                       pin: bool) -> bytearray | None:
        """Serve a bound read from the version store, or None for live."""
        with self._lock:
            data = snapshot._pages.get(page_id)
            if data is None:
                image = self._version_image_locked(page_id, snapshot.lsn)
                if image is None:
                    return None
                data = bytearray(image)
                snapshot._pages[page_id] = data
                self.versioned_reads += 1
            self.stats.hits += 1
            if pin:
                snapshot._pins[page_id] = snapshot._pins.get(page_id, 0) + 1
            return data

    # -- core protocol -------------------------------------------------------

    def get_page(self, page_id: int, pin: bool = True) -> bytearray:
        """Return the page's frame data, faulting it in if needed.

        With ``pin=True`` (default) the caller must balance with
        :meth:`unpin`; prefer the :meth:`pinned` context manager.  Under
        a bound snapshot, pages superseded since the snapshot's pin are
        served as private read-only copies instead of the live frame.
        """
        snapshot = getattr(self._local, "snapshot", None)
        if snapshot is not None:
            data = self._snapshot_read(snapshot, page_id, pin)
            if data is not None:
                return data
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self.stats.hits += 1
                self._frames.move_to_end(page_id)
            else:
                self.stats.misses += 1
                self._make_room_locked()
                frame = _Frame(self.pager.read_page(page_id))
                self._frames[page_id] = frame
            if pin:
                frame.pin_count += 1
            return frame.data

    def unpin(self, page_id: int, dirty: bool = False) -> None:
        """Release one pin; ``dirty=True`` marks the page for write-back."""
        snapshot = getattr(self._local, "snapshot", None)
        if snapshot is not None and snapshot._pins.get(page_id, 0) > 0:
            if dirty:
                raise BufferPoolError(
                    f"snapshot copy of page {page_id} is read-only")
            snapshot._pins[page_id] -= 1
            return
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None or frame.pin_count <= 0:
                raise BufferPoolError(f"unpin of page {page_id} that is "
                                      "not pinned")
            frame.pin_count -= 1
            if dirty:
                frame.dirty = True
                frame.mod_count += 1
                if self._tracking_here_locked():
                    # Pages first dirtied through this path are expected
                    # to be transaction-born (heap appends, overflow
                    # chains) and therefore already captured as None by
                    # new_page; the fallback capture keeps an unexpected
                    # late-dirtying path from leaking uncommitted bytes
                    # into the file via eviction.
                    self._capture_preimage_locked(page_id, frame)
                    self._tracked.add(page_id)

    @contextmanager
    def pinned(self, page_id: int) -> Iterator[bytearray]:
        """Pin a page for the duration of a ``with`` block (read-only)."""
        data = self.get_page(page_id)
        try:
            yield data
        finally:
            self.unpin(page_id)

    @contextmanager
    def latched(self, page_id: int,
                exclusive: bool = False) -> Iterator[bytearray]:
        """Pin a page *and* hold its per-page latch for a ``with`` block.

        Shared mode (default) admits any number of concurrent readers of
        the same page; ``exclusive=True`` is required while mutating the
        page bytes and excludes every other latch holder.  The pin is
        taken first (under the pool mutex) so the frame — and with it the
        latch — cannot be evicted while we wait; the latch itself is then
        acquired with no pool-level lock held, so a slow reader never
        stalls unrelated faults.  Exclusive latching marks the page dirty
        on exit.

        Under a bound snapshot (readers only — exclusive latching while
        bound is an error), a versioned page is served as its private
        snapshot copy without touching the frame or its latch; a live
        page is re-validated against the version store *after* the shared
        latch is held, closing the race with a writer capturing the
        pre-image and mutating between resolution and latch acquisition.
        """
        snapshot = getattr(self._local, "snapshot", None)
        if snapshot is not None:
            if exclusive:
                raise BufferPoolError(
                    "exclusive page latch under a bound snapshot — "
                    "snapshot readers are read-only")
            data = self._snapshot_read(snapshot, page_id, pin=False)
            if data is not None:
                yield data
                return
            # Live so far: pin the real frame, take the shared latch,
            # then re-check (a commit may have versioned the page in
            # between; the latch guarantees no mutation mid-decode).
            with self.unbound():
                data = self.get_page(page_id)
            with self._lock:
                frame = self._frames[page_id]
            try:
                with frame.latch.shared():
                    copy = self._snapshot_read(snapshot, page_id, pin=False)
                    yield copy if copy is not None else data
            finally:
                with self.unbound():
                    self.unpin(page_id)
            return
        data = self.get_page(page_id)
        with self._lock:
            frame = self._frames[page_id]
        latch = frame.latch
        try:
            with (latch.exclusive() if exclusive else latch.shared()):
                if exclusive:
                    # Capture the committed image now, with the latch
                    # held (bytes are stable) and before any mutation —
                    # unpin(dirty=True) at exit would be too late, the
                    # latch is released first.
                    with self._lock:
                        if self._tracking_here_locked():
                            self._capture_preimage_locked(page_id, frame)
                            self._tracked.add(page_id)
                yield data
        finally:
            self.unpin(page_id, dirty=exclusive)

    def mark_dirty(self, page_id: int) -> None:
        """Mark a resident page dirty without changing its pin count."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is None:
                raise BufferPoolError(f"mark_dirty of non-resident page "
                                      f"{page_id}")
            frame.dirty = True
            frame.mod_count += 1
            if self._tracking_here_locked():
                self._capture_preimage_locked(page_id, frame)
                self._tracked.add(page_id)

    def new_page(self) -> tuple[int, bytearray]:
        """Allocate a fresh page and return it pinned and dirty."""
        with self._lock:
            page_id = self.pager.allocate_page()
            self._make_room_locked()
            frame = _Frame(bytearray(self.pager.page_size), pin_count=1,
                           dirty=True, mod_count=1)
            self._frames[page_id] = frame
            # A reused page id must not resolve to its previous life.
            self._versions.pop(page_id, None)
            if self._tracking_here_locked():
                self._tracked.add(page_id)
                self._txn_preimages.setdefault(page_id, None)
            return page_id, frame.data

    def free_page(self, page_id: int) -> None:
        """Drop a page from the pool and return it to the pager free list.

        Inside a write transaction the pager-level free (which writes the
        free-list next pointer straight into the file, destroying the
        page's committed content) is deferred until the transaction
        commits durably *and* no pinned snapshot can still reach the
        page; an aborted transaction frees nothing.  Outside a
        transaction the free is still deferred while snapshots are
        pinned, for the same reachability reason.
        """
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None and frame.pin_count > 0:
                # Checked before touching the table: a refused free must
                # leave the pin holder's frame (and latch) fully intact.
                raise BufferPoolError(f"freeing pinned page {page_id}")
            if self._tracking_here_locked():
                self._capture_preimage_locked(page_id, frame)
                self._frames.pop(page_id, None)
                self._notify_evict_locked(page_id)
                self._tracked.discard(page_id)
                self._deferred_frees.append(page_id)
                return
            self._frames.pop(page_id, None)
            self._notify_evict_locked(page_id)
            self._held.pop(page_id, None)
            if self._snapshots:
                # Non-transactional free with live snapshots: any of
                # them may still reach this page, so it only becomes
                # reusable once every one of them is gone.
                self._pending_frees.append(
                    (self._committed_lsn + 1, 0, page_id))
            else:
                self._versions.pop(page_id, None)
                self.pager.free_page(page_id)

    def _tracking_here_locked(self) -> bool:
        """Is a write transaction active *and* owned by this thread?"""
        return (self._tracked is not None
                and self._txn_thread == threading.get_ident())

    def _capture_preimage_locked(self, page_id: int,
                                 frame: _Frame | None) -> None:
        """Record the page's committed image, once per transaction."""
        if page_id in self._txn_preimages:
            return
        if frame is None:
            frame = self._frames.get(page_id)
        if frame is not None:
            self._txn_preimages[page_id] = bytes(frame.data)
        else:
            self._txn_preimages[page_id] = bytes(
                self.pager.read_page(page_id))

    # -- eviction / flushing ---------------------------------------------------

    def _make_room_locked(self) -> None:
        while len(self._frames) >= self.capacity:
            victim_id = None
            for candidate_id, frame in self._frames.items():
                if frame.pin_count != 0:
                    continue
                if candidate_id in self._held:
                    # Held back: committed but the covering group fsync
                    # has not confirmed yet — the file must not see
                    # these bytes before the WAL does.
                    continue
                if (self._tracked is not None
                        and candidate_id in self._tracked):
                    # No-steal: a transaction's dirty page must not reach
                    # the file before its WAL records do.
                    continue
                victim_id = candidate_id
                break
            if victim_id is None:
                if self._tracked is not None or self._held:
                    raise BufferPoolError(
                        f"write transactions dirtied more pages than the "
                        f"pool holds ({self.capacity} frames); raise "
                        f"buffer_capacity or split the update")
                raise BufferPoolError(
                    f"all {self.capacity} frames are pinned; cannot evict")
            self._evict_locked(victim_id)

    def _evict_locked(self, page_id: int) -> None:
        frame = self._frames.pop(page_id)
        if frame.dirty:
            self.pager.write_page(page_id, bytes(frame.data))
            self.stats.dirty_writebacks += 1
        self.stats.evictions += 1
        self._notify_evict_locked(page_id)

    def _notify_evict_locked(self, page_id: int) -> None:
        for callback in self._evict_callbacks:
            callback(page_id)

    def flush(self) -> None:
        """Write back every dirty frame (pages stay resident).

        Held-back frames — committed but awaiting their group fsync —
        are skipped: their images reach the file through the committer's
        durable write-back instead.  :meth:`Database.checkpoint` drains
        the committer first, so a checkpoint-time flush covers everything.
        """
        with self._lock:
            if self._tracked is not None:
                raise BufferPoolError(
                    "flush() during a write transaction would leak "
                    "uncommitted pages to the file; commit or abort first")
            for page_id, frame in self._frames.items():
                if frame.dirty and page_id not in self._held:
                    self.pager.write_page(page_id, bytes(frame.data))
                    self.stats.dirty_writebacks += 1
                    frame.dirty = False

    def flush_and_clear(self) -> None:
        """Write back everything and empty the pool (e.g. before closing)."""
        with self._lock:
            if self._held:
                raise BufferPoolError(
                    "flush_and_clear with commits awaiting their group "
                    "fsync; drain the committer first")
            self.flush()
            for page_id in list(self._frames):
                self._notify_evict_locked(page_id)
            self._frames.clear()

    # -- write transactions ------------------------------------------------------

    def begin_tracking(self) -> None:
        """Start tracking dirtied pages for a write transaction.

        Flushes first, so the tracked set is exactly the transaction's
        own writes; from here until commit/abort, the transaction's dirty
        frames are neither flushed nor evicted (no-steal) and its page
        frees are deferred.  Only one transaction may track at a time —
        callers serialize (see :meth:`repro.storage.db.Database.transaction`).
        Tracking is *owned by the calling thread*: dirtying events from
        other threads (a concurrent reader spilling scratch pages) do
        not join the write set.
        """
        with self._lock:
            if self._tracked is not None:
                raise BufferPoolError("nested write transactions are not "
                                      "supported")
            if getattr(self._local, "snapshot", None) is not None:
                raise BufferPoolError("cannot start a write transaction "
                                      "on a snapshot-bound thread")
            self.flush()
            self._tracked = set()
            self._txn_thread = threading.get_ident()
            self._txn_preimages = {}
            self._deferred_frees = []

    def transaction_pages(self) -> dict[int, bytes]:
        """Snapshot ``{page_id: content}`` of the transaction's dirty pages."""
        with self._lock:
            if self._tracked is None:
                raise BufferPoolError("no write transaction is active")
            return {page_id: bytes(self._frames[page_id].data)
                    for page_id in sorted(self._tracked)}

    def publish_commit(self, on_publish: list[Callable[[], None]] | None = None,
                       ) -> tuple[int, dict[int, int]]:
        """Make the transaction's writes visible and end tracking.

        Call with the commit record appended to the WAL (durability may
        still be pending — the frames stay *held back* from eviction and
        flush until :meth:`complete_commit` confirms the fsync).  Inside
        one critical section this assigns the commit LSN, installs the
        captured pre-images into the version chains (new snapshots see
        the new state, existing snapshots keep resolving the old one),
        schedules deferred frees, and runs the ``on_publish`` callbacks —
        the hook catalog layers use to bump their version counters
        atomically with the LSN.

        Returns ``(commit_lsn, {page_id: mod_count})`` — the token
        :meth:`complete_commit` needs.
        """
        with self._lock:
            if self._tracked is None:
                raise BufferPoolError("no write transaction is active")
            lsn = self._committed_lsn + 1
            self._committed_lsn = lsn
            mods: dict[int, int] = {}
            for page_id in self._tracked:
                image = self._txn_preimages.get(page_id)
                if image is not None:
                    self._versions.setdefault(page_id, []).append(
                        (lsn, image))
                    self.versions_installed += 1
                frame = self._frames.get(page_id)
                if frame is not None:
                    self._held[page_id] = lsn
                    mods[page_id] = frame.mod_count
            for page_id in self._deferred_frees:
                image = self._txn_preimages.get(page_id)
                if image is not None:
                    self._versions.setdefault(page_id, []).append(
                        (lsn, image))
                    self.versions_installed += 1
                self._pending_frees.append((lsn, lsn, page_id))
            self._tracked = None
            self._txn_thread = None
            self._txn_preimages = {}
            self._deferred_frees = []
            for callback in (on_publish or []):
                callback()
            self._vacuum_locked()
            return lsn, mods

    def complete_commit(self, lsn: int, images: dict[int, bytes],
                        mods: dict[int, int]) -> None:
        """Durable write-back after the commit's covering fsync.

        ``images`` are the page images that went into the WAL (*not* the
        current frames — a later transaction may have re-dirtied them);
        writing them to the file in commit order reproduces exactly what
        redo would.  A frame is only marked clean if its mod counter
        still matches the commit-time capture.
        """
        for page_id in sorted(mods):
            self.pager.write_page(page_id, images[page_id])
        with self._lock:
            self.stats.dirty_writebacks += len(mods)
            self._durable_lsn = max(self._durable_lsn, lsn)
            for page_id, mod_count in mods.items():
                if self._held.get(page_id) == lsn:
                    del self._held[page_id]
                frame = self._frames.get(page_id)
                if (frame is not None and frame.mod_count == mod_count
                        and page_id not in self._held
                        and (self._tracked is None
                             or page_id not in self._tracked)):
                    frame.dirty = False
            self._vacuum_locked()

    def end_tracking_abort(self) -> None:
        """Throw the transaction's writes away without touching the file.

        No-steal guarantees none of them reached disk, so restoring the
        captured pre-images (or dropping transaction-born frames) brings
        back the pre-transaction state; deferred frees are forgotten (the
        pages were only *going* to be freed).  Callers must treat every
        in-memory structure over the dropped pages (B+-tree caches, meta
        fields) as stale — evict callbacks fire for each one.
        """
        with self._lock:
            if self._tracked is None:
                raise BufferPoolError("no write transaction is active")
            # Validate before touching any state: refusing the abort
            # must leave the transaction fully tracked, or the dirty
            # uncommitted frames would become invisible to the no-steal
            # machinery and a later flush could write them to the file.
            for page_id in self._tracked:
                frame = self._frames.get(page_id)
                if frame is not None and frame.pin_count > 0:
                    raise BufferPoolError(
                        f"aborting with page {page_id} still pinned")
            tracked, self._tracked = self._tracked, None
            preimages, self._txn_preimages = self._txn_preimages, {}
            self._txn_thread = None
            self._deferred_frees = []
            for page_id in tracked:
                image = preimages.get(page_id)
                frame = self._frames.get(page_id)
                if (image is not None and frame is not None
                        and page_id in self._held):
                    # The frame carries a previous commit whose durable
                    # write-back is still pending; dropping it would lose
                    # that committed image, so restore the bytes instead.
                    frame.data[:] = image
                    frame.mod_count += 1
                else:
                    self._frames.pop(page_id, None)
                self._notify_evict_locked(page_id)

    @property
    def in_transaction(self) -> bool:
        with self._lock:
            return self._tracked is not None

    # -- version reclamation -----------------------------------------------------

    def _vacuum_locked(self) -> None:
        """Drop versions no snapshot needs; run frees nothing can reach."""
        min_pinned = min(self._snapshots) if self._snapshots else None
        if self._versions:
            dead_chains = []
            for page_id, chain in self._versions.items():
                if min_pinned is None:
                    chain.clear()
                else:
                    while chain and chain[0][0] <= min_pinned:
                        chain.pop(0)
                if not chain:
                    dead_chains.append(page_id)
            for page_id in dead_chains:
                del self._versions[page_id]
        if self._pending_frees:
            remaining = []
            for free_gate, durability_gate, page_id in self._pending_frees:
                if (self._durable_lsn >= durability_gate
                        and (min_pinned is None or min_pinned >= free_gate)):
                    self._versions.pop(page_id, None)
                    self.pager.free_page(page_id)
                else:
                    remaining.append((free_gate, durability_gate, page_id))
            self._pending_frees = remaining

    # -- introspection -----------------------------------------------------------

    def resident_pages(self) -> list[int]:
        """Page ids currently cached, in LRU-to-MRU order."""
        with self._lock:
            return list(self._frames)

    def pin_count(self, page_id: int) -> int:
        with self._lock:
            frame = self._frames.get(page_id)
            return frame.pin_count if frame is not None else 0

    def committed_lsn(self) -> int:
        with self._lock:
            return self._committed_lsn

    def mvcc_stats(self) -> dict[str, int]:
        """Current MVCC gauges and lifetime counters."""
        with self._lock:
            return {
                "snapshots_pinned": sum(self._snapshots.values()),
                "snapshots_opened": self.snapshots_opened,
                "versions_retained": sum(len(chain) for chain
                                         in self._versions.values()),
                "versions_installed": self.versions_installed,
                "versioned_reads": self.versioned_reads,
                "commit_lsn": self._committed_lsn,
                "durable_lsn": self._durable_lsn,
                "held_pages": len(self._held),
                "pending_frees": len(self._pending_frees),
            }


#: Sentinel distinguishing "page never captured" from "page born in the
#: transaction" (stored as None) in the pre-image map.
_NOT_CAPTURED = object()
