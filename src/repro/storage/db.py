"""Database facade: one file, a buffer pool, and a persistent catalog.

The catalog is itself a B+-tree mapping object names to a small JSON
payload (object kind, anchor page id, arbitrary metadata).  Its meta-page
id lives in the pager header, so a database file is fully self-describing:

>>> with Database.create("/tmp/example.db") as db:        # doctest: +SKIP
...     tree = db.create_btree("xasr:doc1")
...     tree.insert(b"k", b"v")
"""

from __future__ import annotations

import json
import threading
from typing import Any

from repro.errors import CatalogError
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.overflow import OverflowStore
from repro.storage.pager import NO_PAGE, PAGE_SIZE, Pager
from repro.storage.record import encode_key

_KIND_BTREE = "btree"
_KIND_HEAP = "heap"
_KIND_META = "meta"


class Database:
    """A single-file XML database.

    Owns the pager, the buffer pool, the overflow store and the catalog.
    Named objects:

    * B+-trees (tables and indexes),
    * heap files (materialised intermediates, statistics runs),
    * bare metadata entries (per-document statistics, load info).

    Catalog operations are thread-safe: a database-level mutex makes each
    name→object operation (existence check + create, lookup + open,
    lookup + drop) atomic, so two sessions spilling intermediates — or a
    ``load`` racing a reader opening the same document — cannot interleave
    inside the catalog.  Objects handed out (trees, heaps) carry their
    own latches; page access below is protected by the buffer pool.
    """

    def __init__(self, path: str, create: bool = False,
                 buffer_capacity: int = 256, page_size: int = PAGE_SIZE):
        self.pager = Pager(path, page_size=page_size, create=create)
        self.buffer_pool = BufferPool(self.pager, capacity=buffer_capacity)
        self.overflow = OverflowStore(self.buffer_pool)
        self._lock = threading.RLock()
        if self.pager.catalog_root == NO_PAGE:
            self._catalog = BTree.create(self.buffer_pool)
            self.pager.set_catalog_root(self._catalog.meta_page_id)
        else:
            self._catalog = BTree(self.buffer_pool, self.pager.catalog_root)

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, path: str, buffer_capacity: int = 256,
               page_size: int = PAGE_SIZE) -> "Database":
        return cls(path, create=True, buffer_capacity=buffer_capacity,
                   page_size=page_size)

    @classmethod
    def open(cls, path: str, buffer_capacity: int = 256) -> "Database":
        return cls(path, create=False, buffer_capacity=buffer_capacity)

    def close(self) -> None:
        self.buffer_pool.flush_and_clear()
        self.pager.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- catalog ------------------------------------------------------------

    def _catalog_get(self, name: str) -> dict[str, Any] | None:
        raw = self._catalog.search(encode_key((name,)))
        if raw is None:
            return None
        return json.loads(raw.decode("utf-8"))

    def _catalog_put(self, name: str, entry: dict[str, Any],
                     replace: bool = False) -> None:
        raw = json.dumps(entry, sort_keys=True).encode("utf-8")
        self._catalog.insert(encode_key((name,)), raw, replace=replace)

    def _catalog_delete(self, name: str) -> None:
        # The B+-tree has no structural delete (the paper's system never
        # needed one); a tombstone entry keeps the catalog consistent.
        self._catalog.insert(encode_key((name,)),
                             json.dumps(None).encode("utf-8"), replace=True)

    def list_names(self) -> list[str]:
        """All live object names, sorted."""
        from repro.storage.record import decode_key

        with self._lock:
            names = []
            for key, value in self._catalog.items():
                if json.loads(value.decode("utf-8")) is None:
                    continue
                (name,) = decode_key(key, ("str",))
                names.append(name)
            return names

    def exists(self, name: str) -> bool:
        with self._lock:
            return self._catalog_get(name) is not None

    # -- B+-trees ---------------------------------------------------------------

    def create_btree(self, name: str) -> BTree:
        with self._lock:
            if self.exists(name):
                raise CatalogError(f"object {name!r} already exists")
            tree = BTree.create(self.buffer_pool)
            self._catalog_put(name, {"kind": _KIND_BTREE,
                                     "meta_page": tree.meta_page_id},
                              replace=True)
            return tree

    def open_btree(self, name: str) -> BTree:
        with self._lock:
            entry = self._catalog_get(name)
            if entry is None or entry.get("kind") != _KIND_BTREE:
                raise CatalogError(f"no B+-tree named {name!r}")
            return BTree(self.buffer_pool, entry["meta_page"])

    # -- heap files -----------------------------------------------------------------

    def create_heap(self, name: str) -> HeapFile:
        with self._lock:
            if self.exists(name):
                raise CatalogError(f"object {name!r} already exists")
            heap = HeapFile.create(self.buffer_pool)
            self._catalog_put(name, {"kind": _KIND_HEAP,
                                     "head_page": heap.head_page_id},
                              replace=True)
            return heap

    def open_heap(self, name: str) -> HeapFile:
        with self._lock:
            entry = self._catalog_get(name)
            if entry is None or entry.get("kind") != _KIND_HEAP:
                raise CatalogError(f"no heap file named {name!r}")
            return HeapFile(self.buffer_pool, entry["head_page"])

    def drop(self, name: str) -> None:
        """Remove an object from the catalog (heap pages are freed)."""
        with self._lock:
            entry = self._catalog_get(name)
            if entry is None:
                raise CatalogError(f"no object named {name!r}")
            if entry.get("kind") == _KIND_HEAP:
                HeapFile(self.buffer_pool, entry["head_page"]).drop()
            self._catalog_delete(name)

    # -- metadata -----------------------------------------------------------------

    def put_meta(self, name: str, payload: dict[str, Any]) -> None:
        """Store a JSON metadata document under ``name`` (upsert)."""
        with self._lock:
            self._catalog_put(name, {"kind": _KIND_META,
                                     "payload": payload},
                              replace=True)

    def get_meta(self, name: str) -> dict[str, Any] | None:
        with self._lock:
            entry = self._catalog_get(name)
            if entry is None:
                return None
            if entry.get("kind") != _KIND_META:
                raise CatalogError(f"object {name!r} is not metadata")
            return entry["payload"]

    # -- accounting -----------------------------------------------------------------

    @property
    def stats(self):
        """Buffer pool counters (logical I/O)."""
        return self.buffer_pool.stats

    def reset_stats(self) -> None:
        self.buffer_pool.stats.__init__()
