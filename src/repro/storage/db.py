"""Database facade: one file, a buffer pool, and a persistent catalog.

The catalog is itself a B+-tree mapping object names to a small JSON
payload (object kind, anchor page id, arbitrary metadata).  Its meta-page
id lives in the pager header, so a database file is fully self-describing:

>>> with Database.create("/tmp/example.db") as db:        # doctest: +SKIP
...     tree = db.create_btree("xasr:doc1")
...     tree.insert(b"k", b"v")
"""

from __future__ import annotations

import json
import os
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Any

from repro.errors import CatalogError, WalError
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.heap import HeapFile
from repro.storage.overflow import OverflowStore
from repro.storage.pager import NO_PAGE, PAGE_SIZE, Pager
from repro.storage.record import encode_key
from repro.storage.wal import (
    CommitTicket,
    GroupCommitter,
    RecoveryReport,
    WriteAheadLog,
    default_wal_path,
    recover,
)

_KIND_BTREE = "btree"
_KIND_HEAP = "heap"
_KIND_META = "meta"

#: Metadata payloads above this size are spilled to the overflow store;
#: the catalog entry then holds only the pointer.  Catalog entries live
#: in B+-tree leaves, so an inline payload must stay well under the page
#: size (statistics payloads with value histograms can exceed it).
_META_INLINE_MAX = 1024


class Database:
    """A single-file XML database.

    Owns the pager, the buffer pool, the overflow store and the catalog.
    Named objects:

    * B+-trees (tables and indexes),
    * heap files (materialised intermediates, statistics runs),
    * bare metadata entries (per-document statistics, load info).

    Catalog operations are thread-safe: a database-level mutex makes each
    name→object operation (existence check + create, lookup + open,
    lookup + drop) atomic, so two sessions spilling intermediates — or a
    ``load`` racing a reader opening the same document — cannot interleave
    inside the catalog.  Objects handed out (trees, heaps) carry their
    own latches; page access below is protected by the buffer pool.
    """

    def __init__(self, path: str, create: bool = False,
                 buffer_capacity: int = 256, page_size: int = PAGE_SIZE,
                 wal: bool = True, checkpoint_interval: int = 16):
        wal_path = default_wal_path(path)
        self.last_recovery: RecoveryReport | None = None
        if not create:
            # Replay any committed-but-unapplied transactions *before*
            # the pager parses the file: the header page itself may be
            # among the logged images.  This runs even with wal=False —
            # a log left by a previous WAL-enabled process may hold the
            # only copy of acknowledged commits, and skipping (or worse,
            # deleting) it would lose durable data over a torn file.
            self.last_recovery = recover(path, wal_path)
        elif os.path.exists(wal_path):
            # Fresh database over an old path: stale log records must
            # never replay over the new file.
            os.remove(wal_path)
        self.pager = Pager(path, page_size=page_size, create=create)
        self.buffer_pool = BufferPool(self.pager, capacity=buffer_capacity)
        self.overflow = OverflowStore(self.buffer_pool)
        self._lock = threading.RLock()
        self._wal = (WriteAheadLog(wal_path, self.pager.page_size)
                     if wal else None)
        #: Group-commit daemon: batches the fsyncs of pipelined commits
        #: and runs the durable write-back (see
        #: :class:`~repro.storage.wal.GroupCommitter`).  Owned here, not
        #: by any server layer, so a worker parked on a commit ticket
        #: always gets its fsync even while the serving stack shuts down.
        self._committer = (GroupCommitter(self._wal, self._complete_commit)
                           if wal else None)
        #: Serializes write transactions and checkpoints (one at a time;
        #: reads need no transaction and are unaffected).
        self._txn_lock = threading.RLock()
        #: Nesting depth of the *current* transaction — the explicit
        #: reentrancy marker.  Deliberately not inferred from
        #: ``buffer_pool.in_transaction``: if a commit or abort ever
        #: failed half-way and left the pool tracking, inferring would
        #: make every later transaction silently join the orphaned one
        #: and run unlogged; with the explicit flag they fail loudly in
        #: ``begin_tracking`` instead.
        self._txn_depth = 0
        #: Handle of the transaction currently inside :meth:`transaction`
        #: (reentrant blocks share it).
        self._active_txn: Transaction | None = None
        self.checkpoint_interval = checkpoint_interval
        if self.pager.catalog_root == NO_PAGE:
            self._catalog = BTree.create(self.buffer_pool)
            self.pager.set_catalog_root(self._catalog.meta_page_id)
        else:
            self._catalog = BTree(self.buffer_pool, self.pager.catalog_root)

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(cls, path: str, buffer_capacity: int = 256,
               page_size: int = PAGE_SIZE, wal: bool = True,
               checkpoint_interval: int = 16) -> "Database":
        return cls(path, create=True, buffer_capacity=buffer_capacity,
                   page_size=page_size, wal=wal,
                   checkpoint_interval=checkpoint_interval)

    @classmethod
    def open(cls, path: str, buffer_capacity: int = 256, wal: bool = True,
             checkpoint_interval: int = 16) -> "Database":
        return cls(path, create=False, buffer_capacity=buffer_capacity,
                   wal=wal, checkpoint_interval=checkpoint_interval)

    def close(self) -> None:
        if self._wal is not None:
            # Drain first: parked commits get their fsync and their ack
            # (never a silent drop), and the checkpoint below then sees
            # no held-back frames.
            self._committer.close()
            self.checkpoint()
            self._wal.close()
        self.buffer_pool.flush_and_clear()
        self.pager.close()

    def _complete_commit(self, ticket: CommitTicket) -> None:
        """Committer callback: durable write-back of one fsynced commit."""
        self.buffer_pool.complete_commit(ticket.commit_lsn, ticket.images,
                                         ticket.mods)

    # -- write transactions --------------------------------------------------

    @contextmanager
    def transaction(self, wait: bool = True) -> Iterator["Transaction"]:
        """Run a block of page mutations atomically and durably.

        All pages dirtied inside the block stay in the buffer pool
        (no-steal) until, on normal exit, their after-images plus the
        header page are appended to the WAL and the commit is *published*
        — pre-images move into the version chains (pinned snapshots keep
        reading the old state), the commit LSN is assigned, and the
        frames stay held back from the file until the group committer's
        batched fsync covers the commit.  If the block raises, every
        dirtied frame is discarded and the on-disk state is untouched —
        but in-memory structures built over those pages (open B+-tree
        instances, cached nodes) are stale and must be re-opened; the
        catalog itself is refreshed here.

        Yields a :class:`Transaction` handle.  With ``wait=True`` (the
        default) the block does not return until the commit is durable —
        single-writer callers keep the classic "fsynced on exit"
        contract.  With ``wait=False`` the caller must invoke
        :meth:`Transaction.wait_durable` itself before acknowledging the
        commit; doing so *after* releasing its own locks is what lets
        pipelined writers share one fsync.

        Transactions serialize on a database-level lock (reentrancy is
        allowed and joins the outer transaction).  Without a WAL
        (``wal=False``) the block simply runs unprotected.

        The transaction's working set must fit the buffer pool; a block
        dirtying more pages than there are frames raises
        :class:`~repro.errors.BufferPoolError` and aborts cleanly.
        """
        if self._wal is None:
            txn = Transaction(self)
            yield txn
            txn.commit_lsn = self.buffer_pool.committed_lsn()
            for callback in txn._on_publish:
                callback()
            return
        with self._txn_lock:
            if self._txn_depth:
                # Reentrant use joins the enclosing transaction: the
                # outer exit commits or aborts the union of both blocks.
                yield self._active_txn
                return
            txn = Transaction(self)
            self._active_txn = txn
            header_snapshot = self.pager.header_state()
            self.pager.defer_header_writes()
            self.buffer_pool.begin_tracking()
            self._txn_depth = 1
            try:
                try:
                    yield txn
                    # WAL append under deferral too: if the log write
                    # fails, nothing was acknowledged and the whole block
                    # rolls back like any other error — and the
                    # half-appended records are truncated away so they
                    # can never become replayable later.  (Truncating is
                    # safe precisely because appends happen under the
                    # transaction lock: nothing can have appended after
                    # us.)
                    images = self.buffer_pool.transaction_pages()
                    images[0] = self.pager.header_page_image()
                    log_mark = self._wal.size
                    try:
                        self._wal.append_commit(images)
                    except BaseException:
                        try:
                            self._wal.truncate_to(log_mark)
                        except OSError:  # pragma: no cover - best effort
                            pass
                        raise
                except BaseException:
                    try:
                        self.buffer_pool.end_tracking_abort()
                    finally:
                        # Even a failed abort must not leak the header
                        # deferral or the stale in-memory header state.
                        self.pager.resume_header_writes(write=False)
                        self.pager.restore_header_state(header_snapshot)
                        # The catalog tree's in-memory meta (root, entry
                        # count) may describe aborted pages; re-read it.
                        self._catalog._load_meta()
                    raise
                # Publish: new readers see the commit, existing snapshots
                # keep the old versions; durability is the committer's
                # batched fsync, which the ticket below waits on.
                self.pager.resume_header_writes(write=False)
                commit_lsn, mods = self.buffer_pool.publish_commit(
                    txn._on_publish)
                txn.commit_lsn = commit_lsn
                txn._ticket = self._committer.submit(
                    CommitTicket(commit_lsn, images, mods))
            finally:
                self._txn_depth = 0
                self._active_txn = None
        if wait:
            txn.wait_durable()
            self.maybe_checkpoint()

    def maybe_checkpoint(self) -> None:
        """Checkpoint if enough commits accumulated since the last one.

        ``wait=False`` transaction users call this after their own
        :meth:`Transaction.wait_durable`, keeping log growth bounded on
        the pipelined-commit path too.
        """
        if (self._wal is not None
                and self._wal.commits_since_checkpoint
                >= self.checkpoint_interval):
            self.checkpoint()

    def checkpoint(self) -> None:
        """Flush everything to the database file and reset the WAL.

        Bounds recovery work and log growth.  Must also be called before
        mutating the file *outside* a transaction (bulk loads): resetting
        the log first guarantees no stale record can later replay over
        unlogged writes.  No-op without a WAL.
        """
        if self._wal is None:
            return
        with self._txn_lock:
            if self.buffer_pool.in_transaction:
                raise WalError("checkpoint during an open transaction")
            # Every appended commit must be fsynced and written back
            # before the log resets — a held-back frame surviving a log
            # reset would have no redo copy anywhere.
            self._committer.drain()
            self.buffer_pool.flush()
            self.pager.write_header()
            self.pager.sync()
            self._wal.checkpoint()

    @property
    def wal_enabled(self) -> bool:
        return self._wal is not None

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- catalog ------------------------------------------------------------

    def _catalog_get(self, name: str) -> dict[str, Any] | None:
        raw = self._catalog.search(encode_key((name,)))
        if raw is None:
            return None
        return json.loads(raw.decode("utf-8"))

    def _catalog_put(self, name: str, entry: dict[str, Any],
                     replace: bool = False) -> None:
        raw = json.dumps(entry, sort_keys=True).encode("utf-8")
        self._catalog.insert(encode_key((name,)), raw, replace=replace)

    def _catalog_delete(self, name: str) -> None:
        # The B+-tree has no structural delete (the paper's system never
        # needed one); a tombstone entry keeps the catalog consistent.
        self._catalog.insert(encode_key((name,)),
                             json.dumps(None).encode("utf-8"), replace=True)

    def list_names(self) -> list[str]:
        """All live object names, sorted."""
        from repro.storage.record import decode_key

        with self._lock:
            names = []
            for key, value in self._catalog.items():
                if json.loads(value.decode("utf-8")) is None:
                    continue
                (name,) = decode_key(key, ("str",))
                names.append(name)
            return names

    def exists(self, name: str) -> bool:
        with self._lock:
            return self._catalog_get(name) is not None

    # -- B+-trees ---------------------------------------------------------------

    def create_btree(self, name: str) -> BTree:
        with self._lock:
            if self.exists(name):
                raise CatalogError(f"object {name!r} already exists")
            tree = BTree.create(self.buffer_pool)
            self._catalog_put(name, {"kind": _KIND_BTREE,
                                     "meta_page": tree.meta_page_id},
                              replace=True)
            return tree

    def open_btree(self, name: str) -> BTree:
        with self._lock:
            entry = self._catalog_get(name)
            if entry is None or entry.get("kind") != _KIND_BTREE:
                raise CatalogError(f"no B+-tree named {name!r}")
            return BTree(self.buffer_pool, entry["meta_page"])

    # -- heap files -----------------------------------------------------------------

    def create_heap(self, name: str) -> HeapFile:
        with self._lock:
            if self.exists(name):
                raise CatalogError(f"object {name!r} already exists")
            heap = HeapFile.create(self.buffer_pool)
            self._catalog_put(name, {"kind": _KIND_HEAP,
                                     "head_page": heap.head_page_id},
                              replace=True)
            return heap

    def open_heap(self, name: str) -> HeapFile:
        with self._lock:
            entry = self._catalog_get(name)
            if entry is None or entry.get("kind") != _KIND_HEAP:
                raise CatalogError(f"no heap file named {name!r}")
            return HeapFile(self.buffer_pool, entry["head_page"])

    def drop(self, name: str) -> None:
        """Remove an object from the catalog (heap pages and metadata
        spill chains are freed; B+-tree pages are not — see
        :meth:`drop_btree`)."""
        with self._lock:
            entry = self._catalog_get(name)
            if entry is None:
                raise CatalogError(f"no object named {name!r}")
            if entry.get("kind") == _KIND_HEAP:
                HeapFile(self.buffer_pool, entry["head_page"]).drop()
            self._free_meta_overflow(entry)
            self._catalog_delete(name)

    def drop_btree(self, name: str) -> None:
        """Remove a B+-tree from the catalog *and free all its pages*.

        Only safe when no reader can still be traversing the tree (the
        caller holds whatever latch excludes them); the plain
        :meth:`drop` leaves pages alone precisely so that replaced
        documents stay readable by executions already running.
        """
        with self._lock:
            entry = self._catalog_get(name)
            if entry is None or entry.get("kind") != _KIND_BTREE:
                raise CatalogError(f"no B+-tree named {name!r}")
            BTree(self.buffer_pool, entry["meta_page"]).drop()
            self._catalog_delete(name)

    # -- metadata -----------------------------------------------------------------

    def put_meta(self, name: str, payload: dict[str, Any]) -> None:
        """Store a JSON metadata document under ``name`` (upsert).

        Large payloads are transparently spilled to the overflow store
        (and the spill chain of a replaced large payload is freed).
        """
        with self._lock:
            old = self._catalog_get(name)
            raw = json.dumps(payload, sort_keys=True).encode("utf-8")
            if len(raw) > _META_INLINE_MAX:
                head_page, length = self.overflow.store(raw)
                entry = {"kind": _KIND_META,
                         "overflow": [head_page, length]}
            else:
                entry = {"kind": _KIND_META, "payload": payload}
            self._catalog_put(name, entry, replace=True)
            self._free_meta_overflow(old)

    def get_meta(self, name: str) -> dict[str, Any] | None:
        with self._lock:
            entry = self._catalog_get(name)
            if entry is None:
                return None
            if entry.get("kind") != _KIND_META:
                raise CatalogError(f"object {name!r} is not metadata")
            spilled = entry.get("overflow")
            if spilled is not None:
                head_page, length = spilled
                raw = self.overflow.load(head_page, length)
                return json.loads(raw.decode("utf-8"))
            return entry["payload"]

    def _free_meta_overflow(self, entry: dict[str, Any] | None) -> None:
        """Free the spill chain of a replaced/dropped metadata entry."""
        if entry is None or entry.get("kind") != _KIND_META:
            return
        spilled = entry.get("overflow")
        if spilled is not None:
            self.overflow.free(spilled[0])

    # -- accounting -----------------------------------------------------------------

    @property
    def stats(self):
        """Buffer pool counters (logical I/O)."""
        return self.buffer_pool.stats

    def reset_stats(self) -> None:
        self.buffer_pool.stats.__init__()

    def mvcc_stats(self) -> dict[str, int]:
        """Snapshot/version gauges plus group-commit counters."""
        stats = self.buffer_pool.mvcc_stats()
        if self._committer is not None:
            stats.update(self._committer.stats())
        else:
            stats.update({"group_commits": 0, "group_fsyncs": 0,
                          "fsyncs_saved": 0, "max_batch": 0,
                          "pending_commits": 0})
        return stats


class Transaction:
    """Handle for one :meth:`Database.transaction` block.

    ``commit_lsn`` is the commit's position in the global commit
    sequence, assigned at publish time (None while the block is still
    running, or if the block aborted).  ``on_publish`` registers a
    callback to run *inside* the publish critical section — atomically
    with the LSN assignment, under the buffer pool mutex, so it must not
    block or take locks; the catalog layer uses it to bump document
    version counters in lock-step with snapshot visibility.
    """

    __slots__ = ("db", "commit_lsn", "_on_publish", "_ticket")

    def __init__(self, db: Database):
        self.db = db
        self.commit_lsn: int | None = None
        self._on_publish: list = []
        self._ticket = None

    def on_publish(self, callback) -> None:
        self._on_publish.append(callback)

    def wait_durable(self, timeout: float | None = None) -> None:
        """Block until the commit's covering fsync completed.

        Raises :class:`~repro.errors.WalError` if the group committer
        failed.  No-op for aborted blocks and WAL-less databases.
        """
        if self._ticket is not None:
            self._ticket.wait(timeout)
