"""A disk-resident B+-tree.

This is the index structure of milestone 4 ("students added ... B+-tree
index structures on the XASR relations") and, because the XASR table itself
is stored as a B+-tree clustered on ``in``, also the primary access path of
milestone 2.

Properties:

* keys and values are arbitrary byte strings (use
  :func:`repro.storage.record.encode_key` for order-preserving composite
  keys);
* keys are unique — composite keys embed a tie-breaker column (e.g. the
  node's in-value) where duplicates are possible;
* leaves are chained left-to-right, so in-order range scans are sequential
  (this is what makes "descendants of x" = one clustered range scan);
* sorted bulk-loading builds compact trees bottom-up at load time;
* every page access goes through the buffer pool, so index I/O is counted
  by the same meter the cost model estimates against.

A small node cache avoids re-deserialising hot pages; it is invalidated by
buffer-pool evictions, so it never holds state for a page that is not
resident.

Tree identity: a B+-tree is named by its **meta page** id.  The meta page
stores the root page id, height and entry count, so structural changes
(root splits) never require catalog updates.

Concurrency: each tree instance carries a shared/exclusive latch.
Traversals (``search``, ``range_scan``, ``prefix_scan``,
``leaf_page_count``) hold it shared — any number run together, including
long-lived scan generators, which keep it across ``yield``\\ s and
release it when exhausted or closed.  Structural modification
(``insert``, ``bulk_load``) holds it exclusively, so a reader can never
observe a half-applied split.  Underneath, node reads and writes take
the buffer pool's per-page latch while (de)serialising, so concurrent
trees sharing one pool cannot interleave byte-level access to a page.
Instances do not share their node cache: concurrent *writers through
different instances of the same tree* are unsupported (the catalog, the
one mutated tree, is a single shared instance guarded by the database
lock).
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from collections.abc import Iterable, Iterator

from repro.errors import BTreeError
from repro.storage.buffer import BufferPool
from repro.storage.latch import SharedLatch

_META = struct.Struct(">4sIIQ")  # magic, root, height, entry count
_META_MAGIC = b"BTRE"
_NODE_HEADER = struct.Struct(">BH")  # type, count
_LEAF_NEXT = struct.Struct(">I")
_LEN = struct.Struct(">H")
_CHILD = struct.Struct(">I")

_LEAF = 1
_INTERNAL = 0


class _Node:
    """Deserialized node. ``page_id`` ties it back to its buffer page."""

    __slots__ = ("page_id", "is_leaf", "keys", "values", "children",
                 "next_leaf")

    def __init__(self, page_id: int, is_leaf: bool):
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.keys: list[bytes] = []
        self.values: list[bytes] = []      # leaf only
        self.children: list[int] = []      # internal only
        self.next_leaf = 0                 # leaf only

    # -- size accounting -----------------------------------------------------

    def serialized_size(self) -> int:
        size = _NODE_HEADER.size
        if self.is_leaf:
            size += _LEAF_NEXT.size
            for key, value in zip(self.keys, self.values, strict=True):
                size += 2 * _LEN.size + len(key) + len(value)
        else:
            size += _CHILD.size * len(self.children)
            for key in self.keys:
                size += _LEN.size + len(key)
        return size

    def serialize_into(self, page: bytearray) -> None:
        offset = 0
        _NODE_HEADER.pack_into(page, offset,
                               _LEAF if self.is_leaf else _INTERNAL,
                               len(self.keys))
        offset += _NODE_HEADER.size
        if self.is_leaf:
            _LEAF_NEXT.pack_into(page, offset, self.next_leaf)
            offset += _LEAF_NEXT.size
            for key, value in zip(self.keys, self.values, strict=True):
                _LEN.pack_into(page, offset, len(key))
                offset += _LEN.size
                _LEN.pack_into(page, offset, len(value))
                offset += _LEN.size
                page[offset:offset + len(key)] = key
                offset += len(key)
                page[offset:offset + len(value)] = value
                offset += len(value)
        else:
            for child in self.children:
                _CHILD.pack_into(page, offset, child)
                offset += _CHILD.size
            for key in self.keys:
                _LEN.pack_into(page, offset, len(key))
                offset += _LEN.size
                page[offset:offset + len(key)] = key
                offset += len(key)
        # Zero the tail so stale bytes never survive.
        page[offset:] = b"\x00" * (len(page) - offset)

    @classmethod
    def deserialize(cls, page_id: int, page: bytearray) -> "_Node":
        node_type, count = _NODE_HEADER.unpack_from(page, 0)
        offset = _NODE_HEADER.size
        node = cls(page_id, node_type == _LEAF)
        if node.is_leaf:
            (node.next_leaf,) = _LEAF_NEXT.unpack_from(page, offset)
            offset += _LEAF_NEXT.size
            for __ in range(count):
                (klen,) = _LEN.unpack_from(page, offset)
                offset += _LEN.size
                (vlen,) = _LEN.unpack_from(page, offset)
                offset += _LEN.size
                node.keys.append(bytes(page[offset:offset + klen]))
                offset += klen
                node.values.append(bytes(page[offset:offset + vlen]))
                offset += vlen
        else:
            for __ in range(count + 1):
                (child,) = _CHILD.unpack_from(page, offset)
                node.children.append(child)
                offset += _CHILD.size
            for __ in range(count):
                (klen,) = _LEN.unpack_from(page, offset)
                offset += _LEN.size
                node.keys.append(bytes(page[offset:offset + klen]))
                offset += klen
        return node


class BTree:
    """A B+-tree identified by its meta page.

    Create with :meth:`create`, reopen with ``BTree(buffer_pool,
    meta_page_id)``.
    """

    def __init__(self, buffer_pool: BufferPool, meta_page_id: int):
        self.buffer_pool = buffer_pool
        self.meta_page_id = meta_page_id
        # Node-cache entries are only ever replaced wholesale (single
        # dict get/set/pop bytecodes, atomic under the GIL); structural
        # consistency across *multiple* nodes is what the tree latch
        # provides.
        self._cache: dict[int, _Node] = {}
        self._latch = SharedLatch()
        buffer_pool.on_evict(self._cache_invalidate)
        self._load_meta()

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def create(cls, buffer_pool: BufferPool) -> "BTree":
        """Allocate an empty tree (meta page + one empty leaf)."""
        root_id, root_page = buffer_pool.new_page()
        root = _Node(root_id, is_leaf=True)
        root.serialize_into(root_page)
        buffer_pool.unpin(root_id, dirty=True)

        meta_id, meta_page = buffer_pool.new_page()
        _META.pack_into(meta_page, 0, _META_MAGIC, root_id, 1, 0)
        buffer_pool.unpin(meta_id, dirty=True)
        return cls(buffer_pool, meta_id)

    def _cache_invalidate(self, page_id: int) -> None:
        self._cache.pop(page_id, None)

    # -- meta page ---------------------------------------------------------------

    def _load_meta(self) -> None:
        with self.buffer_pool.pinned(self.meta_page_id) as page:
            magic, root, height, count = _META.unpack_from(page, 0)
        if magic != _META_MAGIC:
            raise BTreeError(f"page {self.meta_page_id} is not a B+-tree "
                             "meta page")
        self.root_page_id = root
        self.height = height
        self.entry_count = count

    def _save_meta(self) -> None:
        with self.buffer_pool.latched(self.meta_page_id,
                                      exclusive=True) as page:
            _META.pack_into(page, 0, _META_MAGIC, self.root_page_id,
                            self.height, self.entry_count)

    # -- node access ---------------------------------------------------------------

    def _read_node(self, page_id: int) -> _Node:
        pool = self.buffer_pool
        # Version-aware bypass: a thread bound to a snapshot that sees a
        # superseded image of this page must neither trust nor populate
        # the node cache (which always mirrors the *live* page).  The
        # check is a fast no-op for unbound threads.  Entries are only
        # cached while the page reads live — a commit cannot have
        # superseded it for this snapshot in between, because the pinned
        # snapshot keeps any such version entry alive and the re-check
        # after decoding would see it.
        if not pool.reads_versioned(page_id):
            node = self._cache.get(page_id)
            if node is not None:
                # Logical access still goes through the pool for
                # accounting.
                pool.get_page(page_id, pin=False)
                return node
        with pool.latched(page_id) as page:
            node = _Node.deserialize(page_id, page)
        if not pool.reads_versioned(page_id):
            self._cache[page_id] = node
        return node

    def _write_node(self, node: _Node) -> None:
        with self.buffer_pool.latched(node.page_id,
                                      exclusive=True) as page:
            if node.serialized_size() > len(page):
                raise BTreeError("node exceeds page capacity after write")
            node.serialize_into(page)
        self._cache[node.page_id] = node

    def _new_node(self, is_leaf: bool) -> _Node:
        page_id, page = self.buffer_pool.new_page()
        self.buffer_pool.unpin(page_id, dirty=True)
        node = _Node(page_id, is_leaf)
        self._cache[page_id] = node
        return node

    def _max_node_size(self) -> int:
        return self.buffer_pool.pager.page_size

    # -- lookup -------------------------------------------------------------------

    def _descend_to_leaf(self, key: bytes) -> _Node:
        node = self._read_node(self.root_page_id)
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            node = self._read_node(node.children[index])
        return node

    def search(self, key: bytes) -> bytes | None:
        """Point lookup; returns the value or ``None``."""
        with self._latch.shared():
            leaf = self._descend_to_leaf(key)
            index = bisect_left(leaf.keys, key)
            if index < len(leaf.keys) and leaf.keys[index] == key:
                return leaf.values[index]
            return None

    def __contains__(self, key: bytes) -> bool:
        return self.search(key) is not None

    def range_scan(self, low: bytes | None = None, high: bytes | None = None,
                   include_low: bool = True, include_high: bool = True
                   ) -> Iterator[tuple[bytes, bytes]]:
        """Yield ``(key, value)`` pairs with ``low ≤/< key ≤/< high``.

        ``None`` bounds are open-ended.  Keys stream in ascending order via
        the leaf chain.

        The tree latch is held shared for the generator's whole life —
        across ``yield``\\ s, released when the scan is exhausted *or
        closed early* — so an in-flight scan never observes a structural
        modification half-applied.
        """
        self._latch.acquire_shared()
        try:
            if low is None:
                leaf = self._leftmost_leaf()
                index = 0
            else:
                leaf = self._descend_to_leaf(low)
                index = (bisect_left(leaf.keys, low) if include_low
                         else bisect_right(leaf.keys, low))
            while True:
                while index < len(leaf.keys):
                    key = leaf.keys[index]
                    if high is not None:
                        if include_high:
                            if key > high:
                                return
                        elif key >= high:
                            return
                    yield key, leaf.values[index]
                    index += 1
                if leaf.next_leaf == 0:
                    return
                leaf = self._read_node(leaf.next_leaf)
                index = 0
        finally:
            self._latch.release_shared()

    def prefix_scan(self, prefix: bytes) -> Iterator[tuple[bytes, bytes]]:
        """All entries whose key starts with ``prefix``, in order."""
        for key, value in self.range_scan(low=prefix, include_low=True):
            if not key.startswith(prefix):
                return
            yield key, value

    def _leftmost_leaf(self) -> _Node:
        node = self._read_node(self.root_page_id)
        while not node.is_leaf:
            node = self._read_node(node.children[0])
        return node

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Full in-order scan."""
        return self.range_scan()

    def __len__(self) -> int:
        return self.entry_count

    # -- insertion --------------------------------------------------------------

    def insert(self, key: bytes, value: bytes, replace: bool = False) -> None:
        """Insert a unique key.

        ``replace=True`` overwrites an existing key; otherwise a duplicate
        raises :class:`~repro.errors.BTreeError`.
        """
        if len(key) + len(value) + 64 > self._max_node_size():
            raise BTreeError(
                f"entry of {len(key) + len(value)} bytes cannot fit in a "
                f"{self._max_node_size()}-byte page; use the overflow store")
        with self._latch.exclusive():
            split = self._insert_into(self.root_page_id, key, value,
                                      replace)
            if split is not None:
                separator, right_id = split
                new_root = self._new_node(is_leaf=False)
                new_root.keys = [separator]
                new_root.children = [self.root_page_id, right_id]
                self._write_node(new_root)
                self.root_page_id = new_root.page_id
                self.height += 1
            self._save_meta()

    def _insert_into(self, page_id: int, key: bytes, value: bytes,
                     replace: bool) -> tuple[bytes, int] | None:
        node = self._read_node(page_id)
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                if not replace:
                    raise BTreeError(f"duplicate key {key!r}")
                node.values[index] = value
                self._write_node(node)
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self.entry_count += 1
            if node.serialized_size() <= self._max_node_size():
                self._write_node(node)
                return None
            return self._split_leaf(node)
        index = bisect_right(node.keys, key)
        split = self._insert_into(node.children[index], key, value, replace)
        if split is None:
            return None
        separator, right_id = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right_id)
        if node.serialized_size() <= self._max_node_size():
            self._write_node(node)
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> tuple[bytes, int]:
        right = self._new_node(is_leaf=True)
        middle = self._split_point(node)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next_leaf = node.next_leaf
        node.next_leaf = right.page_id
        self._write_node(node)
        self._write_node(right)
        return right.keys[0], right.page_id

    def _split_internal(self, node: _Node) -> tuple[bytes, int]:
        right = self._new_node(is_leaf=False)
        middle = self._split_point(node)
        separator = node.keys[middle]
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        self._write_node(node)
        self._write_node(right)
        return separator, right.page_id

    @staticmethod
    def _split_point(node: _Node) -> int:
        """Index splitting entries into roughly equal serialized halves."""
        total = sum(len(k) for k in node.keys)
        if node.is_leaf:
            total += sum(len(v) for v in node.values)
        half = total // 2
        running = 0
        for index, key in enumerate(node.keys):
            running += len(key)
            if node.is_leaf:
                running += len(node.values[index])
            if running >= half and 0 < index < len(node.keys) - 1:
                return index + 1
        return max(1, len(node.keys) // 2)

    # -- deletion ---------------------------------------------------------------

    def delete(self, key: bytes, missing_ok: bool = False) -> bool:
        """Remove ``key``; returns True if it was present.

        Deletion is leaf-local: the entry is removed and the leaf
        rewritten, but leaves are never merged and separators never
        adjusted (the classic delete-without-rebalance simplification —
        underfull and even empty leaves stay chained and are skipped by
        scans).  A missing key raises
        :class:`~repro.errors.BTreeError` unless ``missing_ok``.
        """
        with self._latch.exclusive():
            leaf = self._descend_to_leaf(key)
            index = bisect_left(leaf.keys, key)
            if index >= len(leaf.keys) or leaf.keys[index] != key:
                if missing_ok:
                    return False
                raise BTreeError(f"delete of missing key {key!r}")
            del leaf.keys[index]
            del leaf.values[index]
            self.entry_count -= 1
            self._write_node(leaf)
            self._save_meta()
            return True

    # -- dropping ---------------------------------------------------------------

    def drop(self) -> None:
        """Free every page of the tree (nodes, chained-but-unreachable
        leaves, and the meta page) back to the pager free list.

        The instance is unusable afterwards.  Callers must guarantee no
        concurrent reader holds a scan over the tree — the exclusive
        latch taken here excludes in-flight generators, but nothing
        stops a *later* reader from re-opening the tree by its (now
        stale) meta page id, so dropping is only safe once the tree's
        name is unreachable (e.g. under the document's exclusive latch).
        """
        with self._latch.exclusive():
            pages: list[int] = []
            stack = [self.root_page_id]
            seen = set()
            while stack:
                page_id = stack.pop()
                if page_id in seen:
                    continue  # pragma: no cover - defensive
                seen.add(page_id)
                node = self._read_node(page_id)
                pages.append(page_id)
                if node.is_leaf:
                    # Delete-without-rebalance can leave empty leaves
                    # reachable only through the chain; walk it too.
                    if node.next_leaf and node.next_leaf not in seen:
                        stack.append(node.next_leaf)
                else:
                    stack.extend(node.children)
            pages.append(self.meta_page_id)
            for page_id in pages:
                self._cache.pop(page_id, None)
                self.buffer_pool.free_page(page_id)

    # -- bulk loading -------------------------------------------------------------

    def bulk_load(self, items: Iterable[tuple[bytes, bytes]],
                  fill_factor: float = 0.9) -> None:
        """Build the tree from already-sorted unique ``(key, value)`` pairs.

        Only valid on an empty tree.  Leaves are packed to ``fill_factor``
        of the page and chained; internal levels are built bottom-up.
        """
        with self._latch.exclusive():
            self._bulk_load(items, fill_factor)

    def _bulk_load(self, items: Iterable[tuple[bytes, bytes]],
                   fill_factor: float) -> None:
        if self.entry_count:
            raise BTreeError("bulk_load requires an empty tree")
        capacity = int(self._max_node_size() * fill_factor)

        leaves: list[tuple[bytes, int]] = []  # (first key, page id)
        current = self._read_node(self.root_page_id)  # reuse initial leaf
        current.keys, current.values = [], []
        count = 0
        previous_key: bytes | None = None
        previous_leaf: _Node | None = None

        for key, value in items:
            if previous_key is not None and key <= previous_key:
                raise BTreeError("bulk_load input must be strictly "
                                 "ascending")
            previous_key = key
            entry_size = 2 * _LEN.size + len(key) + len(value)
            if (current.serialized_size() + entry_size > capacity
                    and current.keys):
                if previous_leaf is not None:
                    previous_leaf.next_leaf = current.page_id
                    self._write_node(previous_leaf)
                leaves.append((current.keys[0], current.page_id))
                previous_leaf = current
                current = self._new_node(is_leaf=True)
            current.keys.append(key)
            current.values.append(value)
            count += 1
        if previous_leaf is not None:
            previous_leaf.next_leaf = current.page_id
            self._write_node(previous_leaf)
        if current.keys or not leaves:
            leaves.append((current.keys[0] if current.keys else b"",
                           current.page_id))
        self._write_node(current)

        # Build internal levels bottom-up.
        level = leaves
        height = 1
        while len(level) > 1:
            next_level: list[tuple[bytes, int]] = []
            index = 0
            while index < len(level):
                node = self._new_node(is_leaf=False)
                node.children.append(level[index][1])
                first_key = level[index][0]
                index += 1
                while index < len(level):
                    key = level[index][0]
                    added = _LEN.size + len(key) + _CHILD.size
                    if node.serialized_size() + added > capacity:
                        break
                    node.keys.append(key)
                    node.children.append(level[index][1])
                    index += 1
                self._write_node(node)
                next_level.append((first_key, node.page_id))
            level = next_level
            height += 1

        self.root_page_id = level[0][1]
        self.height = height
        self.entry_count = count
        self._save_meta()

    # -- statistics for the cost model ------------------------------------------

    def leaf_page_count(self) -> int:
        """Number of leaf pages (walks the leaf chain)."""
        with self._latch.shared():
            count = 0
            leaf = self._leftmost_leaf()
            while True:
                count += 1
                if leaf.next_leaf == 0:
                    return count
                leaf = self._read_node(leaf.next_leaf)
