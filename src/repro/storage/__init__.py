"""A native paged storage manager (the Berkeley DB substitute).

The course used the publicly available Berkeley DB distribution as its
storage manager.  That library is closed-source C and out of scope here, so
this package implements the equivalent substrate from scratch:

* :mod:`~repro.storage.pager` — a page-addressed file with a free list;
* :mod:`~repro.storage.buffer` — a buffer pool with pinning, LRU eviction,
  dirty write-back, and hit/miss/read/write accounting (the unit of the
  milestone-4 cost model);
* :mod:`~repro.storage.record` — order-preserving tuple/key codecs;
* :mod:`~repro.storage.overflow` — chained overflow pages for long values;
* :mod:`~repro.storage.heap` — slotted-page heap files;
* :mod:`~repro.storage.btree` — a disk B+-tree with point lookup, in-order
  range scans (the clustered-access path for descendant ranges), insertion
  and sorted bulk-loading;
* :mod:`~repro.storage.db` — the database facade tying it together with a
  persistent catalog.

The paper notes that the public Berkeley DB "does not directly support
block-based writing, only block-based reading", which got in the way of
textbook external sort; our pager supports both, and the external-sort
operator in :mod:`repro.physical.sort` uses it.
"""

from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool, BufferStats
from repro.storage.db import Database
from repro.storage.heap import HeapFile, RecordId
from repro.storage.pager import PAGE_SIZE, Pager
from repro.storage.record import (
    KeyCodec,
    RecordCodec,
    decode_key,
    encode_key,
)

__all__ = [
    "PAGE_SIZE",
    "Pager",
    "BufferPool",
    "BufferStats",
    "HeapFile",
    "RecordId",
    "BTree",
    "Database",
    "RecordCodec",
    "KeyCodec",
    "encode_key",
    "decode_key",
]
