"""Slotted-page heap files.

A heap file is an unordered collection of variable-length records spread
over a chain of slotted pages.  It is the storage behind materialised
intermediate results (milestone 3 "allowed the engines to write to disk
each intermediate result, and re-read it whenever necessary") and behind
external-sort runs.

Page layout::

    next_page_id : u32
    slot_count   : u16
    free_offset  : u16          (start of the unused gap)
    slots        : slot_count × (offset u16, length u16)
    ... gap ...
    record data (grows down from the end of the page)

Deleted slots keep their entry with length 0; record ids therefore stay
stable.
"""

from __future__ import annotations

import struct
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.buffer import BufferPool

_PAGE_HEADER = struct.Struct(">IHH")
_SLOT = struct.Struct(">HH")


@dataclass(frozen=True)
class RecordId:
    """Stable address of a record: (page id, slot index)."""

    page_id: int
    slot: int


class HeapFile:
    """An append-oriented heap file over the buffer pool.

    ``head_page_id`` identifies the file; a fresh file is created with
    :meth:`create`.  Records are raw byte strings — combine with
    :class:`~repro.storage.record.RecordCodec` for tuples.
    """

    def __init__(self, buffer_pool: BufferPool, head_page_id: int):
        self.buffer_pool = buffer_pool
        self.head_page_id = head_page_id
        self._last_page_id = head_page_id

    # -- creation ------------------------------------------------------------

    @classmethod
    def create(cls, buffer_pool: BufferPool) -> "HeapFile":
        page_id, page = buffer_pool.new_page()
        cls._init_page(page, buffer_pool.pager.page_size)
        buffer_pool.unpin(page_id, dirty=True)
        return cls(buffer_pool, page_id)

    @staticmethod
    def _init_page(page: bytearray, page_size: int) -> None:
        _PAGE_HEADER.pack_into(page, 0, 0, 0, page_size)

    # -- low-level page accessors ----------------------------------------------

    @staticmethod
    def _read_header(page: bytearray) -> tuple[int, int, int]:
        return _PAGE_HEADER.unpack_from(page, 0)

    @staticmethod
    def _slot_entry(page: bytearray, slot: int) -> tuple[int, int]:
        return _SLOT.unpack_from(page, _PAGE_HEADER.size + slot * _SLOT.size)

    def _page_free_space(self, page: bytearray) -> int:
        __, slot_count, free_offset = self._read_header(page)
        slots_end = _PAGE_HEADER.size + slot_count * _SLOT.size
        return free_offset - slots_end

    # -- operations ---------------------------------------------------------------

    def insert(self, record: bytes) -> RecordId:
        """Append a record, growing the page chain as needed."""
        needed = len(record) + _SLOT.size
        max_payload = (self.buffer_pool.pager.page_size - _PAGE_HEADER.size
                       - _SLOT.size)
        if len(record) > max_payload:
            raise StorageError(
                f"record of {len(record)} bytes exceeds page capacity "
                f"{max_payload}; use the overflow store")
        page_id = self._last_page_id
        page = self.buffer_pool.get_page(page_id)
        try:
            if self._page_free_space(page) < needed:
                next_id, new_page = self.buffer_pool.new_page()
                self._init_page(new_page, self.buffer_pool.pager.page_size)
                struct.pack_into(">I", page, 0, next_id)
                self.buffer_pool.mark_dirty(page_id)
                self.buffer_pool.unpin(page_id, dirty=True)
                page_id, page = next_id, new_page
                self._last_page_id = next_id
            __, slot_count, free_offset = self._read_header(page)
            offset = free_offset - len(record)
            page[offset:offset + len(record)] = record
            _SLOT.pack_into(page, _PAGE_HEADER.size + slot_count * _SLOT.size,
                            offset, len(record))
            next_page = struct.unpack_from(">I", page, 0)[0]
            _PAGE_HEADER.pack_into(page, 0, next_page, slot_count + 1, offset)
            return RecordId(page_id, slot_count)
        finally:
            self.buffer_pool.unpin(page_id, dirty=True)

    def read(self, record_id: RecordId) -> bytes:
        """Fetch one record by id."""
        with self.buffer_pool.pinned(record_id.page_id) as page:
            __, slot_count, __ = self._read_header(page)
            if record_id.slot >= slot_count:
                raise StorageError(f"no such slot {record_id}")
            offset, length = self._slot_entry(page, record_id.slot)
            if length == 0:
                raise StorageError(f"record {record_id} was deleted")
            return bytes(page[offset:offset + length])

    def delete(self, record_id: RecordId) -> None:
        """Mark a record deleted (space is not compacted)."""
        page = self.buffer_pool.get_page(record_id.page_id)
        try:
            __, slot_count, __ = self._read_header(page)
            if record_id.slot >= slot_count:
                raise StorageError(f"no such slot {record_id}")
            offset, __ = self._slot_entry(page, record_id.slot)
            _SLOT.pack_into(page, _PAGE_HEADER.size
                            + record_id.slot * _SLOT.size, offset, 0)
        finally:
            self.buffer_pool.unpin(record_id.page_id, dirty=True)

    def scan(self) -> Iterator[tuple[RecordId, bytes]]:
        """All live records in insertion order (page chain order)."""
        page_id = self.head_page_id
        while page_id != 0:
            with self.buffer_pool.pinned(page_id) as page:
                next_page, slot_count, __ = self._read_header(page)
                records: list[tuple[RecordId, bytes]] = []
                for slot in range(slot_count):
                    offset, length = self._slot_entry(page, slot)
                    if length == 0:
                        continue
                    records.append((RecordId(page_id, slot),
                                    bytes(page[offset:offset + length])))
            yield from records
            page_id = next_page

    def page_ids(self) -> list[int]:
        """All page ids of the chain, head first."""
        ids = []
        page_id = self.head_page_id
        while page_id != 0:
            ids.append(page_id)
            with self.buffer_pool.pinned(page_id) as page:
                (page_id,) = struct.unpack_from(">I", page, 0)
        return ids

    def drop(self) -> None:
        """Free every page of the file."""
        for page_id in self.page_ids():
            self.buffer_pool.free_page(page_id)
