"""Page-addressed file storage.

A database file is an array of fixed-size pages.  Page 0 is the header
page; it stores a magic string, the page size, the page count, the head of
the free-page list, and the root page id of the catalog B+-tree.

The pager deals exclusively in whole pages — callers are expected to go
through the buffer pool (:mod:`repro.storage.buffer`) rather than use
:meth:`Pager.read_page`/:meth:`Pager.write_page` directly, so that all I/O
is accounted.

All public operations are thread-safe: a single mutex serializes the
``seek``/``read``/``write`` pairs (which are not atomic on a shared file
object) and the header/free-list updates.  The pager is the leaf of the
storage lock order — it never calls back up into the buffer pool — so
holding its mutex can never participate in a deadlock cycle.
"""

from __future__ import annotations

import os
import struct
import threading

from repro.errors import PageError

#: Default page size in bytes.  Small enough that scaled-down documents
#: still span many pages (so page-count cost estimates are meaningful),
#: large enough to hold any XASR record for realistic labels.
PAGE_SIZE = 4096

_MAGIC = b"XMLDBMS1"
_HEADER = struct.Struct(">8sIIII")  # magic, page_size, npages, free, catalog

#: Page id value meaning "no page".
NO_PAGE = 0


class Pager:
    """Reads, writes, allocates and frees fixed-size pages in one file.

    Freed pages form an intrusive singly-linked free list: the first four
    bytes of a free page hold the id of the next free page.
    """

    def __init__(self, path: str, page_size: int = PAGE_SIZE,
                 create: bool = False):
        self.path = path
        self.page_size = page_size
        self._lock = threading.RLock()
        #: While > 0, header mutations stay in memory only (see
        #: :meth:`defer_header_writes`) and allocation never touches the
        #: on-disk free list.
        self._header_deferred = 0
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        if create or not exists:
            self._file = open(path, "w+b")
            self.num_pages = 1
            self.free_head = NO_PAGE
            self.catalog_root = NO_PAGE
            self._write_header()
        else:
            self._file = open(path, "r+b")
            self._read_header()
        #: Physical I/O counters (distinct from buffer-pool logical counters).
        self.pages_read = 0
        self.pages_written = 0

    # -- header -------------------------------------------------------------

    def _write_header(self) -> None:
        if self._header_deferred:
            return
        self._file.seek(0)
        self._file.write(self.header_page_image())

    def header_page_image(self) -> bytes:
        """Page 0 as it would be written for the current in-memory state.

        The write-ahead log records this image at commit so recovery can
        restore the header (num_pages, free list, catalog root) along
        with the data pages.
        """
        header = _HEADER.pack(_MAGIC, self.page_size, self.num_pages,
                              self.free_head, self.catalog_root)
        return header + b"\x00" * (self.page_size - len(header))

    def defer_header_writes(self) -> None:
        """Keep header mutations in memory until :meth:`resume_header_writes`.

        Used by write transactions: while deferred, a crash leaves the
        on-disk header untouched, so uncommitted file growth is invisible
        (at worst, leaked pages).  Deferral also makes :meth:`allocate_page`
        skip the on-disk free list — popping it would have to read the next
        pointer from a page whose current content may only exist in the
        buffer pool.  Nestable; balanced by ``resume_header_writes``.
        """
        with self._lock:
            self._header_deferred += 1

    def resume_header_writes(self, write: bool = True) -> None:
        """End one deferral level; ``write=True`` persists the header."""
        with self._lock:
            if self._header_deferred <= 0:
                raise PageError("resume_header_writes without deferral")
            self._header_deferred -= 1
            if write and not self._header_deferred:
                self._write_header()

    def header_state(self) -> tuple[int, int, int]:
        """Snapshot of ``(num_pages, free_head, catalog_root)``."""
        with self._lock:
            return self.num_pages, self.free_head, self.catalog_root

    def restore_header_state(self, state: tuple[int, int, int]) -> None:
        """Reset the in-memory header to an earlier snapshot.

        Used when aborting a write transaction: the snapshot from
        transaction start *is* the last committed state (the on-disk
        header may be older — it only catches up at checkpoints).
        Allocations made since are forgotten; the file may stay grown —
        leaked pages, never corruption.
        """
        with self._lock:
            self.num_pages, self.free_head, self.catalog_root = state

    #: Smallest page size a header is accepted with.  Anything below this
    #: cannot hold the header itself plus a minimal B+-tree node, so a
    #: smaller value in a header is corruption, not configuration.
    MIN_PAGE_SIZE = 128

    def _read_header(self) -> None:
        self._file.seek(0)
        raw = self._file.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise PageError(f"{self.path}: truncated header "
                            f"({len(raw)} bytes, need {_HEADER.size})")
        try:
            magic, page_size, num_pages, free_head, catalog_root = \
                _HEADER.unpack(raw)
        except struct.error as exc:  # pragma: no cover - defensive
            raise PageError(f"{self.path}: unreadable header "
                            f"({exc})") from None
        if magic != _MAGIC:
            raise PageError(f"{self.path}: not an XML-DBMS file")
        # A well-formed magic does not make the rest of the header sane:
        # a corrupt page_size of 0 would otherwise surface much later as
        # a raw struct.error (or ZeroDivisionError) deep inside the
        # B+-tree layer.  Validate everything the rest of the storage
        # stack implicitly relies on, and blame the file by path.
        if page_size < self.MIN_PAGE_SIZE:
            raise PageError(f"{self.path}: corrupt header "
                            f"(page_size={page_size}, minimum "
                            f"{self.MIN_PAGE_SIZE})")
        if num_pages < 1:
            raise PageError(f"{self.path}: corrupt header "
                            f"(num_pages={num_pages})")
        self.page_size = page_size
        self.num_pages = num_pages
        self.free_head = free_head
        self.catalog_root = catalog_root

    def write_header(self) -> None:
        """Persist the in-memory header now (checkpoints call this: the
        commit path leaves the on-disk header to WAL replay, so it must
        be written back before the log is dropped)."""
        with self._lock:
            deferred, self._header_deferred = self._header_deferred, 0
            try:
                self._write_header()
            finally:
                self._header_deferred = deferred

    def set_catalog_root(self, page_id: int) -> None:
        """Persist the catalog B+-tree root in the header."""
        with self._lock:
            self.catalog_root = page_id
            self._write_header()

    # -- page I/O -------------------------------------------------------------

    def _check(self, page_id: int) -> None:
        if page_id <= 0 or page_id >= self.num_pages:
            raise PageError(f"page id {page_id} out of range "
                            f"(1..{self.num_pages - 1})")

    def read_page(self, page_id: int) -> bytearray:
        """Read one page; returns a mutable copy of its bytes."""
        with self._lock:
            self._check(page_id)
            self._file.seek(page_id * self.page_size)
            data = self._file.read(self.page_size)
            if len(data) < self.page_size:
                data = data + b"\x00" * (self.page_size - len(data))
            self.pages_read += 1
            return bytearray(data)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one full page."""
        with self._lock:
            self._check(page_id)
            if len(data) != self.page_size:
                raise PageError(f"page write of {len(data)} bytes, "
                                f"expected {self.page_size}")
            self._file.seek(page_id * self.page_size)
            self._file.write(data)
            self.pages_written += 1

    # -- allocation ----------------------------------------------------------

    def allocate_page(self) -> int:
        """Allocate a page, reusing the free list when possible.

        Under deferred header writes (an open write transaction) the free
        list is never popped: its next pointers live in page content that
        a transaction may have modified only in the buffer pool, so the
        file always grows instead.  Pages freed by the transaction join
        the list at commit and are reused afterwards.
        """
        with self._lock:
            if self.free_head != NO_PAGE and not self._header_deferred:
                page_id = self.free_head
                page = self.read_page(page_id)
                (self.free_head,) = struct.unpack_from(">I", page, 0)
                self._write_header()
                return page_id
            page_id = self.num_pages
            self.num_pages += 1
            self._file.seek(page_id * self.page_size)
            self._file.write(b"\x00" * self.page_size)
            self._write_header()
            return page_id

    def free_page(self, page_id: int) -> None:
        """Return a page to the free list."""
        with self._lock:
            self._check(page_id)
            page = bytearray(self.page_size)
            struct.pack_into(">I", page, 0, self.free_head)
            self.write_page(page_id, bytes(page))
            self.free_head = page_id
            self._write_header()

    def free_page_count(self) -> int:
        """Length of the free list (walks it; for tests/diagnostics)."""
        with self._lock:
            count = 0
            current = self.free_head
            while current != NO_PAGE:
                count += 1
                page = self.read_page(current)
                (current,) = struct.unpack_from(">I", page, 0)
            return count

    # -- lifecycle -------------------------------------------------------------

    def sync(self) -> None:
        """Flush OS buffers to stable storage."""
        with self._lock:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            self._write_header()
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
