"""Page-addressed file storage.

A database file is an array of fixed-size pages.  Page 0 is the header
page; it stores a magic string, the page size, the page count, the head of
the free-page list, and the root page id of the catalog B+-tree.

The pager deals exclusively in whole pages — callers are expected to go
through the buffer pool (:mod:`repro.storage.buffer`) rather than use
:meth:`Pager.read_page`/:meth:`Pager.write_page` directly, so that all I/O
is accounted.

All public operations are thread-safe: a single mutex serializes the
``seek``/``read``/``write`` pairs (which are not atomic on a shared file
object) and the header/free-list updates.  The pager is the leaf of the
storage lock order — it never calls back up into the buffer pool — so
holding its mutex can never participate in a deadlock cycle.
"""

from __future__ import annotations

import os
import struct
import threading

from repro.errors import PageError

#: Default page size in bytes.  Small enough that scaled-down documents
#: still span many pages (so page-count cost estimates are meaningful),
#: large enough to hold any XASR record for realistic labels.
PAGE_SIZE = 4096

_MAGIC = b"XMLDBMS1"
_HEADER = struct.Struct(">8sIIII")  # magic, page_size, npages, free, catalog

#: Page id value meaning "no page".
NO_PAGE = 0


class Pager:
    """Reads, writes, allocates and frees fixed-size pages in one file.

    Freed pages form an intrusive singly-linked free list: the first four
    bytes of a free page hold the id of the next free page.
    """

    def __init__(self, path: str, page_size: int = PAGE_SIZE,
                 create: bool = False):
        self.path = path
        self.page_size = page_size
        self._lock = threading.RLock()
        exists = os.path.exists(path) and os.path.getsize(path) > 0
        if create or not exists:
            self._file = open(path, "w+b")
            self.num_pages = 1
            self.free_head = NO_PAGE
            self.catalog_root = NO_PAGE
            self._write_header()
        else:
            self._file = open(path, "r+b")
            self._read_header()
        #: Physical I/O counters (distinct from buffer-pool logical counters).
        self.pages_read = 0
        self.pages_written = 0

    # -- header -------------------------------------------------------------

    def _write_header(self) -> None:
        header = _HEADER.pack(_MAGIC, self.page_size, self.num_pages,
                              self.free_head, self.catalog_root)
        page = header + b"\x00" * (self.page_size - len(header))
        self._file.seek(0)
        self._file.write(page)

    def _read_header(self) -> None:
        self._file.seek(0)
        raw = self._file.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            raise PageError(f"{self.path}: truncated header")
        magic, page_size, num_pages, free_head, catalog_root = \
            _HEADER.unpack(raw)
        if magic != _MAGIC:
            raise PageError(f"{self.path}: not an XML-DBMS file")
        self.page_size = page_size
        self.num_pages = num_pages
        self.free_head = free_head
        self.catalog_root = catalog_root

    def set_catalog_root(self, page_id: int) -> None:
        """Persist the catalog B+-tree root in the header."""
        with self._lock:
            self.catalog_root = page_id
            self._write_header()

    # -- page I/O -------------------------------------------------------------

    def _check(self, page_id: int) -> None:
        if page_id <= 0 or page_id >= self.num_pages:
            raise PageError(f"page id {page_id} out of range "
                            f"(1..{self.num_pages - 1})")

    def read_page(self, page_id: int) -> bytearray:
        """Read one page; returns a mutable copy of its bytes."""
        with self._lock:
            self._check(page_id)
            self._file.seek(page_id * self.page_size)
            data = self._file.read(self.page_size)
            if len(data) < self.page_size:
                data = data + b"\x00" * (self.page_size - len(data))
            self.pages_read += 1
            return bytearray(data)

    def write_page(self, page_id: int, data: bytes) -> None:
        """Write one full page."""
        with self._lock:
            self._check(page_id)
            if len(data) != self.page_size:
                raise PageError(f"page write of {len(data)} bytes, "
                                f"expected {self.page_size}")
            self._file.seek(page_id * self.page_size)
            self._file.write(data)
            self.pages_written += 1

    # -- allocation ----------------------------------------------------------

    def allocate_page(self) -> int:
        """Allocate a page, reusing the free list when possible."""
        with self._lock:
            if self.free_head != NO_PAGE:
                page_id = self.free_head
                page = self.read_page(page_id)
                (self.free_head,) = struct.unpack_from(">I", page, 0)
                self._write_header()
                return page_id
            page_id = self.num_pages
            self.num_pages += 1
            self._file.seek(page_id * self.page_size)
            self._file.write(b"\x00" * self.page_size)
            self._write_header()
            return page_id

    def free_page(self, page_id: int) -> None:
        """Return a page to the free list."""
        with self._lock:
            self._check(page_id)
            page = bytearray(self.page_size)
            struct.pack_into(">I", page, 0, self.free_head)
            self.write_page(page_id, bytes(page))
            self.free_head = page_id
            self._write_header()

    # -- lifecycle -------------------------------------------------------------

    def sync(self) -> None:
        """Flush OS buffers to stable storage."""
        with self._lock:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        with self._lock:
            self._write_header()
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
