"""Chained overflow pages for values larger than a page can hold.

XASR ``value`` columns are usually short (labels, author names), but text
nodes can in principle exceed the page size.  Rather than cap record size,
long byte strings are spilled into a chain of overflow pages and the record
stores a fixed-size token ``(first_page_id, total_length)``.

Layout of an overflow page::

    next_page_id : u32   (0 = end of chain)
    chunk_length : u16
    chunk bytes ...
"""

from __future__ import annotations

import struct

from repro.errors import StorageError
from repro.storage.buffer import BufferPool

_HEADER = struct.Struct(">IH")


class OverflowStore:
    """Store and retrieve long byte strings in page chains."""

    def __init__(self, buffer_pool: BufferPool):
        self.buffer_pool = buffer_pool
        self._chunk_capacity = buffer_pool.pager.page_size - _HEADER.size

    def store(self, data: bytes) -> tuple[int, int]:
        """Write ``data`` into a fresh chain; returns ``(head_page, length)``."""
        if not data:
            raise StorageError("refusing to store an empty overflow value")
        chunks = [data[i:i + self._chunk_capacity]
                  for i in range(0, len(data), self._chunk_capacity)]
        head_page = 0
        # Build the chain back-to-front so each page knows its successor.
        next_page = 0
        for chunk in reversed(chunks):
            page_id, page = self.buffer_pool.new_page()
            _HEADER.pack_into(page, 0, next_page, len(chunk))
            page[_HEADER.size:_HEADER.size + len(chunk)] = chunk
            self.buffer_pool.unpin(page_id, dirty=True)
            next_page = page_id
        head_page = next_page
        return head_page, len(data)

    def load(self, head_page: int, length: int) -> bytes:
        """Read a stored value back."""
        parts: list[bytes] = []
        page_id = head_page
        remaining = length
        while page_id != 0:
            with self.buffer_pool.pinned(page_id) as page:
                next_page, chunk_length = _HEADER.unpack_from(page, 0)
                parts.append(bytes(page[_HEADER.size:
                                        _HEADER.size + chunk_length]))
            remaining -= chunk_length
            page_id = next_page
        if remaining != 0:
            raise StorageError(
                f"overflow chain at page {head_page} has wrong length "
                f"(off by {remaining} bytes)")
        return b"".join(parts)

    def load_prefix(self, head_page: int) -> bytes:
        """The first chunk of a chain, without walking the rest.

        Enough for any fixed-length prefix shorter than a page — e.g.
        rebuilding truncated label-index keys while rekeying records —
        where loading the whole value would make the operation scale
        with value size instead of prefix size.
        """
        with self.buffer_pool.pinned(head_page) as page:
            __, chunk_length = _HEADER.unpack_from(page, 0)
            return bytes(page[_HEADER.size:_HEADER.size + chunk_length])

    def free(self, head_page: int) -> None:
        """Release every page of a chain back to the free list."""
        page_id = head_page
        while page_id != 0:
            with self.buffer_pool.pinned(page_id) as page:
                (next_page,) = struct.unpack_from(">I", page, 0)
            self.buffer_pool.free_page(page_id)
            page_id = next_page
