"""Milestones 3 & 4: the algebraic query engine.

Pipeline per query::

    XQ AST ─translate→ TPM ─(merge, eliminate)→ TPM' ─plan per PSX→
    physical plans ─execute→ binding tuples ─relfor body→ result nodes

Plans are built once per relfor (they depend only on the block's
structure); nested, un-merged relfors re-execute their plan per outer
binding — precisely the inefficiency the paper discusses for queries whose
relfors cannot be merged across constructors.

The relfor evaluation contract comes straight from the paper's semantics:
the PSX block yields the *set* of vartuple bindings, hierarchically sorted
in document order, and the body is evaluated per binding with results
concatenated.
"""

from __future__ import annotations

import threading
from collections.abc import Iterator

from repro.algebra.merge import (
    eliminate_redundant_relations,
    merge_relfors,
    promote_residuals,
)
from repro.algebra.tpm import (
    RelFor,
    TpmConstr,
    TpmEmpty,
    TpmExpr,
    TpmIf,
    TpmSequence,
    TpmText,
    TpmVarOut,
)
from repro.algebra.translate import translate
from repro.engine.navigational import NavigationalEvaluator
from repro.errors import XQEvalError
from repro.optimizer.planner import Planner, PlannerConfig
from repro.physical.materialize import instantiate_plan, reset_materializers
from repro.physical.context import (
    Bindings,
    DEFAULT_BATCH_SIZE,
    ExecutionContext,
    is_external_node,
    iter_blocks,
)
from repro.physical.operators import PhysicalOp
from repro.xasr.document import StoredDocument
from repro.xasr.schema import XasrNode
from repro.xmlkit.dom import Element, Node, Text
from repro.xq.ast import Query, ROOT_VAR


#: One physical plan per RelFor node of a compiled TPM tree, keyed by the
#: relfor's identity.  A plan set belongs to exactly one TPM tree and must
#: stay with it (a prepared query owns both), so the id-keys stay valid.
PlanSet = dict[int, PhysicalOp]


class AlgebraicEvaluator:
    """TPM-based evaluation with a configurable optimization level."""

    def __init__(self, document: StoredDocument,
                 config: PlannerConfig | None = None,
                 merge: bool = True,
                 eliminate_redundant: bool = True,
                 carry_out_values: bool = True):
        self.document = document
        self.config = config or PlannerConfig()
        self.merge = merge
        self.eliminate_redundant = eliminate_redundant
        self.carry_out_values = carry_out_values
        self.planner = Planner(document.statistics, self.config,
                               value_indexes=document.value_index_labels)
        self.last_tpm: TpmExpr | None = None
        # Guards lazy plan population: a shared PlanSet (one per
        # CompiledQuery) may be filled from several executing threads.
        self._plan_lock = threading.Lock()

    # -- compilation ---------------------------------------------------------

    def compile(self, query: Query) -> TpmExpr:
        """Translate and rewrite a query; plans are built lazily."""
        tpm = translate(query, carry_out_values=self.carry_out_values)
        if self.merge:
            tpm = merge_relfors(tpm)
        if self.eliminate_redundant:
            tpm = eliminate_redundant_relations(tpm)
        # Promotion is semantics-preserving (the typing check discharges
        # statically), so every algebraic engine applies it; what differs
        # per profile is whether the planner can *exploit* the resulting
        # value-join condition.
        tpm = promote_residuals(tpm)
        self.last_tpm = tpm
        return tpm

    def plan_for(self, relfor: RelFor,
                 plans: PlanSet | None = None) -> PhysicalOp:
        """The physical plan for one relfor, cached in ``plans`` if given.

        Thread-safe: double-checked under the evaluator's plan lock, so
        two sessions hitting the same not-yet-planned relfor of a shared
        compiled query agree on one plan instead of racing the dict.
        """
        if plans is None:
            return self.planner.plan(relfor.source)
        plan = plans.get(id(relfor))
        if plan is None:
            with self._plan_lock:
                plan = plans.get(id(relfor))
                if plan is None:
                    plan = self.planner.plan(relfor.source)
                    plans[id(relfor)] = plan
        return plan

    def explain(self, query: Query) -> str:
        """Human-readable TPM tree and physical plans for ``query``."""
        return self.explain_compiled(self.compile(query), {})

    def explain_compiled(self, tpm: TpmExpr, plans: PlanSet) -> str:
        """Explain an already-compiled TPM tree, reusing its plan set."""
        lines = [tpm.describe(), ""]
        for relfor in _iter_relfors(tpm):
            plan = self.plan_for(relfor, plans)
            vars_ = ", ".join(f"${v}" for v in relfor.vartuple)
            lines.append(f"plan for relfor ({vars_}):")
            lines.append(plan.explain(2))
            lines.append("")
        return "\n".join(lines).rstrip()

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, query: Query,
                 deadline: float | None = None,
                 memory_budget: int | None = None) -> list[Node]:
        """Run ``query`` and return the result sequence as DOM nodes."""
        return list(self.stream(self.compile(query), {},
                                deadline=deadline,
                                memory_budget=memory_budget))

    def stream(self, tpm: TpmExpr, plans: PlanSet,
               env: dict[str, XasrNode] | None = None,
               deadline: float | None = None,
               memory_budget: int | None = None,
               batch_size: int = DEFAULT_BATCH_SIZE,
               profiler=None, trace=None) -> Iterator[Node]:
        """Lazily evaluate a compiled TPM tree, reusing its plan set.

        ``env`` pre-binds external variables (prepared-query parameters).
        ``batch_size`` sets the block size the physical operator tree is
        pulled with (binding tuples travel between operators in batches
        of up to this many rows).  The shared plan set carries only the
        (expensive) planning result; each execution runs a private
        instance of every plan it touches
        (:func:`~repro.physical.materialize.instantiate_plan`), so
        concurrently open cursors over one prepared query never share
        materialised state.  An execution's intermediates are reset when
        the generator is exhausted *or closed early* — a half-consumed
        cursor releases its spill storage the moment it is closed.
        """
        ctx = ExecutionContext(self.document, deadline=deadline,
                               memory_budget=memory_budget,
                               batch_size=batch_size,
                               profiler=profiler, trace=trace)
        full_env: dict[str, XasrNode] = {ROOT_VAR: self.document.root()}
        if env:
            full_env.update(env)
        execution_plans: PlanSet = {}
        try:
            yield from self._eval(tpm, ctx, full_env, plans,
                                  execution_plans)
        finally:
            for plan in execution_plans.values():
                reset_materializers(plan, self.document.db)

    def stream_batches(self, tpm: TpmExpr, plans: PlanSet,
                       env: dict[str, XasrNode] | None = None,
                       deadline: float | None = None,
                       memory_budget: int | None = None,
                       batch_size: int = DEFAULT_BATCH_SIZE,
                       profiler=None, trace=None
                       ) -> Iterator[list[Node]]:
        """Batched evaluation: result nodes in blocks of ``batch_size``.

        The physical operator tree underneath runs block-at-a-time with
        the same ``batch_size``; this re-blocks the produced result nodes
        so the cursor layer can serve ``fetch(n)`` calls out of the
        current block without re-entering the pipeline.  Closing the
        returned generator tears the execution down exactly like closing
        :meth:`stream`.
        """
        nodes = self.stream(tpm, plans, env=env, deadline=deadline,
                            memory_budget=memory_budget,
                            batch_size=batch_size,
                            profiler=profiler, trace=trace)
        yield from iter_blocks(nodes, max(1, batch_size))

    def _eval(self, expr: TpmExpr, ctx: ExecutionContext,
              env: dict[str, XasrNode], plans: PlanSet,
              execution_plans: PlanSet) -> Iterator[Node]:
        if isinstance(expr, TpmEmpty):
            return
        if isinstance(expr, TpmText):
            yield Text(expr.text)
            return
        if isinstance(expr, TpmVarOut):
            try:
                node = env[expr.var]
            except KeyError:
                raise XQEvalError(f"unbound variable ${expr.var}") from None
            if is_external_node(node):
                yield Text(node.value)
                return
            yield self.document.subtree(node)
            return
        if isinstance(expr, TpmConstr):
            element = Element(expr.label)
            for item in self._eval(expr.body, ctx, env, plans, execution_plans):
                element.append(item)
            yield element
            return
        if isinstance(expr, TpmSequence):
            for part in expr.parts:
                yield from self._eval(part, ctx, env, plans, execution_plans)
            return
        if isinstance(expr, TpmIf):
            evaluator = NavigationalEvaluator(self.document,
                                              ticker=ctx.tick)
            if evaluator.condition(expr.cond, dict(env)):
                yield from self._eval(expr.body, ctx, env, plans, execution_plans)
            return
        if isinstance(expr, RelFor):
            plan = execution_plans.get(id(expr))
            if plan is None:
                # Planning is shared across executions; the executed tree
                # is a private instance so concurrent cursors over one
                # prepared query cannot share materialised state.
                plan = instantiate_plan(self.plan_for(expr, plans))
                execution_plans[id(expr)] = plan
                if ctx.profiler is not None:
                    label = ", ".join(f"${var}" for var in expr.vartuple)
                    ctx.profiler.register_plan(label or "()", plan)
            # The paper: an un-merged inner relfor "will be evaluated for
            # each new binding" — materialised intermediates belong to one
            # execution and are invalid once the environment changes.
            reset_materializers(plan, self.document.db)
            bindings = Bindings(env)
            # Binding tuples are pulled block-at-a-time: the operator
            # tree produces batches of up to ctx.batch_size rows, and the
            # relfor body is evaluated per row of the current batch.
            row_batches = plan.batches(ctx, bindings)
            if not expr.vartuple:
                # Nullary relfor: pure existence check — evaluate the body
                # once iff the condition relation is non-empty.
                try:
                    for batch in row_batches:
                        if batch:
                            yield from self._eval(expr.body, ctx, env,
                                                  plans, execution_plans)
                            break
                finally:
                    row_batches.close()
                return
            for batch in row_batches:
                for row in batch:
                    inner = dict(env)
                    for var, node in zip(expr.vartuple, row, strict=True):
                        inner[var] = node
                    yield from self._eval(expr.body, ctx, inner, plans,
                                          execution_plans)
            return
        raise XQEvalError(f"cannot evaluate TPM node {expr!r}")


def iter_relfors(expr: TpmExpr) -> Iterator[RelFor]:
    """All relfor nodes of a TPM tree, outermost first."""
    yield from _iter_relfors(expr)


def _iter_relfors(expr: TpmExpr) -> Iterator[RelFor]:
    if isinstance(expr, RelFor):
        yield expr
        yield from _iter_relfors(expr.body)
    elif isinstance(expr, TpmConstr):
        yield from _iter_relfors(expr.body)
    elif isinstance(expr, TpmSequence):
        for part in expr.parts:
            yield from _iter_relfors(part)
    elif isinstance(expr, TpmIf):
        yield from _iter_relfors(expr.body)


