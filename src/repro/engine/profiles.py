"""Engine profiles: the milestone ladder and the Figure-7 population.

An :class:`EngineProfile` bundles every knob that distinguished one
student engine from another: whether it translates to the algebra at all,
which rewrites it applies, which indexes and join methods it may use,
whether its join order is cost-chosen, how well its estimator is
calibrated, and how it guarantees document order.

Two families are provided:

* :data:`MILESTONE_PROFILES` — ``m1`` (in-memory), ``m2`` (navigational
  secondary storage), ``m3`` (algebraic, heuristic optimization), ``m4``
  (cost-based + indexes): the course's four milestones, used by the
  ablation benchmark that demonstrates the "orders of magnitude" claim;

* :data:`TOP_FIVE` — five profiles engineered to reproduce the *shape* of
  Figure 7:

  - ``engine-1``: the all-round winner — full milestone-4 optimizer with a
    calibrated estimator; moderate on everything, best total.
  - ``engine-2``: brilliant but mis-calibrated — same optimizer, but its
    estimator ignores label skew ("uniform-labels").  Near-instant on
    tests 1–4 (it aggressively exploits semijoins and indexes), but on the
    test-5 query ("two nested, yet unrelated, for-loops ... two joins with
    very different selectivities") the skew-blind estimate puts "the very
    unselective join at the bottom of the plan" — time-out.
  - ``engine-3``: solid milestone-4 engine without join reordering;
    survives most tests, times out on the descendant-heavy test 3.
  - ``engine-4``: has the label index (hence ~0 s on the non-existent
    label test 4 and the highly selective test 2) but no INL joins and no
    reordering: times out on tests 3 and 5.
  - ``engine-5``: a milestone-3 engine — algebra and selection pushing but
    no indexes at all; slow everywhere, times out on 3 and 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.optimizer.planner import PlannerConfig


@dataclass(frozen=True)
class EngineProfile:
    """Everything that defines one engine's behaviour."""

    name: str
    description: str
    #: "memory" (milestone 1), "navigational" (milestone 2) or
    #: "algebraic" (milestones 3/4).
    evaluator: str = "algebraic"
    merge_relfors: bool = True
    eliminate_redundant: bool = True
    carry_out_values: bool = True
    planner: PlannerConfig = field(default_factory=PlannerConfig)

    def with_(self, **changes) -> "EngineProfile":
        return replace(self, **changes)


#: The course's four milestones.
MILESTONE_PROFILES: dict[str, EngineProfile] = {
    "m1": EngineProfile(
        name="m1",
        description="Milestone 1: in-memory evaluator (DOM, no storage)",
        evaluator="memory"),
    "m2": EngineProfile(
        name="m2",
        description="Milestone 2: navigational evaluator on secondary "
                    "storage",
        evaluator="navigational"),
    "m3": EngineProfile(
        name="m3",
        description="Milestone 3: TPM algebra, selection pushing, "
                    "order-preserving joins; no indexes, no cost model",
        planner=PlannerConfig(
            use_label_index=False,
            use_parent_index=True,   # the child axis *is* milestone 2's
            use_primary_range=True,  # storage interface
            use_inl_join=False,
            use_semijoin=False,
            push_selections=True,
            create_joins=True,
            join_reorder="syntactic",
            order_strategy="preserve",
            cost_based=False)),
    "m4": EngineProfile(
        name="m4",
        description="Milestone 4: cost-based optimization, B+-tree "
                    "indexes, INL joins, semijoins",
        planner=PlannerConfig()),
}


def _top_five() -> dict[str, EngineProfile]:
    full = PlannerConfig()  # everything on, calibrated
    return {
        "engine-1": EngineProfile(
            name="engine-1",
            description="Full cost-based optimizer, calibrated estimator",
            planner=full),
        "engine-2": EngineProfile(
            name="engine-2",
            description="Full optimizer, skew-blind (uniform-label) "
                        "estimator — Figure 7's mis-estimate case",
            planner=replace(full, calibration="uniform-labels")),
        "engine-3": EngineProfile(
            name="engine-3",
            description="Indexes and INL joins, but syntactic join order "
                        "(no cost-based reordering)",
            planner=replace(full, join_reorder="syntactic",
                            use_semijoin=False, cost_based=False,
                            order_strategy="auto")),
        "engine-4": EngineProfile(
            name="engine-4",
            description="Label index only: no INL joins, no reordering, "
                        "no semijoins",
            planner=replace(full, use_inl_join=False, use_semijoin=False,
                            use_parent_index=False, use_primary_range=False,
                            join_reorder="syntactic", cost_based=False)),
        "engine-5": EngineProfile(
            name="engine-5",
            description="Milestone-3 engine: algebra without any indexes",
            planner=PlannerConfig(
                use_label_index=False, use_parent_index=False,
                use_primary_range=False, use_inl_join=False,
                use_semijoin=False, join_reorder="syntactic",
                order_strategy="sort", cost_based=False)),
    }


#: The five engines of Figure 7.
TOP_FIVE: dict[str, EngineProfile] = _top_five()

#: Every named profile.
ENGINE_PROFILES: dict[str, EngineProfile] = {**MILESTONE_PROFILES,
                                             **TOP_FIVE}
