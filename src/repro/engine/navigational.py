"""Milestone 2: the navigational, storage-backed XQ evaluator.

Identical denotational semantics to the in-memory evaluator
(:mod:`repro.xq.eval_memory`), but variables bind to
:class:`~repro.xasr.schema.XasrNode` tuples fetched through the buffer
pool, and never more than the current variable bindings are held in main
memory.  Navigation uses the XASR access paths:

* ``child`` axis → the ``(parent_in, in)`` secondary index;
* ``descendant`` axis → a clustered primary range scan of
  ``(x.in, x.out)``.

There is no algebra, no optimizer: for-loops nest exactly as written.
This is both the milestone-2 deliverable and the baseline the algebraic
engines are benchmarked against.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import XQEvalError, XQTypeError
from repro.xasr.document import StoredDocument
from repro.xasr.schema import ELEMENT, TEXT, TYPE_NAMES, XasrNode
from repro.xmlkit.dom import Element, Node, Text
from repro.xq.ast import (
    And,
    Axis,
    Condition,
    Constr,
    Empty,
    For,
    If,
    LabelTest,
    Not,
    Or,
    Query,
    ROOT_VAR,
    Sequence,
    Some,
    Step,
    TextLiteral,
    TextTest,
    TrueCond,
    Var,
    VarCmpConst,
    VarEqConst,
    VarEqVar,
    WildcardTest,
)

#: An environment binds variables to stored nodes.
StoredEnvironment = dict[str, XasrNode]


class NavigationalEvaluator:
    """Evaluate XQ queries directly over a stored document.

    ``ticker`` is an optional zero-argument callable invoked inside
    navigation loops — the engine facade wires it to the execution
    context's deadline check so even long fruitless navigations stay
    interruptible (the testbed "run under memory and time constraints"
    requirement).
    """

    def __init__(self, document: StoredDocument, ticker=None):
        self.document = document
        self._tick = ticker if ticker is not None else lambda: None

    # -- public API ---------------------------------------------------------

    def evaluate(self, query: Query,
                 environment: StoredEnvironment | None = None) -> list[Node]:
        """Run ``query``; returns result nodes as DOM trees.

        Result subtrees are reconstructed from storage only at output time
        ("the subtree to which a variable is bound is written to the
        output").
        """
        return list(self.stream(query, environment))

    def stream(self, query: Query,
               environment: StoredEnvironment | None = None
               ) -> Iterator[Node]:
        """Like :meth:`evaluate`, but yields result nodes lazily."""
        env: StoredEnvironment = {ROOT_VAR: self.document.root()}
        if environment:
            env.update(environment)
        yield from self._eval(query, env)

    # -- queries --------------------------------------------------------------

    def _eval(self, query: Query, env: StoredEnvironment) -> Iterator[Node]:
        if isinstance(query, Empty):
            return
        if isinstance(query, TextLiteral):
            yield Text(query.text)
            return
        if isinstance(query, Constr):
            element = Element(query.label)
            for item in self._eval(query.body, env):
                element.append(item)
            yield element
            return
        if isinstance(query, Sequence):
            yield from self._eval(query.left, env)
            yield from self._eval(query.right, env)
            return
        if isinstance(query, Var):
            node = self._lookup(env, query.name)
            yield self.document.subtree(node)
            return
        if isinstance(query, Step):
            for node in self.step(query, env):
                yield self.document.subtree(node)
            return
        if isinstance(query, For):
            for node in self.step(query.source, env):
                inner = dict(env)
                inner[query.var] = node
                yield from self._eval(query.body, inner)
            return
        if isinstance(query, If):
            if self.condition(query.cond, env):
                yield from self._eval(query.body, env)
            return
        raise XQEvalError(f"cannot evaluate query node {query!r}")

    # -- navigation --------------------------------------------------------------

    def step(self, step: Step, env: StoredEnvironment
             ) -> Iterator[XasrNode]:
        """Stored nodes reached by a step, in document order."""
        base = self._lookup(env, step.var)
        if base.is_text:
            return  # text nodes have no children or descendants
        if step.axis is Axis.CHILD:
            candidates = self.document.children(base.in_)
        else:
            candidates = self.document.descendants(base)
        test = step.test
        tick = self._tick
        if isinstance(test, LabelTest):
            wanted = test.name
            for node in candidates:
                tick()
                if node.type == ELEMENT and node.value == wanted:
                    yield node
        elif isinstance(test, WildcardTest):
            for node in candidates:
                tick()
                if node.type == ELEMENT:
                    yield node
        elif isinstance(test, TextTest):
            for node in candidates:
                tick()
                if node.type == TEXT:
                    yield node
        else:  # pragma: no cover - defensive
            raise XQEvalError(f"unknown node test {test!r}")

    # -- conditions ----------------------------------------------------------------

    def condition(self, cond: Condition, env: StoredEnvironment) -> bool:
        if isinstance(cond, TrueCond):
            return True
        if isinstance(cond, VarEqVar):
            return (self._text_value(env, cond.left)
                    == self._text_value(env, cond.right))
        if isinstance(cond, VarEqConst):
            return self._text_value(env, cond.var) == cond.literal
        if isinstance(cond, VarCmpConst):
            value = self._text_value(env, cond.var)
            return value < cond.literal if cond.op == "<" \
                else value > cond.literal
        if isinstance(cond, Some):
            for node in self.step(cond.source, env):
                inner = dict(env)
                inner[cond.var] = node
                if self.condition(cond.cond, inner):
                    return True
            return False
        if isinstance(cond, And):
            return (self.condition(cond.left, env)
                    and self.condition(cond.right, env))
        if isinstance(cond, Or):
            return (self.condition(cond.left, env)
                    or self.condition(cond.right, env))
        if isinstance(cond, Not):
            return not self.condition(cond.cond, env)
        raise XQEvalError(f"cannot evaluate condition {cond!r}")

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _lookup(env: StoredEnvironment, name: str) -> XasrNode:
        try:
            return env[name]
        except KeyError:
            raise XQEvalError(f"unbound variable ${name}") from None

    @staticmethod
    def _text_value(env: StoredEnvironment, name: str) -> str:
        node = NavigationalEvaluator._lookup(env, name)
        if node.type != TEXT:
            raise XQTypeError(
                f"comparison requires ${name} to be bound to a text node, "
                f"got a {TYPE_NAMES[node.type]} node")
        return node.value
