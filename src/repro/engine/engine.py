"""The engine facade: one profile + one stored document = one engine.

:class:`XQEngine` hides the milestone differences behind a single
interface::

    engine = XQEngine(db, "dblp", profile=TOP_FIVE["engine-1"])
    nodes = engine.execute('for $x in //article return $x')
    xml   = engine.execute_serialized('<out>{ //title }</out>')

The session layer builds on two further entry points: :meth:`prepare`
compiles a query once into a :class:`CompiledQuery` (AST + TPM tree +
physical plans), and :meth:`stream_compiled` executes a compiled query
lazily under fresh external-variable bindings, yielding result nodes one
at a time.

Resource limits are per-call: ``time_limit`` (seconds) and
``memory_budget`` (bytes of engine-controlled materialisation), raising
:class:`~repro.errors.ResourceLimitExceeded` — the exception the grading
tester converts into Figure 7's capped scores.  All three evaluator kinds
enforce them, including the milestone-1 in-memory evaluator.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Iterator

from repro.engine.algebraic import AlgebraicEvaluator, PlanSet
from repro.engine.navigational import NavigationalEvaluator
from repro.engine.profiles import ENGINE_PROFILES, EngineProfile
from repro.errors import BindingError, ReproError
from repro.physical.context import (
    DEFAULT_BATCH_SIZE,
    ExecutionContext,
    external_text_node,
    iter_blocks,
)
from repro.storage.db import Database
from repro.xasr.document import StoredDocument
from repro.xasr.schema import XasrNode
from repro.xmlkit.dom import Document, Node, Text
from repro.xmlkit.serializer import serialize
from repro.xq.ast import Program, Query
from repro.xq.eval_memory import stream as stream_in_memory
from repro.xq.parser import parse_program


class CompiledQuery:
    """One query, fully compiled for one engine.

    Holds everything whose construction :meth:`XQEngine.prepare` pays for
    exactly once: the parsed :class:`~repro.xq.ast.Program`, and — for
    algebraic profiles — the rewritten TPM tree plus the physical plans
    built for its relfors (plans are planned lazily, on first execution or
    explain).  Instances are shared freely across executions; per-run
    state (contexts, materialised intermediates) never lives here.
    """

    __slots__ = ("engine", "program", "tpm", "plans")

    def __init__(self, engine: "XQEngine", program: Program,
                 tpm=None):
        self.engine = engine
        self.program = program
        self.tpm = tpm
        self.plans: PlanSet = {}

    @property
    def required_variables(self) -> frozenset[str]:
        return self.program.required_variables()


class XQEngine:
    """Run XQ queries against a stored document under a given profile."""

    def __init__(self, db: Database, document_name: str,
                 profile: EngineProfile | str = "m4"):
        if isinstance(profile, str):
            try:
                profile = ENGINE_PROFILES[profile]
            except KeyError:
                raise ReproError(
                    f"unknown engine profile {profile!r}; available: "
                    f"{sorted(ENGINE_PROFILES)}") from None
        self.db = db
        self.profile = profile
        self.document = StoredDocument(db, document_name)
        self._dom: Document | None = None
        self._dom_lock = threading.Lock()
        self._algebraic: AlgebraicEvaluator | None = None
        if profile.evaluator == "algebraic":
            self._algebraic = AlgebraicEvaluator(
                self.document,
                config=profile.planner,
                merge=profile.merge_relfors,
                eliminate_redundant=profile.eliminate_redundant,
                carry_out_values=profile.carry_out_values)

    # -- helpers -------------------------------------------------------------

    def _parse(self, query: str | Query | Program) -> Program:
        if isinstance(query, str):
            return parse_program(query)
        if isinstance(query, Program):
            return query
        return Program(body=query)

    def _dom_document(self) -> Document:
        """The milestone-1 engine works on the DOM; build it lazily.

        Double-checked under a lock so concurrent first queries on an m1
        engine share one DOM build instead of racing two; after the
        build the DOM is only ever read.
        """
        if self._dom is None:
            with self._dom_lock:
                if self._dom is None:
                    self._dom = self.document.to_document()
        return self._dom

    def _external_env(self, bindings: dict[str, object] | None):
        """Convert binding values into the evaluator's node kind.

        Accepted values are plain strings and DOM :class:`Text` nodes; the
        milestone-1 evaluator binds DOM text nodes, the storage-backed
        evaluators bind synthetic XASR text nodes
        (:func:`~repro.physical.context.external_text_node`).
        """
        if not bindings:
            return {}
        env: dict[str, object] = {}
        in_memory = self.profile.evaluator == "memory"
        for name, value in bindings.items():
            if isinstance(value, Text):
                text = value.text
            elif isinstance(value, str):
                text = value
            else:
                raise BindingError(
                    f"binding ${name} must be a string or a text node, "
                    f"got {type(value).__name__}")
            env[name] = Text(text) if in_memory else external_text_node(text)
        return env

    # -- compilation ---------------------------------------------------------

    def prepare(self, query: str | Query | Program) -> CompiledQuery:
        """Parse (and, for algebraic profiles, translate) a query once."""
        program = self._parse(query)
        tpm = None
        if self._algebraic is not None:
            tpm = self._algebraic.compile(program.body)
        return CompiledQuery(self, program, tpm=tpm)

    # -- execution -----------------------------------------------------------------

    def stream_compiled(self, compiled: CompiledQuery,
                        bindings: dict[str, object] | None = None,
                        deadline: float | None = None,
                        memory_budget: int | None = None,
                        batch_size: int = DEFAULT_BATCH_SIZE,
                        profiler=None, trace=None
                        ) -> Iterator[Node]:
        """Lazily execute a compiled query under fresh bindings.

        ``batch_size`` sets the block size the algebraic engines pull
        binding tuples with; the non-algebraic evaluators are inherently
        item-at-a-time and ignore it.  ``profiler``/``trace`` carry the
        EXPLAIN ANALYZE collector and trace context into the vectorized
        pipeline (the milestone-1/2 evaluators have no physical
        operators to profile, so they ignore both).
        """
        env = self._external_env(bindings)
        kind = self.profile.evaluator
        if kind == "memory":
            ctx = ExecutionContext(None, deadline=deadline,
                                   memory_budget=memory_budget)
            return stream_in_memory(compiled.program.body,
                                    self._dom_document(),
                                    environment=env,
                                    ticker=ctx.tick, meter=ctx.meter)
        if kind == "navigational":
            ctx = ExecutionContext(self.document, deadline=deadline,
                                   memory_budget=memory_budget)
            evaluator = NavigationalEvaluator(self.document, ticker=ctx.tick)
            return evaluator.stream(compiled.program.body, env)
        assert self._algebraic is not None and compiled.tpm is not None
        stored_env: dict[str, XasrNode] = env  # type: ignore[assignment]
        return self._algebraic.stream(compiled.tpm, compiled.plans,
                                      env=stored_env, deadline=deadline,
                                      memory_budget=memory_budget,
                                      batch_size=batch_size,
                                      profiler=profiler, trace=trace)

    def stream_compiled_batches(self, compiled: CompiledQuery,
                                bindings: dict[str, object] | None = None,
                                deadline: float | None = None,
                                memory_budget: int | None = None,
                                batch_size: int = DEFAULT_BATCH_SIZE,
                                profiler=None, trace=None
                                ) -> Iterator[list[Node]]:
        """Batched execution: result nodes in blocks of ``batch_size``.

        For algebraic profiles the blocks come straight off the
        vectorized pipeline; for the milestone-1/2 evaluators the flat
        node stream is re-blocked so every profile presents the same
        batched cursor protocol.
        """
        if self.profile.evaluator == "algebraic":
            assert self._algebraic is not None and compiled.tpm is not None
            env = self._external_env(bindings)
            stored_env: dict[str, XasrNode] = env  # type: ignore[assignment]
            return self._algebraic.stream_batches(
                compiled.tpm, compiled.plans, env=stored_env,
                deadline=deadline, memory_budget=memory_budget,
                batch_size=batch_size, profiler=profiler, trace=trace)
        nodes = self.stream_compiled(compiled, bindings=bindings,
                                     deadline=deadline,
                                     memory_budget=memory_budget)
        return iter_blocks(nodes, max(1, batch_size))

    def execute(self, query: str | Query,
                time_limit: float | None = None,
                memory_budget: int | None = None) -> list[Node]:
        """Evaluate a query; returns the result sequence as DOM nodes."""
        deadline = (time.monotonic() + time_limit
                    if time_limit is not None else None)
        return list(self.stream_compiled(self.prepare(query),
                                         deadline=deadline,
                                         memory_budget=memory_budget))

    def execute_serialized(self, query: str | Query,
                           time_limit: float | None = None,
                           memory_budget: int | None = None,
                           indent: int | None = None) -> str:
        """Evaluate and serialize the result sequence to XML text."""
        nodes = self.execute(query, time_limit=time_limit,
                             memory_budget=memory_budget)
        return "".join(serialize(node, indent=indent) for node in nodes)

    def explain(self, query: str | Query) -> str:
        """TPM tree and physical plans (algebraic profiles only)."""
        if self._algebraic is None:
            return (f"profile {self.profile.name!r} uses the "
                    f"{self.profile.evaluator} evaluator (no plans)")
        return self._algebraic.explain(self._parse(query).body)
