"""The engine facade: one profile + one stored document = one engine.

:class:`XQEngine` hides the milestone differences behind a single
interface::

    engine = XQEngine(db, "dblp", profile=TOP_FIVE["engine-1"])
    nodes = engine.execute('for $x in //article return $x')
    xml   = engine.execute_serialized('<out>{ //title }</out>')

Resource limits are per-call: ``time_limit`` (seconds) and
``memory_budget`` (bytes of engine-controlled materialisation), raising
:class:`~repro.errors.ResourceLimitExceeded` — the exception the grading
tester converts into Figure 7's capped scores.
"""

from __future__ import annotations

import time

from repro.engine.algebraic import AlgebraicEvaluator
from repro.engine.navigational import NavigationalEvaluator
from repro.engine.profiles import ENGINE_PROFILES, EngineProfile
from repro.errors import ReproError
from repro.physical.context import ExecutionContext
from repro.storage.db import Database
from repro.xasr.document import StoredDocument
from repro.xmlkit.dom import Document, Node
from repro.xmlkit.serializer import serialize
from repro.xq.ast import Query
from repro.xq.eval_memory import evaluate as evaluate_in_memory
from repro.xq.parser import parse_query


class XQEngine:
    """Run XQ queries against a stored document under a given profile."""

    def __init__(self, db: Database, document_name: str,
                 profile: EngineProfile | str = "m4"):
        if isinstance(profile, str):
            try:
                profile = ENGINE_PROFILES[profile]
            except KeyError:
                raise ReproError(
                    f"unknown engine profile {profile!r}; available: "
                    f"{sorted(ENGINE_PROFILES)}") from None
        self.db = db
        self.profile = profile
        self.document = StoredDocument(db, document_name)
        self._dom: Document | None = None
        self._algebraic: AlgebraicEvaluator | None = None
        if profile.evaluator == "algebraic":
            self._algebraic = AlgebraicEvaluator(
                self.document,
                config=profile.planner,
                merge=profile.merge_relfors,
                eliminate_redundant=profile.eliminate_redundant,
                carry_out_values=profile.carry_out_values)

    # -- helpers -------------------------------------------------------------

    def _parse(self, query: str | Query) -> Query:
        if isinstance(query, str):
            return parse_query(query)
        return query

    def _dom_document(self) -> Document:
        """The milestone-1 engine works on the DOM; build it lazily."""
        if self._dom is None:
            self._dom = self.document.to_document()
        return self._dom

    # -- execution -----------------------------------------------------------------

    def execute(self, query: str | Query,
                time_limit: float | None = None,
                memory_budget: int | None = None) -> list[Node]:
        """Evaluate a query; returns the result sequence as DOM nodes."""
        ast = self._parse(query)
        deadline = (time.monotonic() + time_limit
                    if time_limit is not None else None)
        evaluator_kind = self.profile.evaluator
        if evaluator_kind == "memory":
            return evaluate_in_memory(ast, self._dom_document())
        if evaluator_kind == "navigational":
            return self._execute_navigational(ast, deadline, memory_budget)
        assert self._algebraic is not None
        return self._algebraic.evaluate(ast, deadline=deadline,
                                        memory_budget=memory_budget)

    def _execute_navigational(self, ast: Query, deadline: float | None,
                              memory_budget: int | None) -> list[Node]:
        ctx = ExecutionContext(self.document, deadline=deadline,
                               memory_budget=memory_budget)
        evaluator = NavigationalEvaluator(self.document, ticker=ctx.tick)
        return list(evaluator.stream(ast))

    def execute_serialized(self, query: str | Query,
                           time_limit: float | None = None,
                           memory_budget: int | None = None,
                           indent: int | None = None) -> str:
        """Evaluate and serialize the result sequence to XML text."""
        nodes = self.execute(query, time_limit=time_limit,
                             memory_budget=memory_budget)
        return "".join(serialize(node, indent=indent) for node in nodes)

    def explain(self, query: str | Query) -> str:
        """TPM tree and physical plans (algebraic profiles only)."""
        if self._algebraic is None:
            return (f"profile {self.profile.name!r} uses the "
                    f"{self.profile.evaluator} evaluator (no plans)")
        return self._algebraic.explain(self._parse(query))
