"""Query engines: the four milestones and the Figure-7 profiles.

* :mod:`~repro.engine.navigational` — milestone 2: storage-backed,
  tuple-at-a-time navigation, no algebra;
* :mod:`~repro.engine.algebraic` — milestones 3/4: TPM translation,
  algebraic rewriting and plan execution (heuristic or cost-based,
  depending on the profile);
* :mod:`~repro.engine.profiles` — :class:`EngineProfile`, the knob set that
  defines an engine (which optimizations it implements and how well its
  estimator is calibrated), plus the five concrete profiles behind the
  Figure 7 comparison;
* :mod:`~repro.engine.engine` — :class:`XQEngine`, the user-facing facade.
"""

from repro.engine.engine import XQEngine
from repro.engine.profiles import (
    ENGINE_PROFILES,
    MILESTONE_PROFILES,
    EngineProfile,
    TOP_FIVE,
)

__all__ = [
    "XQEngine",
    "EngineProfile",
    "ENGINE_PROFILES",
    "MILESTONE_PROFILES",
    "TOP_FIVE",
]
