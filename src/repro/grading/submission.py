"""The submission & test system.

"The submissions are stored in a submission pool and picked up using a
fair scheduling by a tester ... the students is sent an email containing
detailed test results, e.g., engine run-time errors, scalability problems
if any, the answers to the public queries in case they differ from the
correct answers, and the timing."

Students may submit "at any time and as often as necessary"; fairness is
round-robin over teams so one team's rapid-fire submissions cannot starve
the queue.  A submission here is an engine profile (standing in for the
students' C++ code drop) plus the team's identity.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.engine.profiles import EngineProfile
from repro.grading.tester import (
    CorrectnessResult,
    EfficiencyResult,
    Tester,
)
from repro.workloads.queries import EFFICIENCY_QUERIES


@dataclass
class Submission:
    """One code drop by one team."""

    team: str
    profile: EngineProfile
    submission_id: int = 0

    #: Filled by the tester.
    correctness: list[CorrectnessResult] = field(default_factory=list)
    efficiency: list[EfficiencyResult] = field(default_factory=list)
    tested: bool = False

    @property
    def passed_correctness(self) -> bool:
        return bool(self.correctness) and all(result.passed
                                              for result in
                                              self.correctness)

    @property
    def total_seconds(self) -> float:
        return sum(result.assigned_seconds
                   for result in self.efficiency)


class SubmissionSystem:
    """Pool + fair scheduler + report generation."""

    def __init__(self, tester: Tester, correctness_queries: dict[str, str]):
        self.tester = tester
        self.correctness_queries = correctness_queries
        self._queues: OrderedDict[str, deque[Submission]] = OrderedDict()
        self._round_robin: deque[str] = deque()
        self._counter = itertools.count(1)
        self.completed: list[Submission] = []

    # -- pool -------------------------------------------------------------------

    def submit(self, team: str, profile: EngineProfile) -> Submission:
        """Drop a submission into the pool (any time, as often as
        needed)."""
        submission = Submission(team, profile,
                                submission_id=next(self._counter))
        if team not in self._queues:
            self._queues[team] = deque()
            self._round_robin.append(team)
        self._queues[team].append(submission)
        return submission

    def pending_count(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    # -- fair scheduling -----------------------------------------------------------

    def next_submission(self) -> Submission | None:
        """Pick the next submission round-robin over teams."""
        for __ in range(len(self._round_robin)):
            team = self._round_robin[0]
            self._round_robin.rotate(-1)
            queue = self._queues.get(team)
            if queue:
                return queue.popleft()
        return None

    # -- testing ----------------------------------------------------------------------

    def process_one(self) -> Submission | None:
        """Test the next pending submission; returns it (or None)."""
        submission = self.next_submission()
        if submission is None:
            return None
        submission.correctness = self.tester.run_correctness(
            submission.profile, self.correctness_queries)
        if submission.passed_correctness:
            submission.efficiency = [
                self.tester.run_efficiency(submission.profile, query)
                for query in EFFICIENCY_QUERIES]
        submission.tested = True
        self.completed.append(submission)
        return submission

    def process_all(self) -> list[Submission]:
        """Drain the pool fairly; returns submissions in test order."""
        processed = []
        while True:
            submission = self.process_one()
            if submission is None:
                return processed
            processed.append(submission)

    # -- reports ------------------------------------------------------------------------

    @staticmethod
    def render_report(submission: Submission) -> str:
        """The e-mail the team receives within half a day."""
        lines = [
            f"From: submission-tester@dbs-course",
            f"To: team {submission.team}",
            f"Subject: results for submission #{submission.submission_id}",
            "",
        ]
        failures = [result for result in submission.correctness
                    if not result.passed]
        if failures:
            lines.append("CORRECTNESS: FAILED")
            for result in failures:
                lines.append(f"  {result.query_name}: {result.detail}")
            lines.append("")
            lines.append("Efficiency tests were skipped; fix correctness "
                         "first.")
            return "\n".join(lines)
        lines.append(f"CORRECTNESS: passed "
                     f"({len(submission.correctness)} queries)")
        lines.append("")
        lines.append("EFFICIENCY (assigned seconds; * = stopped at the "
                     "limit):")
        for result in submission.efficiency:
            mark = "*" if result.status != "ok" else ""
            lines.append(f"  {result.query_name}: "
                         f"{result.assigned_seconds:.2f}{mark} "
                         f"[{result.status}]")
        lines.append(f"  total: {submission.total_seconds:.2f}")
        return "\n".join(lines)
