"""The grading system of Section 3.

Rules implemented:

* "The best grade is represented by 100 points, which could be obtained
  solely in the final exam."
* Admission to the exam requires a runnable engine; passing requires ≥ 50
  exam points.
* "A successful submission of a milestone implementation by the
  early-bird review brought two points.  The penalty for missed deadlines
  (materialized as negative points) increases with the number of weeks of
  delay."
* "Small teams completing the final milestones were rewarded a few
  additional points."
* "To support excellence, the 10% and 25% most scalable query engines got
  additional bonus points.  As a result, 25% of the students that
  successfully passed the exam got more than 100 points in total."
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CourseRules:
    """Tunable constants of the grading scheme."""

    milestone_count: int = 4
    early_bird_points: int = 2
    #: Penalty per milestone = -(weeks late)·(weeks late + 1)/2 — "the
    #: penalty ... increases with the number of weeks of delay".
    lateness_factor: float = 1.0
    small_team_bonus: int = 2
    small_team_max_size: int = 2
    exam_pass_mark: int = 50
    top10_bonus: int = 8
    top25_bonus: int = 4


@dataclass
class StudentRecord:
    """One student's course trajectory."""

    name: str
    team: str
    team_size: int
    exam_points: float
    #: Weeks of delay per milestone; None = milestone never submitted.
    milestone_delays: list[int | None] = field(default_factory=list)
    #: Total efficiency-suite seconds of the team's engine (lower =
    #: more scalable); None = engine not runnable.
    engine_total_seconds: float | None = None

    bonus_points: float = 0.0

    def runnable_engine(self) -> bool:
        """Admission requirement: a runnable engine, all milestones in."""
        return (self.engine_total_seconds is not None
                and len(self.milestone_delays) > 0
                and all(delay is not None
                        for delay in self.milestone_delays))


class GradeBook:
    """Applies the rules to a cohort."""

    def __init__(self, rules: CourseRules | None = None):
        self.rules = rules or CourseRules()
        self.records: list[StudentRecord] = []

    def add(self, record: StudentRecord) -> None:
        self.records.append(record)

    # -- per-student components -----------------------------------------------

    def milestone_points(self, record: StudentRecord) -> float:
        """Early-bird points minus growing lateness penalties."""
        rules = self.rules
        points = 0.0
        for delay in record.milestone_delays:
            if delay is None:
                continue
            if delay <= 0:
                points += rules.early_bird_points
            else:
                points -= rules.lateness_factor * delay * (delay + 1) / 2
        return points

    def team_points(self, record: StudentRecord) -> float:
        if record.team_size <= self.rules.small_team_max_size \
                and record.runnable_engine():
            return float(self.rules.small_team_bonus)
        return 0.0

    def admitted_to_exam(self, record: StudentRecord) -> bool:
        return record.runnable_engine()

    def passed_exam(self, record: StudentRecord) -> bool:
        return (self.admitted_to_exam(record)
                and record.exam_points >= self.rules.exam_pass_mark)

    # -- scalability bonus ------------------------------------------------------

    def apply_scalability_bonus(self) -> None:
        """Award the top-10% and top-25% most scalable engines."""
        ranked = sorted(
            (record for record in self.records
             if record.engine_total_seconds is not None),
            key=lambda record: record.engine_total_seconds)
        if not ranked:
            return
        top10_cut = max(1, math.ceil(len(ranked) * 0.10))
        top25_cut = max(1, math.ceil(len(ranked) * 0.25))
        for rank, record in enumerate(ranked):
            record.bonus_points = 0.0
            if rank < top10_cut:
                record.bonus_points = float(self.rules.top10_bonus)
            elif rank < top25_cut:
                record.bonus_points = float(self.rules.top25_bonus)

    # -- totals -------------------------------------------------------------------

    def total_points(self, record: StudentRecord) -> float:
        """Final score: exam + milestones + team + scalability bonus."""
        if not self.passed_exam(record):
            return 0.0
        return (record.exam_points
                + self.milestone_points(record)
                + self.team_points(record)
                + record.bonus_points)

    def summary(self) -> dict[str, float]:
        """Cohort statistics, including the paper's '>100 points'
        fraction."""
        self.apply_scalability_bonus()
        passed = [record for record in self.records
                  if self.passed_exam(record)]
        over_100 = [record for record in passed
                    if self.total_points(record) > 100]
        return {
            "students": float(len(self.records)),
            "admitted": float(sum(1 for record in self.records
                                  if self.admitted_to_exam(record))),
            "passed": float(len(passed)),
            "over_100": float(len(over_100)),
            "over_100_fraction": (len(over_100) / len(passed)
                                  if passed else 0.0),
        }
