"""Correctness and efficiency testing (Section 4).

**Correctness**: every engine's serialized result is compared against the
milestone-1 in-memory oracle — byte equality of the canonical
serialization.  (Galax served as the students' reference; our oracle
serves the same role.)

**Efficiency**: queries run under a wall-clock limit and a memory budget
for engine-controlled materialisation.  The capping rule is Figure 7's
caption verbatim: "The engines that needed more than 2400 seconds (20 MB)
were stopped and assigned 2400 (4800) seconds" — i.e. over-time scores
the cap, over-memory scores twice the cap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.dbms import XmlDbms
from repro.engine.profiles import EngineProfile
from repro.errors import ReproError, ResourceLimitExceeded
from repro.workloads.queries import EFFICIENCY_QUERIES, EfficiencyQuery


@dataclass
class CorrectnessResult:
    """Outcome of one correctness test."""

    query_name: str
    document: str
    passed: bool
    detail: str = ""


@dataclass
class EfficiencyResult:
    """Outcome of one efficiency test.

    ``status`` is ``ok``, ``timeout``, ``memory`` or ``error``;
    ``assigned_seconds`` applies the Figure 7 capping rule and is what
    enters the totals.
    """

    query_name: str
    status: str
    elapsed_seconds: float
    assigned_seconds: float
    detail: str = ""


@dataclass
class Figure7Row:
    """One engine's row of the Figure 7 table."""

    engine: str
    results: list[EfficiencyResult]

    @property
    def total_seconds(self) -> float:
        return sum(result.assigned_seconds for result in self.results)


class Tester:
    """Runs suites against engines of a loaded document."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(self, dbms: XmlDbms, document: str,
                 time_limit: float = 2.0,
                 memory_limit_bytes: int = 20 * 1024 * 1024,
                 oracle_profile: str = "m1"):
        self.dbms = dbms
        self.document = document
        self.time_limit = time_limit
        self.memory_limit_bytes = memory_limit_bytes
        self.oracle_profile = oracle_profile

    # -- correctness ---------------------------------------------------------

    def run_correctness(self, profile: EngineProfile | str,
                        queries: dict[str, str]) -> list[CorrectnessResult]:
        """Compare ``profile`` against the oracle on every query."""
        results = []
        for name, xq in queries.items():
            expected = self._oracle_answer(xq)
            try:
                actual = self.dbms.query(self.document, xq, profile=profile)
            except ReproError as exc:
                results.append(CorrectnessResult(
                    name, self.document, passed=False,
                    detail=f"engine error: {exc}"))
                continue
            if actual == expected:
                results.append(CorrectnessResult(name, self.document,
                                                 passed=True))
            else:
                results.append(CorrectnessResult(
                    name, self.document, passed=False,
                    detail=(f"expected {expected[:120]!r}, "
                            f"got {actual[:120]!r}")))
        return results

    def _oracle_answer(self, xq: str) -> str:
        return self.dbms.query(self.document, xq,
                               profile=self.oracle_profile)

    # -- efficiency ------------------------------------------------------------

    def run_efficiency(self, profile: EngineProfile | str,
                       query: EfficiencyQuery) -> EfficiencyResult:
        """Run one efficiency test under the limits, applying the caps."""
        started = time.monotonic()
        try:
            self.dbms.query(self.document, query.xq, profile=profile,
                            time_limit=self.time_limit,
                            memory_budget=self.memory_limit_bytes)
        except ResourceLimitExceeded as exc:
            elapsed = time.monotonic() - started
            if exc.kind == "time":
                return EfficiencyResult(query.name, "timeout", elapsed,
                                        assigned_seconds=self.time_limit,
                                        detail=str(exc))
            return EfficiencyResult(query.name, "memory", elapsed,
                                    assigned_seconds=2 * self.time_limit,
                                    detail=str(exc))
        except ReproError as exc:
            elapsed = time.monotonic() - started
            return EfficiencyResult(query.name, "error", elapsed,
                                    assigned_seconds=2 * self.time_limit,
                                    detail=str(exc))
        elapsed = time.monotonic() - started
        return EfficiencyResult(query.name, "ok", elapsed,
                                assigned_seconds=elapsed)

    def run_figure7(self, profiles: list[str] | None = None,
                    queries: list[EfficiencyQuery] | None = None
                    ) -> list[Figure7Row]:
        """The Figure 7 experiment: engines × efficiency tests."""
        profiles = profiles or ["engine-1", "engine-2", "engine-3",
                                "engine-4", "engine-5"]
        queries = queries if queries is not None else EFFICIENCY_QUERIES
        rows = []
        for profile_name in profiles:
            results = [self.run_efficiency(profile_name, query)
                       for query in queries]
            rows.append(Figure7Row(profile_name, results))
        return rows


def format_figure7(rows: list[Figure7Row]) -> str:
    """Render Figure 7: engines × tests, seconds, with the total column.

    Capped cells are marked with ``*`` (time) or ``**`` (memory), matching
    the paper's convention of reporting the assigned values.
    """
    if not rows:
        return "(no rows)"
    headers = ["Engine"] + [result.query_name
                            for result in rows[0].results] + ["Total"]
    lines = ["  ".join(f"{header:>10}" for header in headers)]
    for row in rows:
        cells = [f"{row.engine:>10}"]
        for result in row.results:
            mark = {"timeout": "*", "memory": "**",
                    "error": "!"}.get(result.status, "")
            cells.append(f"{result.assigned_seconds:>9.2f}{mark or ' '}")
        cells.append(f"{row.total_seconds:>9.2f} ")
        lines.append("  ".join(cells))
    return "\n".join(lines)
