"""The course's testing and grading infrastructure (Sections 3 and 4).

* :mod:`~repro.grading.tester` — correctness tests (engine vs. the
  milestone-1 oracle, the role Galax played) and efficiency tests under
  time/memory budgets with Figure 7's capping rules;
* :mod:`~repro.grading.submission` — the submission & test system: a
  submission pool, a fair round-robin scheduler, and e-mail-style result
  reports ("students are notified via email ... on possible problems");
* :mod:`~repro.grading.scoring` — the points system of Section 3
  (early-bird points, lateness penalties, team-size adjustments, exam
  points, scalability bonus for the top 10 % / 25 % engines).
"""

from repro.grading.scoring import (
    CourseRules,
    GradeBook,
    StudentRecord,
)
from repro.grading.submission import Submission, SubmissionSystem
from repro.grading.tester import (
    CorrectnessResult,
    EfficiencyResult,
    Figure7Row,
    Tester,
)

__all__ = [
    "Tester",
    "CorrectnessResult",
    "EfficiencyResult",
    "Figure7Row",
    "Submission",
    "SubmissionSystem",
    "CourseRules",
    "GradeBook",
    "StudentRecord",
]
