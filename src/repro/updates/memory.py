"""The in-memory oracle: apply an updating expression to a DOM tree.

The role :mod:`repro.xq.eval_memory` plays for queries, this module
plays for updates — a direct, storage-free implementation of the same
semantics, used by the differential test suite to check the stored-
document applier edit for edit.  It follows the exact rules the storage
side fixes (see :mod:`repro.updates.pul`): snapshot target resolution,
delete-wins conflict handling, and statement-order placement for
several inserts landing at one boundary.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import UpdateError
from repro.xmlkit.dom import Document, Element, Node, Text
from repro.xq import eval_memory
from repro.xq.ast import (
    DeleteNode,
    Empty,
    For,
    If,
    InsertNode,
    InsertPosition,
    Query,
    RenameNode,
    ReplaceValue,
    ROOT_VAR,
    Sequence,
    Step,
    TextLiteral,
    UpdateExpr,
    UpdateList,
    Var,
)

_TICK = eval_memory._no_tick


def apply_to_dom(document: Document, update: UpdateExpr,
                 bindings: dict[str, str] | None = None) -> dict[str, int]:
    """Apply ``update`` to ``document`` in place; returns per-kind counts
    (same keys as the storage applier)."""
    resolver = _Resolver(document, bindings or {})
    resolver.resolve(update)
    return resolver.apply()


def _subtree_size(node: Node) -> int:
    return 1 + sum(_subtree_size(child) for child in node.children)


def _is_within(node: Node, ancestor: Node) -> bool:
    """True when ``node`` is ``ancestor`` or inside its subtree."""
    current: Node | None = node
    while current is not None:
        if current is ancestor:
            return True
        current = current.parent
    return False


class _Resolver:
    def __init__(self, document: Document, bindings: dict[str, str]):
        self.document = document
        self.env: dict[str, Node] = {ROOT_VAR: document}
        self.bindings = bindings
        for name, value in bindings.items():
            self.env[name] = value if isinstance(value, Text) \
                else Text(value)
        #: Deletion targets, by identity.
        self.deletes: list[Node] = []
        #: ``(parent, original_index, payload, anchor)`` in statement
        #: order; ``anchor`` is the target node the position came from
        #: (the drop rule keys on it, exactly like the storage side).
        self.inserts: list[tuple[Node, int, Node, Node]] = []
        self.set_values: list[tuple[Text, str]] = []
        self.renames: list[tuple[Element, str]] = []
        #: Value slot (text node, or the element when empty) already
        #: replaced — mirrors the storage collector's conflict rule for
        #: the desugared replace forms.
        self._replace_slots: dict[int, tuple[Node, str]] = {}

    # -- resolution ----------------------------------------------------------

    def resolve(self, update: UpdateExpr) -> None:
        if isinstance(update, UpdateList):
            for member in update.updates:
                self.resolve(member)
        elif isinstance(update, InsertNode):
            self._resolve_insert(update)
        elif isinstance(update, DeleteNode):
            for node in self._targets(update.target):
                if node is self.document:
                    raise UpdateError("cannot delete the document root")
                self.deletes.append(node)
        elif isinstance(update, ReplaceValue):
            self._resolve_replace(update)
        elif isinstance(update, RenameNode):
            target = self._single(update.target, "rename")
            if not isinstance(target, Element):
                raise UpdateError("rename targets must be element nodes")
            self.renames.append(
                (target, self._string(update.name, "rename ... as")))
        else:
            raise UpdateError(f"unsupported update expression {update!r}")

    def _resolve_insert(self, update: InsertNode) -> None:
        target = self._single(update.target, "insert")
        payload = self._content(update.content)
        position = update.position
        if position in (InsertPosition.LAST_INTO,
                        InsertPosition.FIRST_INTO):
            if not isinstance(target, Element):
                raise UpdateError("'insert ... into' targets must be "
                                  "element nodes")
            index = (len(target.children)
                     if position is InsertPosition.LAST_INTO else 0)
            self.inserts.append((target, index, payload, target))
        else:
            parent = target.parent
            if parent is None or isinstance(parent, Document):
                raise UpdateError("cannot insert siblings of the root "
                                  "element")
            index = parent.children.index(target)
            if position is InsertPosition.AFTER:
                index += 1
            self.inserts.append((parent, index, payload, target))

    def _note_replace(self, slot: Node, value: str) -> bool:
        """Record a replace on a value slot; False = equal duplicate."""
        existing = self._replace_slots.get(id(slot))
        if existing is None:
            self._replace_slots[id(slot)] = (slot, value)
            return True
        if existing[1] != value:
            raise UpdateError("conflicting 'replace value of' "
                              "primitives target the same node")
        return False

    def _resolve_replace(self, update: ReplaceValue) -> None:
        target = self._single(update.target, "replace value of")
        value = self._string(update.value, "with")
        if isinstance(target, Text):
            text = target
        elif isinstance(target, Element):
            if not target.children:
                if self._note_replace(target, value) and value:
                    self.inserts.append(
                        (target, len(target.children), Text(value),
                         target))
                return
            if len(target.children) != 1 \
                    or not isinstance(target.children[0], Text):
                raise UpdateError(
                    "replace value of an element is only supported when "
                    "its content is a single text node (or empty)")
            text = target.children[0]
        else:
            raise UpdateError("replace value targets must be text or "
                              "element nodes")
        if not self._note_replace(text, value):
            return
        if value:
            self.set_values.append((text, value))
        else:
            self.deletes.append(text)

    # -- application ---------------------------------------------------------

    def apply(self) -> dict[str, int]:
        deletes = self._collapse_deletes()

        def survives(node: Node) -> bool:
            return not any(_is_within(node, d) for d in deletes)

        set_values = self._dedupe(
            [sv for sv in self.set_values if survives(sv[0])],
            "replace value of")
        renames = self._dedupe(
            [rn for rn in self.renames if survives(rn[0])], "rename")
        inserts = [ins for ins in self.inserts if survives(ins[3])]

        for text, value in set_values:
            text.text = value
        for element, name in renames:
            element.name = name
        # Group inserts by boundary; splice high indices first so lower
        # boundaries stay valid, each group in statement order.
        grouped: dict[tuple[int, int], list[Node]] = {}
        parents: dict[int, Node] = {}
        for parent, index, payload, __ in inserts:
            grouped.setdefault((id(parent), index), []).append(payload)
            parents[id(parent)] = parent
        inserted_nodes = 0
        for (parent_id, index), payloads in sorted(
                grouped.items(), key=lambda item: item[0][1],
                reverse=True):
            parent = parents[parent_id]
            for payload in payloads:
                payload.parent = parent
                inserted_nodes += _subtree_size(payload)
            parent.children[index:index] = payloads
        deleted_nodes = 0
        for node in deletes:
            parent = node.parent
            if parent is not None:
                parent.children.remove(node)
                node.parent = None
                deleted_nodes += _subtree_size(node)
        return {
            "nodes_inserted": inserted_nodes,
            "nodes_deleted": deleted_nodes,
            "values_replaced": len(set_values),
            "nodes_renamed": len(renames),
        }

    def _collapse_deletes(self) -> list[Node]:
        unique: list[Node] = []
        for node in self.deletes:
            if any(node is other for other in unique):
                continue
            unique.append(node)
        return [node for node in unique
                if not any(other is not node and _is_within(node, other)
                           for other in unique)]

    @staticmethod
    def _dedupe(primitives: list[tuple], kind: str) -> list[tuple]:
        seen: dict[int, tuple] = {}
        kept = []
        for primitive in primitives:
            key = id(primitive[0])
            existing = seen.get(key)
            if existing is None:
                seen[key] = primitive
                kept.append(primitive)
            elif existing[1] != primitive[1]:
                raise UpdateError(
                    f"conflicting '{kind}' primitives target the same "
                    f"node")
        return kept

    # -- target / operand evaluation ----------------------------------------

    def _single(self, target: Query, kind: str) -> Node:
        nodes = list(self._targets(target))
        if len(nodes) != 1:
            raise UpdateError(f"'{kind}' target must select exactly one "
                              f"node, got {len(nodes)}")
        return nodes[0]

    def _targets(self, query: Query) -> Iterator[Node]:
        yield from self._eval_target(query, self.env)

    def _eval_target(self, query: Query, env: dict[str, Node]
                     ) -> Iterator[Node]:
        if isinstance(query, Empty):
            return
        if isinstance(query, Var):
            node = env.get(query.name)
            if node is None:
                raise UpdateError(f"unbound variable ${query.name} in "
                                  f"update target")
            yield node
            return
        if isinstance(query, Step):
            yield from eval_memory._step(query, env, _TICK)
            return
        if isinstance(query, For):
            for node in eval_memory._step(query.source, env, _TICK):
                inner = dict(env)
                inner[query.var] = node
                yield from self._eval_target(query.body, inner)
            return
        if isinstance(query, If):
            if eval_memory._cond(query.cond, env, _TICK):
                yield from self._eval_target(query.body, env)
            return
        if isinstance(query, Sequence):
            yield from self._eval_target(query.left, env)
            yield from self._eval_target(query.right, env)
            return
        raise UpdateError(f"update targets must navigate the document; "
                          f"{type(query).__name__} is not a path "
                          f"expression")

    def _content(self, content: Query) -> Node:
        env: dict[str, Node] = {}
        for name, value in self.bindings.items():
            env[name] = value if isinstance(value, Text) else Text(value)
        try:
            nodes = eval_memory.evaluate(content, Document(),
                                         environment=env)
        except Exception as exc:
            raise UpdateError(f"insert content failed to evaluate: "
                              f"{exc}") from exc
        if len(nodes) != 1:
            raise UpdateError(f"insert content must produce exactly one "
                              f"node, got {len(nodes)}")
        node = nodes[0]
        if not isinstance(node, (Element, Text)):
            raise UpdateError("insert content must be an element or a "
                              "text node")
        return node

    def _string(self, operand: Query, context: str) -> str:
        if isinstance(operand, TextLiteral):
            return operand.text
        if isinstance(operand, Var):
            value = self.bindings.get(operand.name)
            if value is None:
                raise UpdateError(f"unbound variable ${operand.name} "
                                  f"after '{context}'")
            return value.text if isinstance(value, Text) else value
        raise UpdateError(f"expected a string literal or variable after "
                          f"'{context}'")
