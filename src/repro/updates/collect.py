"""Collecting a pending update list from an updating expression.

This is the evaluation half of the update subsystem: target paths run
against the *original* document snapshot (through the navigational
evaluator's access paths, so targets use the same index machinery as
queries), insert payloads are evaluated without document access and
shredded into relative XASR tuples, and every selected node becomes one
primitive in the :class:`~repro.updates.pul.PendingUpdateList`.

Nothing here mutates anything — conflicts surface in
``PendingUpdateList.validated()`` and the storage rewrite happens in
:mod:`repro.updates.apply`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.engine.navigational import NavigationalEvaluator
from repro.errors import UpdateError
from repro.updates.pul import (
    DeleteSubtree,
    InsertSubtree,
    PendingUpdateList,
    Rename,
    RelTuple,
    SetValue,
)
from repro.xasr import schema
from repro.xasr.document import StoredDocument
from repro.xasr.schema import XasrNode
from repro.xmlkit.dom import Document, Element, Node, Text
from repro.xq import eval_memory
from repro.xq.ast import (
    DeleteNode,
    Empty,
    For,
    If,
    InsertNode,
    InsertPosition,
    Query,
    RenameNode,
    ReplaceValue,
    ROOT_VAR,
    Sequence,
    Step,
    TextLiteral,
    UpdateExpr,
    UpdateList,
    Var,
)
from repro.xq.parser import _is_name_char, _is_name_start


def collect_pul(document: StoredDocument, update: UpdateExpr,
                bindings: dict[str, str] | None = None
                ) -> PendingUpdateList:
    """Resolve ``update`` against ``document`` into a raw (unvalidated)
    pending update list.

    ``bindings`` maps external-variable names to strings; they may
    appear as insert content, replacement values and new names, and as
    comparison operands inside target predicates.
    """
    collector = _Collector(document, bindings or {})
    collector.collect(update)
    return collector.pul


class _Collector:
    def __init__(self, document: StoredDocument, bindings: dict[str, str]):
        self.document = document
        self.bindings = bindings
        self.pul = PendingUpdateList()
        #: Value slot (text node's in, or the element's for an empty
        #: element) → replacement already collected.  Needed here, not
        #: just in ``validated()``: empty-element and empty-string
        #: replaces desugar to inserts/deletes, which the PUL-level
        #: point-conflict check would never see.
        self._replace_slots: dict[int, str] = {}
        self._evaluator = NavigationalEvaluator(document)
        self._env: dict[str, XasrNode] = {ROOT_VAR: document.root()}
        for name, value in bindings.items():
            text = value.text if isinstance(value, Text) else value
            if not isinstance(text, str):
                raise UpdateError(f"binding ${name} must be a string or "
                                  f"a text node")
            # Synthetic text node, comparable inside target predicates.
            self._env[name] = XasrNode(0, 0, 0, schema.TEXT, text)

    # -- dispatch ------------------------------------------------------------

    def collect(self, update: UpdateExpr) -> None:
        if isinstance(update, UpdateList):
            for member in update.updates:
                self.collect(member)
        elif isinstance(update, InsertNode):
            self._collect_insert(update)
        elif isinstance(update, DeleteNode):
            for node in self._targets(update.target):
                if node.in_ == 1:
                    raise UpdateError("cannot delete the document root")
                self.pul.deletes.append(DeleteSubtree(node.in_, node.out))
        elif isinstance(update, ReplaceValue):
            self._collect_replace(update)
        elif isinstance(update, RenameNode):
            target = self._single_target(update.target, "rename")
            if target.type != schema.ELEMENT:
                raise UpdateError("rename targets must be element nodes")
            name = self._string_operand(update.name, "rename ... as")
            _check_name(name)
            self.pul.renames.append(Rename(target.in_, name))
        else:
            raise UpdateError(f"unsupported update expression {update!r}")

    # -- inserts -------------------------------------------------------------

    def _collect_insert(self, update: InsertNode) -> None:
        target = self._single_target(update.target, "insert")
        content = self._content_node(update.content)
        position = update.position
        if position in (InsertPosition.LAST_INTO,
                        InsertPosition.FIRST_INTO):
            if target.type != schema.ELEMENT:
                raise UpdateError("'insert ... into' targets must be "
                                  "element nodes")
            parent_in = target.in_
            pivot = (target.out if position is InsertPosition.LAST_INTO
                     else target.in_ + 1)
        else:
            parent = self.document.node(target.parent_in)
            if parent.type == schema.ROOT:
                raise UpdateError("cannot insert siblings of the root "
                                  "element")
            parent_in = parent.in_
            pivot = (target.in_ if position is InsertPosition.BEFORE
                     else target.out + 1)
        self.pul.inserts.append(InsertSubtree(
            pivot=pivot, parent_in=parent_in, anchor_in=target.in_,
            tuples=shred_subtree(content)))

    def _content_node(self, content: Query) -> Node:
        """Evaluate insert content to exactly one element or text node.

        Content runs under the in-memory evaluator against an *empty*
        document: new nodes are constructed, never navigated to, so an
        insert can never alias part of the stored tree.
        """
        env: dict[str, Node] = {}
        for name, value in self.bindings.items():
            env[name] = value if isinstance(value, Text) else Text(value)
        try:
            nodes = eval_memory.evaluate(content, Document(),
                                         environment=env)
        except Exception as exc:
            raise UpdateError(f"insert content failed to evaluate: "
                              f"{exc}") from exc
        if len(nodes) != 1:
            raise UpdateError(f"insert content must produce exactly one "
                              f"node, got {len(nodes)}")
        node = nodes[0]
        if not isinstance(node, (Element, Text)):
            raise UpdateError("insert content must be an element or a "
                              "text node")
        return node

    # -- replace value -------------------------------------------------------

    def _note_replace(self, slot: int, value: str) -> bool:
        """Record a replace on a value slot; False = equal duplicate.

        Unequal replaces of one slot conflict, equal ones deduplicate —
        the same rule ``validated()`` applies to SetValue primitives,
        enforced here so the desugared forms (empty-element insert,
        empty-string delete) obey it too.
        """
        existing = self._replace_slots.get(slot)
        if existing is None:
            self._replace_slots[slot] = value
            return True
        if existing != value:
            raise UpdateError(
                f"conflicting 'replace value of' primitives target the "
                f"same node (in={slot})")
        return False

    def _collect_replace(self, update: ReplaceValue) -> None:
        target = self._single_target(update.target, "replace value of")
        value = self._string_operand(update.value, "with")
        if target.type == schema.TEXT:
            text = target
        elif target.type == schema.ELEMENT:
            children = list(self.document.children(target.in_))
            if not children:
                # Empty element: a non-empty value grows a text child.
                if self._note_replace(target.in_, value) and value:
                    self.pul.inserts.append(InsertSubtree(
                        pivot=target.out, parent_in=target.in_,
                        anchor_in=target.in_,
                        tuples=shred_subtree(Text(value))))
                return
            if len(children) != 1 or children[0].type != schema.TEXT:
                raise UpdateError(
                    "replace value of an element is only supported when "
                    "its content is a single text node (or empty)")
            text = children[0]
        else:
            raise UpdateError("replace value targets must be text or "
                              "element nodes")
        if not self._note_replace(text.in_, value):
            return
        if value:
            self.pul.set_values.append(SetValue(text.in_, value))
        else:
            # Replacing with "" deletes the text node: serialisation
            # cannot represent an empty text node, and round-tripping
            # (serialize → reparse → reload) must be the identity.
            self.pul.deletes.append(DeleteSubtree(text.in_, text.out))

    # -- target evaluation ---------------------------------------------------

    def _single_target(self, target: Query, kind: str) -> XasrNode:
        nodes = list(self._targets(target))
        if len(nodes) != 1:
            raise UpdateError(f"'{kind}' target must select exactly one "
                              f"node, got {len(nodes)}")
        return nodes[0]

    def _targets(self, query: Query) -> Iterator[XasrNode]:
        yield from self._eval_target(query, self._env)

    def _eval_target(self, query: Query, env: dict[str, XasrNode]
                     ) -> Iterator[XasrNode]:
        """Evaluate a target path to stored nodes (not DOM subtrees).

        Mirrors the navigational evaluator's semantics but keeps the
        XASR tuples — updates anchor at in/out numbers, not at
        reconstructed trees.
        """
        if isinstance(query, Empty):
            return
        if isinstance(query, Var):
            node = env.get(query.name)
            if node is None:
                raise UpdateError(f"unbound variable ${query.name} in "
                                  f"update target")
            yield node
            return
        if isinstance(query, Step):
            yield from self._evaluator.step(query, env)
            return
        if isinstance(query, For):
            for node in self._evaluator.step(query.source, env):
                inner = dict(env)
                inner[query.var] = node
                yield from self._eval_target(query.body, inner)
            return
        if isinstance(query, If):
            if self._evaluator.condition(query.cond, env):
                yield from self._eval_target(query.body, env)
            return
        if isinstance(query, Sequence):
            yield from self._eval_target(query.left, env)
            yield from self._eval_target(query.right, env)
            return
        raise UpdateError(f"update targets must navigate the document; "
                          f"{type(query).__name__} is not a path "
                          f"expression")

    # -- scalar operands -----------------------------------------------------

    def _string_operand(self, operand: Query, context: str) -> str:
        if isinstance(operand, TextLiteral):
            return operand.text
        if isinstance(operand, Var):
            value = self.bindings.get(operand.name)
            if value is None:
                raise UpdateError(f"unbound variable ${operand.name} "
                                  f"after '{context}'")
            return value.text if isinstance(value, Text) else value
        raise UpdateError(f"expected a string literal or variable after "
                          f"'{context}'")


def shred_subtree(node: Node) -> tuple[RelTuple, ...]:
    """Number a DOM subtree relative to its splice point.

    The subtree root gets ``in = 0`` and parent ``-1`` (the insertion
    parent); in/out numbers count exactly as the loader's shredder does,
    so splicing at pivot ``p`` yields numbers ``p .. p + 2k - 1``.
    """
    tuples: list[RelTuple] = []
    counter = 0

    def walk(dom: Node, parent_rel: int) -> None:
        nonlocal counter
        in_rel = counter
        counter += 1
        if isinstance(dom, Text):
            out_rel = counter
            counter += 1
            tuples.append((in_rel, out_rel, parent_rel, schema.TEXT,
                           dom.text))
            return
        if not isinstance(dom, Element):  # pragma: no cover - defensive
            raise UpdateError(f"cannot insert a {dom.kind.value} node")
        for child in dom.children:
            walk(child, in_rel)
        out_rel = counter
        counter += 1
        tuples.append((in_rel, out_rel, parent_rel, schema.ELEMENT,
                       dom.name))

    walk(node, -1)
    tuples.sort()  # ascending relative in
    return tuple(tuples)


def _check_name(name: str) -> None:
    if not name or not _is_name_start(name[0]) \
            or not all(_is_name_char(ch) for ch in name):
        raise UpdateError(f"{name!r} is not a valid element name")
