"""Pending update lists: resolved primitives and conflict validation.

Updating expressions never mutate anything while they evaluate.  Target
paths run against the original document snapshot and each selected node
contributes one *primitive* — a storage-level edit anchored at the
node's original in/out numbers.  The full list is then validated as a
whole (XQUF's "pending update list" model) and applied atomically.

Primitives and their anchors:

* :class:`DeleteSubtree` — remove the closed interval ``[in, out]``;
* :class:`InsertSubtree` — splice a shredded subtree in at ``pivot``,
  the first in/out number the new nodes occupy;
* :class:`SetValue` — overwrite one text node's value in place;
* :class:`Rename` — overwrite one element's label in place.

Validation order (all on original numbering):

1. duplicate deletes and deletes nested inside other deletes collapse;
2. two ``SetValue`` (or two ``Rename``) on the same node with different
   replacements conflict — :class:`~repro.errors.UpdateError`; equal
   replacements deduplicate;
3. any primitive anchored at or inside a deleted subtree is dropped —
   the delete wins (so ``delete //a, rename //a as b`` is legal and
   deletes).

Application order is part of the semantics this module fixes (XQUF
leaves it implementation-defined): point edits first, then structural
edits from the highest pivot down, inserts at the *same* pivot landing
in statement order.  :mod:`repro.updates.memory` — the differential
oracle — implements the same rules over the DOM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UpdateError

#: One shredded node of an insert payload, numbered relative to the
#: splice point: ``(in, out, parent_in, type, value)`` with in/out
#: counting from 0 and ``parent_in = -1`` marking children of the
#: insertion parent.
RelTuple = tuple[int, int, int, int, str]


@dataclass(frozen=True)
class DeleteSubtree:
    """Remove the subtree spanning ``[in_, out]`` (the target node's
    interval)."""

    in_: int
    out: int

    @property
    def pivot(self) -> int:
        return self.in_

    def contains(self, number: int) -> bool:
        return self.in_ <= number <= self.out

    @property
    def node_count(self) -> int:
        return (self.out - self.in_ + 1) // 2


@dataclass(frozen=True)
class InsertSubtree:
    """Splice ``tuples`` in so their numbers start at ``pivot``.

    ``parent_in`` is the (original-numbering) in-value of the node that
    becomes the parent of the payload's root(s); it is always strictly
    below ``pivot``, so it never renumbers away.  ``anchor_in`` is the
    in-value of the target node the position was computed from — used
    only by validation (an insert whose anchor is deleted is dropped).
    """

    pivot: int
    parent_in: int
    anchor_in: int
    tuples: tuple[RelTuple, ...]

    @property
    def node_count(self) -> int:
        return len(self.tuples)

    @property
    def number_span(self) -> int:
        """How many in/out numbers the payload consumes (2 per node)."""
        return 2 * len(self.tuples)


@dataclass(frozen=True)
class SetValue:
    """Overwrite the value of the text node at ``in_``."""

    in_: int
    value: str

    @property
    def pivot(self) -> int:  # pragma: no cover - uniform interface
        return self.in_


@dataclass(frozen=True)
class Rename:
    """Overwrite the label of the element at ``in_``."""

    in_: int
    name: str

    @property
    def pivot(self) -> int:  # pragma: no cover - uniform interface
        return self.in_


@dataclass
class PendingUpdateList:
    """All primitives one updating statement resolved to.

    Primitives keep their statement order within each list; validation
    (:meth:`validated`) produces a new, conflict-free PUL ready for
    :func:`repro.updates.apply.apply_pul`.
    """

    deletes: list[DeleteSubtree] = field(default_factory=list)
    inserts: list[InsertSubtree] = field(default_factory=list)
    set_values: list[SetValue] = field(default_factory=list)
    renames: list[Rename] = field(default_factory=list)

    def __len__(self) -> int:
        return (len(self.deletes) + len(self.inserts)
                + len(self.set_values) + len(self.renames))

    # -- validation ----------------------------------------------------------

    def validated(self) -> "PendingUpdateList":
        """Check conflicts; returns the deduplicated, droppable-free PUL."""
        deletes = self._collapse_deletes()

        def survives(anchor: int) -> bool:
            return not any(d.contains(anchor) for d in deletes)

        set_values = self._dedupe_point(
            [sv for sv in self.set_values if survives(sv.in_)],
            kind="replace value of")
        renames = self._dedupe_point(
            [rn for rn in self.renames if survives(rn.in_)],
            kind="rename")
        inserts = [ins for ins in self.inserts if survives(ins.anchor_in)]
        return PendingUpdateList(deletes=deletes, inserts=inserts,
                                 set_values=set_values, renames=renames)

    def _collapse_deletes(self) -> list[DeleteSubtree]:
        """Drop duplicate deletes and deletes inside other deletes."""
        unique: dict[int, DeleteSubtree] = {}
        for delete in self.deletes:
            unique.setdefault(delete.in_, delete)
        kept: list[DeleteSubtree] = []
        for delete in unique.values():
            if any(other.in_ < delete.in_ and delete.out < other.out
                   for other in unique.values()):
                continue
            kept.append(delete)
        return kept

    @staticmethod
    def _dedupe_point(primitives, kind: str):
        """Equal point edits on one node collapse; unequal ones conflict."""
        by_target: dict[int, object] = {}
        kept = []
        for primitive in primitives:
            existing = by_target.get(primitive.in_)
            if existing is None:
                by_target[primitive.in_] = primitive
                kept.append(primitive)
            elif existing != primitive:
                raise UpdateError(
                    f"conflicting '{kind}' primitives target the same "
                    f"node (in={primitive.in_})")
        return kept


@dataclass(frozen=True)
class UpdateResult:
    """What one updating statement did.

    Node counts are whole-subtree counts (deleting a node with three
    descendants counts four).  ``stats_version`` is the document's new
    catalog/statistics version — the value prepared plans were
    invalidated to.  ``commit_lsn`` is the transaction's position in the
    commit sequence: snapshots pinned at an LSN ``>=`` it see the
    update, earlier ones do not (0 when the database runs without a
    WAL).
    """

    nodes_inserted: int = 0
    nodes_deleted: int = 0
    values_replaced: int = 0
    nodes_renamed: int = 0
    stats_version: int = 0
    commit_lsn: int = 0

    @property
    def total_changes(self) -> int:
        return (self.nodes_inserted + self.nodes_deleted
                + self.values_replaced + self.nodes_renamed)

    def __bool__(self) -> bool:
        return self.total_changes > 0
