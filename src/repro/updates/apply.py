"""Applying a validated pending update list to the stored XASR encoding.

The XASR numbering is dense — in/out values are consecutive preorder
counters — so edits have two very different costs, and the applier keeps
them separate:

* **Point edits** (``replace value of``, ``rename``) rewrite one record
  in place and swap its label-index entry: O(log n).
* **Structural edits** (``insert``, ``delete``) renumber.  A subtree of
  ``k`` nodes occupies ``2k`` consecutive numbers, so every number at or
  beyond the splice point shifts by ``±2k``: the affected *suffix* of
  the relation is rekeyed (primary, label and parent index entries
  alike) and the ancestor chain's ``out`` values are bumped.  Cost is
  O(tail + depth), not O(1) — the price of keeping the interval
  property exact so every read path stays untouched.

Structural edits apply from the highest pivot downward; a lower edit's
anchors are therefore never renumbered by an earlier one.  At equal
pivots deletes go first and inserts run in reverse statement order,
which makes several inserts at one boundary land in statement order.

Statistics are maintained incrementally alongside (label counts, node
counts, depth sums, value histograms); ``max_depth`` only ratchets up —
a delete may leave it an over-estimate, which the cost model tolerates
(it is "a gross measure" by the paper's own framing).  Histogram bucket
boundaries likewise stay fixed while counts shift.  Secondary **value
indexes** (``XmlDbms.create_index``) are maintained *exactly*: point
edits swap one entry, and structural renumbering moves every affected
``(value, elem_in, text_in)`` entry — parent labels resolve from the
pre-edit snapshot, since the parent element may itself already have
been rekeyed.  The caller persists the updated statistics payload and
runs the whole thing inside a
:meth:`~repro.storage.db.Database.transaction`, so index maintenance is
covered by the same WAL commit as the document rewrite.
"""

from __future__ import annotations

from repro.errors import UpdateError
from repro.storage.db import Database
from repro.storage.record import decode_key
from repro.updates.pul import (
    DeleteSubtree,
    InsertSubtree,
    PendingUpdateList,
    Rename,
    SetValue,
)
from repro.xasr import schema
from repro.xasr.document import StoredDocument

#: One decoded record in raw form: (in, out, parent_in, type, val_kind,
#: value) — the value is *not* resolved through the overflow store, so
#: rekeying a record never copies its overflow chain.
_Raw = tuple[int, int, int, int, int, str]


def apply_pul(db: Database, document: StoredDocument,
              pul: PendingUpdateList) -> dict[str, int]:
    """Apply a *validated* PUL; returns per-kind node counts.

    Mutates the document's primary tree, both secondary indexes, the
    overflow store and the in-memory ``document.statistics`` (the caller
    persists the payload).  Must run inside a database transaction with
    no concurrent readers of these tree instances.
    """
    applier = _Applier(db, document)
    for set_value in pul.set_values:
        applier.set_value(set_value)
    for rename in pul.renames:
        applier.rename(rename)
    # Highest pivot first, deletes before inserts at a tie, tied inserts
    # in reverse statement order (so they end up in statement order).
    structural: list[tuple[tuple, object]] = []
    for delete in pul.deletes:
        # Rank 1 > 0: at a tied pivot the delete must run first — its
        # [in, out] range is in original numbers, which an insert at the
        # same pivot would have shifted.
        structural.append(((delete.pivot, 1, 0), delete))
    for index, insert in enumerate(pul.inserts):
        structural.append(((insert.pivot, 0, index), insert))
    structural.sort(key=lambda entry: entry[0], reverse=True)
    for __, edit in structural:
        if isinstance(edit, DeleteSubtree):
            applier.delete_subtree(edit)
        else:
            applier.insert_subtree(edit)
    applier.finish()
    return {
        "nodes_inserted": sum(ins.node_count for ins in pul.inserts),
        "nodes_deleted": sum(d.node_count for d in pul.deletes),
        "values_replaced": len(pul.set_values),
        "nodes_renamed": len(pul.renames),
    }


class _Applier:
    def __init__(self, db: Database, document: StoredDocument):
        self.db = db
        self.document = document
        self.primary = document.primary
        self.label_index = document.label_index
        self.parent_index = document.parent_index
        self.stats = document.statistics
        #: Per-label secondary value indexes (label → B+-tree); entries
        #: are maintained in the same transaction as the primary tree.
        self.value_indexes = document.value_indexes
        #: Original-numbering element labels of the current structural
        #: edit's materialised region, consulted by :meth:`_rekey` — a
        #: rekeyed record's parent may itself already have moved, so its
        #: label must come from the pre-edit snapshot, not the tree.
        self._elem_labels: dict[int, str] = {}

    # -- record plumbing -----------------------------------------------------

    def _record(self, in_: int) -> _Raw:
        raw = self.primary.search(schema.primary_key(in_))
        if raw is None:
            raise UpdateError(f"update anchor in={in_} vanished from "
                              f"document {self.document.name!r}")
        return schema.decode_record(raw)

    def _actual_value(self, rec: _Raw) -> str:
        """The record's full value, resolving an overflow pointer."""
        if rec[4] == 1:
            head_page, __, length = rec[5].partition(":")
            data = self.db.overflow.load(int(head_page), int(length))
            return data.decode("utf-8")
        return rec[5]

    def _indexed_value(self, rec: _Raw) -> str:
        """The (truncated) value as stored in label-index keys.

        For overflow values only the first chain page is read: the
        index prefix is 64 characters, a chunk holds thousands of
        bytes, so a full-chain load would make suffix rekeying scale
        with value size rather than with the suffix length.  A chunk
        boundary can split a multi-byte character, which is always past
        the prefix — decoding ignores it.
        """
        if rec[4] != 1:
            return schema.index_value(rec[5])
        head_page = rec[5].partition(":")[0]
        chunk = self.db.overflow.load_prefix(int(head_page))
        return schema.index_value(chunk.decode("utf-8", errors="ignore"))

    def _free_overflow(self, rec: _Raw) -> None:
        if rec[4] == 1:
            head_page, __, __ = rec[5].partition(":")
            self.db.overflow.free(int(head_page))

    def _encode_value(self, value: str) -> tuple[int, str]:
        """Spill a long value; returns (val_kind, stored value)."""
        raw = value.encode("utf-8")
        if len(raw) > schema.VALUE_INLINE_MAX:
            head_page, length = self.db.overflow.store(raw)
            return 1, f"{head_page}:{length}"
        return 0, value

    def _label_key(self, rec: _Raw) -> bytes:
        return schema.label_key(rec[3], self._indexed_value(rec), rec[0])

    def _put_record(self, rec: _Raw, replace: bool) -> None:
        encoded = schema.RECORD_CODEC.encode(rec)
        self.primary.insert(schema.primary_key(rec[0]), encoded,
                            replace=replace)

    # -- value-index plumbing ------------------------------------------------

    def _rec_label(self, rec: _Raw) -> str:
        """An element record's label (resolving overflow spills)."""
        return rec[5] if rec[4] == 0 else self._actual_value(rec)

    def _parent_label(self, parent_in: int,
                      boundary: int | None = None) -> str | None:
        """Label of the element with in-value ``parent_in``; None for the
        virtual root.

        During a structural edit, parents beyond ``boundary`` may have
        been rekeyed already and must resolve from the materialised
        snapshot (:attr:`_elem_labels`); parents at or below the
        boundary never move and read from the tree.
        """
        if parent_in == 0:
            return None
        if boundary is not None and parent_in > boundary:
            return self._elem_labels.get(parent_in)
        cached = self._elem_labels.get(parent_in)
        if cached is not None:
            return cached
        rec = self._record(parent_in)
        if rec[3] != schema.ELEMENT:
            return None
        label = self._rec_label(rec)
        self._elem_labels[parent_in] = label
        return label

    def _value_entry(self, label: str | None, value: str, elem_in: int,
                     text_in: int, sign: int) -> None:
        """Add (+1) or remove (-1) one value-index entry, if ``label``
        carries an index.  ``value`` is the already-truncated indexed
        value."""
        if label is None:
            return
        tree = self.value_indexes.get(label)
        if tree is None:
            return
        key = schema.value_key(value, elem_in, text_in)
        if sign > 0:
            tree.insert(key, b"")
        else:
            tree.delete(key)

    # -- point edits ---------------------------------------------------------

    def set_value(self, edit: SetValue) -> None:
        rec = self._record(edit.in_)
        if rec[3] != schema.TEXT:  # pragma: no cover - collect checks
            raise UpdateError(f"set_value target in={edit.in_} is not a "
                              f"text node")
        parent_label = self._parent_label(rec[2])
        old_indexed = self._indexed_value(rec)
        self.label_index.delete(self._label_key(rec))
        self._free_overflow(rec)
        val_kind, stored = self._encode_value(edit.value)
        new_rec: _Raw = (rec[0], rec[1], rec[2], rec[3], val_kind, stored)
        self._put_record(new_rec, replace=True)
        self.label_index.insert(self._label_key(new_rec), b"")
        new_indexed = schema.index_value(edit.value)
        self._value_entry(parent_label, old_indexed, rec[2], rec[0], -1)
        self._value_entry(parent_label, new_indexed, rec[2], rec[0], +1)
        self.stats.histogram_remove(parent_label or "", old_indexed)
        self.stats.histogram_add(parent_label or "", new_indexed)

    def rename(self, edit: Rename) -> None:
        rec = self._record(edit.in_)
        if rec[3] != schema.ELEMENT:  # pragma: no cover - collect checks
            raise UpdateError(f"rename target in={edit.in_} is not an "
                              f"element")
        # Labels can be overflow-stored like any value: resolve the old
        # one for the stats decrement, free its chain, and spill the new
        # name if it is long (exactly the set_value treatment).
        old_label = self._actual_value(rec)
        self.label_index.delete(self._label_key(rec))
        self._free_overflow(rec)
        val_kind, stored = self._encode_value(edit.name)
        new_rec: _Raw = (rec[0], rec[1], rec[2], rec[3], val_kind, stored)
        self._put_record(new_rec, replace=True)
        self.label_index.insert(self._label_key(new_rec), b"")
        self._count_label(old_label, -1)
        self._count_label(edit.name, +1)
        self._elem_labels.pop(rec[0], None)
        self._rename_text_children(rec[0], old_label, edit.name)

    def _rename_text_children(self, elem_in: int, old_label: str,
                              new_label: str) -> None:
        """Move a renamed element's child-text statistics and value-index
        entries from the old label to the new one."""
        old_tree = self.value_indexes.get(old_label)
        new_tree = self.value_indexes.get(new_label)
        old_histogram = self.stats.value_histograms.get(old_label)
        new_histogram = self.stats.value_histograms.get(new_label)
        if (old_tree is None and new_tree is None
                and old_histogram is None and new_histogram is None):
            return
        for key, __ in list(self.parent_index.prefix_scan(
                schema.parent_prefix(elem_in))):
            __, child_in = decode_key(key, ("u32", "u32"))
            child = self._record(child_in)
            if child[3] != schema.TEXT:
                continue
            value = self._indexed_value(child)
            self._value_entry(old_label, value, elem_in, child_in, -1)
            self._value_entry(new_label, value, elem_in, child_in, +1)
            if old_histogram is not None:
                old_histogram.remove(value)
            if new_histogram is not None:
                new_histogram.add(value)

    # -- structural edits ----------------------------------------------------

    def delete_subtree(self, edit: DeleteSubtree) -> None:
        subtree = self._materialize(edit.in_, edit.out, include_low=True)
        if not subtree or subtree[0][0] != edit.in_:
            raise UpdateError(f"delete anchor in={edit.in_} vanished")
        delta = -(edit.out - edit.in_ + 1)
        ancestors = self._ancestor_chain(subtree[0][2])

        # Element labels at original numbering, for value-index and
        # histogram maintenance of text nodes inside the subtree and of
        # rekeyed suffix records (whose parents may already have moved
        # by the time they are processed).
        self._elem_labels = {rec[0]: self._rec_label(rec)
                             for rec in subtree
                             if rec[3] == schema.ELEMENT}

        depths = self._subtree_depths(subtree)
        for rec in subtree:
            self.primary.delete(schema.primary_key(rec[0]))
            self.label_index.delete(self._label_key(rec))
            self.parent_index.delete(schema.parent_key(rec[2], rec[0]))
            if rec[3] == schema.TEXT:
                parent_label = self._parent_label(rec[2])
                value = self._indexed_value(rec)
                self._value_entry(parent_label, value, rec[2], rec[0], -1)
                self.stats.histogram_remove(parent_label or "", value)
            self._count_node(rec, depths[rec[0]], -1)
            self._free_overflow(rec)  # after the last value resolution

        suffix = self._materialize(edit.out, None, include_low=False)
        self._elem_labels.update(
            {rec[0]: self._rec_label(rec) for rec in suffix
             if rec[3] == schema.ELEMENT})
        for rec in suffix:  # ascending: shifted keys land in freed space
            self._rekey(rec, delta, boundary=edit.out)
        self._bump_ancestors(ancestors, delta)
        self._elem_labels = {}

    def insert_subtree(self, edit: InsertSubtree) -> None:
        delta = edit.number_span
        pivot = edit.pivot
        parent = self._record(edit.parent_in)
        ancestors = self._ancestor_chain(edit.parent_in, inclusive=True)
        parent_depth = self._depth_of(parent)
        anchor_label = (self._rec_label(parent)
                        if parent[3] == schema.ELEMENT else None)

        suffix = self._materialize(pivot, None, include_low=True)
        self._elem_labels = {rec[0]: self._rec_label(rec)
                             for rec in suffix
                             if rec[3] == schema.ELEMENT}
        for rec in reversed(suffix):  # descending: no key collisions
            self._rekey(rec, delta, boundary=pivot - 1)
        self._bump_ancestors(ancestors, delta, boundary=pivot)
        self._elem_labels = {}

        rel_depths: dict[int, int] = {}
        rel_labels: dict[int, str | None] = {}
        for rel_in, rel_out, rel_parent, node_type, value in edit.tuples:
            depth = (parent_depth + 1 if rel_parent < 0
                     else rel_depths[rel_parent] + 1)
            rel_depths[rel_in] = depth
            if node_type == schema.ELEMENT:
                rel_labels[rel_in] = value
            in_ = pivot + rel_in
            out = pivot + rel_out
            parent_in = (edit.parent_in if rel_parent < 0
                         else pivot + rel_parent)
            val_kind, stored = self._encode_value(value)
            rec: _Raw = (in_, out, parent_in, node_type, val_kind, stored)
            self._put_record(rec, replace=False)
            self.label_index.insert(self._label_key(rec), b"")
            self.parent_index.insert(schema.parent_key(parent_in, in_),
                                     b"")
            if node_type == schema.TEXT:
                parent_label = (anchor_label if rel_parent < 0
                                else rel_labels.get(rel_parent))
                indexed = schema.index_value(value)
                self._value_entry(parent_label, indexed, parent_in, in_,
                                  +1)
                self.stats.histogram_add(parent_label or "", indexed)
            self._count_node(rec, depth, +1)
            self.stats.max_depth = max(self.stats.max_depth, depth)

    # -- renumbering helpers -------------------------------------------------

    def _materialize(self, low_in: int, high_in: int | None,
                     include_low: bool) -> list[_Raw]:
        """Decode a primary range into a list (scans must not overlap
        the mutations that follow)."""
        high = None if high_in is None else schema.primary_key(high_in)
        return [schema.decode_record(raw)
                for __, raw in self.primary.range_scan(
                    schema.primary_key(low_in), high,
                    include_low=include_low)]

    def _rekey(self, rec: _Raw, delta: int, boundary: int) -> None:
        """Shift one suffix record by ``delta``: all of its numbers that
        are strictly beyond ``boundary`` move, and all the trees —
        primary, label, parent and any value index covering the record —
        swap the record's keys."""
        in_, out, parent_in, node_type, val_kind, value = rec
        new_parent = parent_in + delta if parent_in > boundary \
            else parent_in
        new_rec: _Raw = (in_ + delta, out + delta, new_parent, node_type,
                         val_kind, value)
        self.primary.delete(schema.primary_key(in_))
        self._put_record(new_rec, replace=False)
        self.parent_index.delete(schema.parent_key(parent_in, in_))
        self.parent_index.insert(schema.parent_key(new_parent, in_ + delta),
                                 b"")
        indexed = self._indexed_value(rec)
        self.label_index.delete(schema.label_key(node_type, indexed, in_))
        self.label_index.insert(
            schema.label_key(node_type, indexed, in_ + delta), b"")
        if node_type == schema.TEXT and self.value_indexes:
            # The entry embeds both the element's and the text node's
            # in-values; the parent label resolves from the pre-edit
            # snapshot (the parent itself may have been rekeyed already).
            parent_label = self._parent_label(parent_in, boundary)
            self._value_entry(parent_label, indexed, parent_in, in_, -1)
            self._value_entry(parent_label, indexed, new_parent,
                              in_ + delta, +1)

    def _ancestor_chain(self, parent_in: int,
                        inclusive: bool = True) -> list[_Raw]:
        """Records from ``parent_in`` up to (and including) the virtual
        root, in original numbering."""
        chain: list[_Raw] = []
        current = parent_in
        while current != 0:
            rec = self._record(current)
            chain.append(rec)
            current = rec[2]
        if not inclusive and chain:  # pragma: no cover - unused guard
            chain = chain[1:]
        return chain

    def _bump_ancestors(self, ancestors: list[_Raw], delta: int,
                        boundary: int | None = None) -> None:
        """Add ``delta`` to each ancestor's out value (their in values
        precede every shifted number, so keys never move)."""
        for rec in ancestors:
            if boundary is not None and rec[1] < boundary:
                continue  # pragma: no cover - defensive; outs span pivot
            new_rec: _Raw = (rec[0], rec[1] + delta, rec[2], rec[3],
                             rec[4], rec[5])
            self._put_record(new_rec, replace=True)

    # -- statistics ----------------------------------------------------------

    def _depth_of(self, rec: _Raw) -> int:
        depth = 0
        current = rec[2]
        while current != 0:
            depth += 1
            current = self._record(current)[2]
        return depth

    def _subtree_depths(self, subtree: list[_Raw]) -> dict[int, int]:
        """Depth of every subtree node; parents precede children in the
        in-ordered materialised list."""
        root = subtree[0]
        depths = {root[0]: self._depth_of(root)}
        for rec in subtree[1:]:
            depths[rec[0]] = depths[rec[2]] + 1
        return depths

    def _count_node(self, rec: _Raw, depth: int, sign: int) -> None:
        stats = self.stats
        stats.total_nodes += sign
        stats.depth_sum += sign * depth
        if rec[3] == schema.ELEMENT:
            stats.element_count += sign
            self._count_label(self._actual_value(rec), sign)
        elif rec[3] == schema.TEXT:
            stats.text_count += sign

    def _count_label(self, label: str, sign: int) -> None:
        counts = self.stats.label_counts
        updated = counts.get(label, 0) + sign
        if updated <= 0:
            counts.pop(label, None)
        else:
            counts[label] = updated

    def finish(self) -> None:
        """Recompute the bits that derive from the final numbering."""
        root = self._record(1)
        self.stats.max_in = root[1]
