"""The update subsystem: XQuery Update Facility subset over XASR.

The write half of the DBMS, layered exactly like the read half:

* :mod:`repro.updates.collect` — evaluate an updating expression's
  targets against the stored snapshot and build a pending update list;
* :mod:`repro.updates.pul` — the primitives, conflict validation and
  the :class:`~repro.updates.pul.UpdateResult` surface;
* :mod:`repro.updates.apply` — rewrite the XASR relations with
  incremental index and statistics maintenance;
* :mod:`repro.updates.memory` — the same semantics over the in-memory
  DOM, serving as the differential-testing oracle.

Durability comes from the storage layer: the dbms wraps collect +
validate + apply in one :meth:`repro.storage.db.Database.transaction`,
so an update is all-or-nothing on disk and survives ``kill -9`` once
acknowledged (see :mod:`repro.storage.wal`).
"""

from repro.updates.apply import apply_pul
from repro.updates.collect import collect_pul
from repro.updates.memory import apply_to_dom
from repro.updates.pul import PendingUpdateList, UpdateResult

__all__ = [
    "apply_pul",
    "apply_to_dom",
    "collect_pul",
    "PendingUpdateList",
    "UpdateResult",
]
