"""Synthetic DBLP: shallow, wide bibliographic XML.

The generator is deterministic (seeded) and structurally mimics DBLP:

* a flat sequence of ``<article>`` and ``<inproceedings>`` records under
  the root;
* every record has 1–5 ``<author>`` children, a ``<title>``, a
  ``<year>``;
* articles carry a ``<journal>``; inproceedings a ``<booktitle>``;
* a configurable fraction of articles carries a ``<volume>`` (Example 6:
  "an XML document with many authors and few articles that have
  information on volumes");
* a handful of records carry the rare ``<note>``-in-``<erratum>``
  structure used by the selective efficiency tests;
* author names come from a bounded pool, so text-value joins (duplicate
  person detection) have realistic skew.

Sizing: ``DblpConfig(articles=1000)`` yields roughly 20k XASR nodes —
laptop scale with the same shape as the paper's 250 MB original; every
benchmark takes the size as a parameter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_FIRST = ["Ana", "Bob", "Chen", "Dana", "Emil", "Fatima", "Goran", "Hana",
          "Igor", "Jana", "Kurt", "Lena", "Marc", "Nina", "Omar", "Pia",
          "Quentin", "Rosa", "Sven", "Tara", "Ugo", "Vera", "Wei", "Xena",
          "Yann", "Zora"]
_LAST = ["Smith", "Wang", "Mueller", "Garcia", "Kim", "Olteanu", "Koch",
         "Scherzinger", "Ivanov", "Tanaka", "Costa", "Novak", "Berg",
         "Moreau", "Haddad", "Lind"]
_TITLE_WORDS = ["Efficient", "Scalable", "Native", "Streaming", "Query",
                "Evaluation", "XML", "Indexing", "Optimization", "Storage",
                "Algebra", "Processing", "Structural", "Joins", "Trees",
                "Databases", "Views", "Compression", "Caching", "Secondary"]
_JOURNALS = ["VLDB Journal", "TODS", "SIGMOD Record", "Information Systems",
             "TKDE"]
_VENUES = ["SIGMOD", "VLDB", "ICDE", "EDBT", "XIME-P", "WebDB"]


@dataclass(frozen=True)
class DblpConfig:
    """Knobs of the synthetic DBLP generator."""

    articles: int = 500
    inproceedings: int = 150
    seed: int = 2006
    #: Size of the author-name pool; smaller pool = more duplicate names
    #: (drives the selectivity of text-value self-joins).
    name_pool: int = 120
    #: Fraction of articles that carry a <volume> child.
    volume_fraction: float = 0.04
    #: Number of records carrying the rare <erratum><note>..</note>
    #: structure.
    errata: int = 5
    #: Number of inproceedings carrying a rare <editor> child whose text
    #: is a person name from the same pool as authors (the value-join
    #: target of efficiency test 5).
    editors: int = 6
    min_authors: int = 1
    max_authors: int = 5


def _names(rng: random.Random, config: DblpConfig) -> list[str]:
    pool = []
    while len(pool) < config.name_pool:
        name = f"{rng.choice(_FIRST)} {rng.choice(_LAST)}"
        if name not in pool:
            pool.append(name)
    return pool


def _title(rng: random.Random) -> str:
    count = rng.randint(3, 7)
    return " ".join(rng.choice(_TITLE_WORDS) for __ in range(count))


def generate_dblp(config: DblpConfig | None = None) -> str:
    """Generate a synthetic DBLP document as XML text."""
    config = config or DblpConfig()
    rng = random.Random(config.seed)
    names = _names(rng, config)
    erratum_slots = set(rng.sample(range(config.articles),
                                   min(config.errata, config.articles)))

    parts: list[str] = ["<dblp>"]
    for index in range(config.articles):
        parts.append(f'<article key="journals/a{index}">')
        for __ in range(rng.randint(config.min_authors,
                                    config.max_authors)):
            parts.append(f"<author>{rng.choice(names)}</author>")
        parts.append(f"<title>{_title(rng)}</title>")
        parts.append(f"<year>{rng.randint(1990, 2006)}</year>")
        parts.append(f"<journal>{rng.choice(_JOURNALS)}</journal>")
        if rng.random() < config.volume_fraction:
            parts.append(f"<volume>{rng.randint(1, 60)}</volume>")
        if index in erratum_slots:
            parts.append("<erratum><note>corrected reference</note>"
                         "</erratum>")
        parts.append("</article>")
    editor_slots = set(rng.sample(range(config.inproceedings),
                                  min(config.editors,
                                      config.inproceedings)))
    for index in range(config.inproceedings):
        parts.append(f'<inproceedings key="conf/p{index}">')
        for __ in range(rng.randint(config.min_authors,
                                    config.max_authors)):
            parts.append(f"<author>{rng.choice(names)}</author>")
        if index in editor_slots:
            parts.append(f"<editor>{rng.choice(names)}</editor>")
        parts.append(f"<title>{_title(rng)}</title>")
        parts.append(f"<year>{rng.randint(1990, 2006)}</year>")
        parts.append(f"<booktitle>{rng.choice(_VENUES)}</booktitle>")
        parts.append("</inproceedings>")
    parts.append("</dblp>")
    return "".join(parts)
