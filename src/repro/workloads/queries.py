"""The query suites of Section 4.

**Correctness suite** — "up to 16 complex XQ queries ... covering fairly
all XQ constructs and combinations of them".  The sixteen queries below
collectively exercise: empty sequence, construction (nested, empty, with
literal text), concatenation, bare variables, both axes, all three node
tests, absolute and multi-step paths, for-nesting, if with every condition
form (true(), =const, =var, some with child/descendant sources, nested
some, and, or, not), constructors between for-loops (the strict-merging
case), and non-existent labels.  They are designed to be well-typed on any
document (comparisons only ever touch text()-bound variables), so every
engine must produce byte-identical output on all four test documents.

**Efficiency suite** — five "secret" queries engineered, as in the paper,
so that "query plans with costs varying by orders of magnitude" exist and
the optimized engines separate cleanly from the unoptimized ones
(Figure 7).  Each query documents the trap it sets.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The sixteen public correctness queries (name → XQ text).
CORRECTNESS_QUERIES: dict[str, str] = {
    # 1. Bare descendant step from the root.
    "q01-all-titles": "//title",
    # 2. Child path with output of whole subtrees.
    "q02-child-path": "for $x in /*/author return $x",
    # 3. Multi-step path with text() test.
    "q03-text-leaves": "for $t in /*/title/text() return <t>{ $t }</t>",
    # 4. Wildcard test.
    "q04-wildcard": "for $x in /* return for $y in $x/* return <c/>",
    # 5. Nested construction with literal text.
    "q05-construct": "<out>found<inner>{ //year }</inner></out>",
    # 6. Concatenation of three subresults.
    "q06-sequence": "//volume, <sep/>, //booktitle",
    # 7. if true() and empty else.
    "q07-if-true": "if (true()) then <yes/> else ()",
    # 8. some over descendant text with constant comparison.
    "q08-some-const": ("for $x in /*/article return "
                       "if (some $t in $x//text() satisfies $t = \"42\") "
                       "then <hit/> else ()"),
    # 9. Variable-variable comparison (both text-bound).
    "q09-var-eq-var": ("for $x in //author return "
                       "if (some $s in $x/text() satisfies "
                       "some $t in $x/text() satisfies $s = $t) "
                       "then <same/> else ()"),
    # 10. Constructor *between* for-loops (strict merging: empty inner
    # results must still construct).
    "q10-strict-merge": ("for $x in /*/article return "
                         "<entry>{ for $v in $x/volume return $v }"
                         "</entry>"),
    # 11. and / or / not combination.
    "q11-boolean": ("for $x in //article return "
                    "if ((some $t in $x/year/text() satisfies "
                    "$t = \"2005\") and "
                    "(not(some $v in $x/volume/text() satisfies "
                    "$v = \"1\") or true())) "
                    "then <m/> else ()"),
    # 12. Deep descendant chain (TREEBANK-flavoured).
    "q12-deep-descendant": ("for $s in //S return "
                            "for $n in $s//NN return $n"),
    # 13. Non-existent label (must be empty everywhere, fast on indexed
    # engines).
    "q13-nonexistent": "for $x in //phdthesis return $x",
    # 14. Nested for with repeated labels.
    "q14-same-label": ("for $a in //NP return "
                       "for $b in $a//NP return <nested/>"),
    # 15. if between loops plus descendant inside condition.
    "q15-cond-descendant": ("for $x in /* return "
                            "if (some $d in $x//DT satisfies true()) "
                            "then <has-dt/> else ()"),
    # 16. Everything at once: path, nesting, construction, some/and.
    "q16-kitchen-sink": ("<report>{ for $x in /*/article return "
                         "if ((some $a in $x/author/text() satisfies "
                         "$a = \"Wei Wang\") and "
                         "(some $y in $x/year/text() satisfies "
                         "$y = \"2000\")) "
                         "then <match>{ $x/title }</match> else () "
                         "}</report>"),
}


@dataclass(frozen=True)
class EfficiencyQuery:
    """One secret efficiency test: the query plus the trap it sets."""

    name: str
    xq: str
    trap: str


#: The five secret efficiency queries (Figure 7's columns).
EFFICIENCY_QUERIES: list[EfficiencyQuery] = [
    EfficiencyQuery(
        name="test-1",
        xq=("for $x in //article return for $t in $x/title return $t"),
        trap=("Baseline child-axis join.  Every engine finishes; engines "
              "without indexes pay nested full scans and land 10–100×ドル "
              "behind the INL-join engines.")),
    EfficiencyQuery(
        name="test-2",
        xq=("for $x in //erratum return for $y in $x/note return $y"),
        trap=("Highly selective label (a handful of errata).  Label-index "
              "engines answer almost instantly; scan-based engines pay "
              "two full relation scans.")),
    EfficiencyQuery(
        name="test-3",
        xq=("for $x in //author return for $y in //author return "
            "if (some $s in $x/text() satisfies "
            "(some $t in $y/text() satisfies "
            "($s = $t and $s = \"Wei Wang\"))) "
            "then <dup/> else ()"),
        trap=("Author self-join on text values, anchored to one name.  "
              "Cost-based engines start from the text-value index and "
              "stay linear; syntactic-order engines hit the author × "
              "author cross product — time-out (Figure 7: engines 3–5 "
              "stopped at the cap).")),
    EfficiencyQuery(
        name="test-4",
        xq=("for $x in //phdthesis return for $y in $x//author "
            "return $y"),
        trap=("Non-existent node label.  'The query in the fourth test "
              "uses a non-existent node label' — label-index engines "
              "return empty in ~0 s; scan engines still scan.")),
    EfficiencyQuery(
        name="test-5",
        xq=("for $t1 in //editor/text() return "
            "for $t2 in //author/text() return "
            "if ($t1 = $t2) then <edits>{ $t1 }</edits> else ()"),
        trap=("Two nested, yet unrelated, for-loops — a rare-label loop "
              "(editor, a handful of nodes) and a huge one (author) — "
              "joined only through a text-value equality: 'two joins "
              "with very different selectivities'.  The calibrated "
              "engine starts from the editors and drives the value "
              "index (a few probes); a skew-blind estimator sees every "
              "label tie and its tie-break starts from the authors — "
              "'the very unselective join at the bottom of the plan' — "
              "time-out.  The syntactic order is the good one, so the "
              "no-reorder engine 3 survives, exactly as in Figure 7.")),
]
