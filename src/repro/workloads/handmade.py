"""Small handmade documents.

:data:`FIGURE2_XML` is the paper's running example (Figure 2): the
journal/authors/name document whose in/out numbering the paper prints.
:data:`EDGE_CASE_DOCUMENTS` collects tiny documents exercising structural
corner cases (empty elements, deep chains, mixed content, repeated text).
"""

#: The document of Figure 2 (in/out labels 1..18).
FIGURE2_XML = (
    "<journal>"
    "<authors><name>Ana</name><name>Bob</name></authors>"
    "<title>DB</title>"
    "</journal>"
)

#: Expected XASR tuples for Figure 2, as printed in the paper
#: (in, out, parent_in, type name, value).
FIGURE2_XASR = [
    (1, 18, 0, "root", None),
    (2, 17, 1, "element", "journal"),
    (3, 12, 2, "element", "authors"),
    (4, 7, 3, "element", "name"),
    (5, 6, 4, "text", "Ana"),
    (8, 11, 3, "element", "name"),
    (9, 10, 8, "text", "Bob"),
    (13, 16, 2, "element", "title"),
    (14, 15, 13, "text", "DB"),
]

EDGE_CASE_DOCUMENTS: dict[str, str] = {
    "empty-root": "<a/>",
    "single-text": "<a>x</a>",
    "deep-chain": ("<a><b><c><d><e><f><g>bottom</g></f></e></d></c></b>"
                   "</a>"),
    "wide-flat": "<r>" + "".join(f"<item>i{i}</item>"
                                 for i in range(20)) + "</r>",
    "repeated-text": ("<r><x>same</x><y>same</y><z>other</z>"
                      "<w>same</w></r>"),
    "same-labels-nested": "<a><a><a>deep</a></a><a>wide</a></a>",
    "mixed-empty": "<r><a/><b>t</b><c/><d><e/></d></r>",
}
