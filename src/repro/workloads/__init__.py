"""Workloads: the paper's documents and query suites, scaled.

The course tested engines on DBLP (250 MB), a 16 MB DBLP excerpt,
TREEBANK (80 MB) and "a small handmade document of several kilobytes".
The originals are large third-party files; this package ships
deterministic synthetic generators with the same structural character:

* :func:`~repro.workloads.dblp.generate_dblp` — shallow, wide
  bibliographic data (articles, inproceedings, authors drawn from a
  shared name pool so value joins have duplicates, rare labels for
  selectivity experiments);
* :func:`~repro.workloads.treebank.generate_treebank` — deeply nested
  parse trees (the descendant-axis stress test);
* :mod:`~repro.workloads.handmade` — the Figure 2 document, verbatim,
  plus small edge-case documents;
* :mod:`~repro.workloads.queries` — the 16-query correctness suite
  covering every XQ construct and the 5 "secret" efficiency queries
  engineered per Section 4.
"""

from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.handmade import (
    EDGE_CASE_DOCUMENTS,
    FIGURE2_XML,
)
from repro.workloads.queries import (
    CORRECTNESS_QUERIES,
    EFFICIENCY_QUERIES,
    EfficiencyQuery,
)
from repro.workloads.treebank import TreebankConfig, generate_treebank

__all__ = [
    "DblpConfig",
    "generate_dblp",
    "TreebankConfig",
    "generate_treebank",
    "FIGURE2_XML",
    "EDGE_CASE_DOCUMENTS",
    "CORRECTNESS_QUERIES",
    "EFFICIENCY_QUERIES",
    "EfficiencyQuery",
]
