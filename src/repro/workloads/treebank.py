"""Synthetic TREEBANK: deeply nested parse-tree XML.

The real TREEBANK (80 MB) is Penn-Treebank-derived: parse trees with deep
recursive nesting — the opposite structural extreme from DBLP.  The
generator emits sentences whose syntactic structure recurses (S → NP VP,
VP → VB NP PP, PP → IN NP, NP → DT NN | NP PP ...), giving documents with
average depth 10–25 and long descendant chains, which is exactly what
stresses the descendant-axis access paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

_NOUNS = ["parser", "index", "query", "tree", "page", "join", "cache",
          "engine", "scan", "node"]
_VERBS = ["evaluates", "stores", "splits", "merges", "scans", "rewrites"]
_DETS = ["the", "a", "every", "some"]
_PREPS = ["with", "over", "under", "near"]
_ADJS = ["fast", "large", "nested", "sorted", "lazy"]


@dataclass(frozen=True)
class TreebankConfig:
    """Knobs of the synthetic TREEBANK generator."""

    sentences: int = 120
    seed: int = 1986
    max_depth: int = 18
    #: Probability that an NP recurses into NP-PP (drives depth).
    recursion: float = 0.55


def generate_treebank(config: TreebankConfig | None = None) -> str:
    """Generate a synthetic TREEBANK document as XML text."""
    config = config or TreebankConfig()
    rng = random.Random(config.seed)
    parts: list[str] = ["<FILE>"]
    for __ in range(config.sentences):
        parts.append("<S>")
        _np(rng, config, parts, depth=2)
        _vp(rng, config, parts, depth=2)
        parts.append("</S>")
    parts.append("</FILE>")
    return "".join(parts)


def _np(rng: random.Random, config: TreebankConfig, parts: list[str],
        depth: int) -> None:
    parts.append("<NP>")
    if depth < config.max_depth and rng.random() < config.recursion:
        _np(rng, config, parts, depth + 1)
        _pp(rng, config, parts, depth + 1)
    else:
        parts.append(f"<DT>{rng.choice(_DETS)}</DT>")
        if rng.random() < 0.4:
            parts.append(f"<JJ>{rng.choice(_ADJS)}</JJ>")
        parts.append(f"<NN>{rng.choice(_NOUNS)}</NN>")
    parts.append("</NP>")


def _vp(rng: random.Random, config: TreebankConfig, parts: list[str],
        depth: int) -> None:
    parts.append("<VP>")
    parts.append(f"<VB>{rng.choice(_VERBS)}</VB>")
    _np(rng, config, parts, depth + 1)
    if depth < config.max_depth and rng.random() < 0.3:
        _pp(rng, config, parts, depth + 1)
    parts.append("</VP>")


def _pp(rng: random.Random, config: TreebankConfig, parts: list[str],
        depth: int) -> None:
    parts.append("<PP>")
    parts.append(f"<IN>{rng.choice(_PREPS)}</IN>")
    if depth < config.max_depth:
        _np(rng, config, parts, depth + 1)
    else:
        parts.append(f"<NN>{rng.choice(_NOUNS)}</NN>")
    parts.append("</PP>")
