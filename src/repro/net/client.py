"""The blocking client library for the network front door.

A thin, dependency-free socket client speaking the protocol of
:mod:`repro.net.protocol`::

    from repro.net import NetClient

    with NetClient(host, port) as client:
        statement = client.prepare("dblp", '''
            declare variable $who external;
            for $a in //author return
            if (some $t in $a/text() satisfies $t = $who)
            then $a else ()''')
        with statement.execute(bindings={"who": "Wei Wang"}) as cursor:
            for row in cursor:              # streamed page by page
                print(row)

Result rows arrive as serialized XML strings (the server serializes on
its worker threads).  Server-side failures raise the same typed
exceptions the in-process API raises — ``AdmissionError``,
``ResourceLimitExceeded``, ``CatalogError``, ``BindingError`` … —
rebuilt from the error frames, so calling code is written once for
both deployments.

One request is in flight per connection at a time (the protocol is
strict request/response); the client serializes calls with a lock, so
sharing one ``NetClient`` between threads is safe but pipelines
nothing.  Open one client per thread of control for parallelism, as
with any DBMS connection.
"""

from __future__ import annotations

import socket
import threading

from repro.core.server import PageEnvelope
from repro.errors import ProtocolError
from repro.obs import TraceContext
from repro.net.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    FrameDecoder,
    MsgKind,
    decode_error,
    encode_frame,
)

#: Default per-operation socket timeout.  Generous: a FETCH legitimately
#: waits out the server-side queue; the *deadline* is the server's job
#: (pass ``time_limit`` to ``execute``), the socket timeout only guards
#: against a dead peer.
DEFAULT_TIMEOUT = 120.0


class NetClient:
    """A blocking connection to a :class:`~repro.net.server.NetworkServer`."""

    def __init__(self, host: str, port: int,
                 timeout: float | None = DEFAULT_TIMEOUT,
                 max_frame: int = MAX_FRAME):
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder(max_frame=max_frame)
        self._lock = threading.RLock()
        self._closed = False
        hello = self._request(MsgKind.HELLO,
                              {"version": PROTOCOL_VERSION},
                              MsgKind.HELLO_OK)
        #: The server's HELLO_OK payload (version, limits, defaults).
        self.server_info = hello

    # -- plumbing ------------------------------------------------------------

    def _read_frame(self) -> tuple[MsgKind, dict]:
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                return frame
            try:
                data = self._sock.recv(65536)
            except TimeoutError:
                raise                    # a dead peer, not bad framing
            except OSError as error:
                raise ProtocolError(
                    f"connection lost: {error}") from error
            if not data:
                raise ProtocolError("server closed the connection")
            self._decoder.feed(data)

    def _request(self, kind: MsgKind, payload: dict,
                 expect: MsgKind) -> dict:
        with self._lock:
            if self._closed:
                raise ProtocolError("client is closed")
            try:
                self._sock.sendall(encode_frame(kind, payload))
            except TimeoutError:
                raise
            except OSError as error:
                raise ProtocolError(
                    f"connection lost: {error}") from error
            got, response = self._read_frame()
        if got is MsgKind.ERROR:
            raise decode_error(response)
        if got is not expect:
            raise ProtocolError(f"expected {expect.name}, server sent "
                                f"{got.name}")
        return response

    # -- the client surface --------------------------------------------------

    def prepare(self, document: str, query: str) -> "RemoteStatement":
        """Validate ``query`` server-side; returns a reusable handle."""
        response = self._request(MsgKind.PREPARE,
                                 {"document": document, "query": query},
                                 MsgKind.PREPARE_OK)
        return RemoteStatement(self, response["statement"], document,
                               tuple(response["externals"]))

    def execute(self, document: str, query: str,
                bindings: dict[str, str] | None = None,
                page_size: int | None = None,
                time_limit: float | None = None,
                trace=None) -> "RemoteCursor":
        """Run a one-shot query; returns a streaming cursor.

        ``trace`` may be a :class:`~repro.obs.TraceContext` (its id and
        deadline go on the wire, and the server's span tree is grafted
        under its current span when the cursor hits eof) or an
        already-encoded wire payload dict (spans then surface on
        ``cursor.spans`` only).
        """
        return self._execute({"document": document, "query": query},
                             bindings, page_size, time_limit, trace)

    @staticmethod
    def _trace_payload(trace) -> dict | None:
        if trace is None:
            return None
        if isinstance(trace, TraceContext):
            return trace.as_payload()
        return dict(trace)

    def _execute(self, target: dict, bindings, page_size,
                 time_limit, trace=None) -> "RemoteCursor":
        payload = dict(target)
        if bindings:
            payload["bindings"] = dict(bindings)
        if page_size is not None:
            payload["page_size"] = page_size
        if time_limit is not None:
            payload["time_limit"] = time_limit
        wire_trace = self._trace_payload(trace)
        if wire_trace is not None:
            payload["trace"] = wire_trace
        response = self._request(MsgKind.EXECUTE, payload,
                                 MsgKind.EXECUTE_OK)
        return RemoteCursor(self, response["cursor"], trace=trace)

    def query(self, document: str, query: str,
              bindings: dict[str, str] | None = None,
              time_limit: float | None = None) -> str:
        """Execute and concatenate the serialized result rows."""
        with self.execute(document, query, bindings=bindings,
                          time_limit=time_limit) as cursor:
            return "".join(cursor)

    def update(self, document: str, statement: str,
               bindings: dict[str, str] | None = None,
               trace=None) -> dict:
        """Run an updating statement; returns the per-kind counts.

        With a :class:`~repro.obs.TraceContext` as ``trace``, the
        server's spans are grafted under its current span and stripped
        from the returned dict; a raw payload dict leaves them under
        ``"spans"`` for the caller.
        """
        payload = {"document": document, "statement": statement}
        if bindings:
            payload["bindings"] = dict(bindings)
        wire_trace = self._trace_payload(trace)
        if wire_trace is not None:
            payload["trace"] = wire_trace
        response = self._request(MsgKind.UPDATE, payload,
                                 MsgKind.UPDATE_OK)
        if isinstance(trace, TraceContext):
            trace.attach(response.pop("spans", None))
        return response

    def load(self, document: str, xml: str) -> None:
        """Load (or replace) ``document`` from an XML string.

        The server parses and stores the document before answering, so
        a successful return means the document is queryable (and, on a
        durable database, logged to the WAL).
        """
        self._request(MsgKind.LOAD, {"document": document, "xml": xml},
                      MsgKind.LOAD_OK)

    def stats(self, recent: int = 0) -> dict:
        """The server's STATS payload (pool + network observability)."""
        payload = {"recent": recent} if recent else {}
        return self._request(MsgKind.STATS, payload, MsgKind.STATS_OK)

    def metrics(self) -> str:
        """The server's Prometheus-style metrics page as text."""
        return self._request(MsgKind.METRICS, {},
                             MsgKind.METRICS_OK)["text"]

    def _fetch(self, cursor: int) -> dict:
        return self._request(MsgKind.FETCH, {"cursor": cursor},
                             MsgKind.PAGE)

    def _close_cursor(self, cursor: int) -> None:
        self._request(MsgKind.CLOSE, {"cursor": cursor},
                      MsgKind.CLOSE_OK)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop the connection; the server reclaims all session state."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RemoteStatement:
    """A server-validated statement handle, executable many times."""

    def __init__(self, client: NetClient, handle: int, document: str,
                 externals: tuple[str, ...]):
        self.client = client
        self.handle = handle
        self.document = document
        #: Variables every execution must bind.
        self.externals = externals

    def execute(self, bindings: dict[str, str] | None = None,
                page_size: int | None = None,
                time_limit: float | None = None,
                trace=None) -> "RemoteCursor":
        """Run the prepared statement; returns a streaming cursor."""
        return self.client._execute({"statement": self.handle},
                                    bindings, page_size, time_limit,
                                    trace)

    def query(self, bindings: dict[str, str] | None = None,
              **overrides) -> str:
        """Execute and concatenate the serialized result rows."""
        with self.execute(bindings=bindings, **overrides) as cursor:
            return "".join(cursor)

    def close(self) -> None:
        """Release the server-side handle."""
        self.client._request(MsgKind.CLOSE,
                             {"statement": self.handle},
                             MsgKind.CLOSE_OK)


class RemoteCursor:
    """A streaming remote result: iterate serialized rows, page by page.

    Each page is one FETCH round trip; the server produces at most a
    bounded number of pages ahead (its backpressure window), so a
    consumer reading slowly slows the producer rather than buffering
    the whole result anywhere.
    """

    def __init__(self, client: NetClient, handle: int, trace=None):
        self.client = client
        self.handle = handle
        self.trace = trace
        self._buffer: list[str] = []
        self._index = 0
        self._eof = False
        #: Populated from the final page.
        self.total_rows: int | None = None
        self.plan_cache_hit: bool | None = None
        #: The server's serialized span tree (traced queries, at eof).
        self.spans: list | None = None

    def fetch_envelope(self) -> PageEnvelope:
        """The next page with its merge-key metadata.

        Returns the full :class:`~repro.core.server.PageEnvelope` —
        ``document``, ``base`` (index of the page's first row in the
        whole result), ``rows`` and ``eof`` — which is what the shard
        mediator's k-way merge consumes.  After the ``eof`` envelope
        the cursor is exhausted and further calls return empty final
        envelopes.
        """
        if self._eof:
            return PageEnvelope(document="", base=self.total_rows or 0,
                                rows=[], eof=True,
                                total_rows=self.total_rows,
                                plan_cache_hit=self.plan_cache_hit)
        try:
            response = self.client._fetch(self.handle)
        except BaseException:
            # The server dropped the cursor along with the error; a
            # later close() must not CLOSE a handle that no longer
            # exists.
            self._eof = True
            raise
        envelope = PageEnvelope.from_payload(response)
        if envelope.eof:
            self._eof = True
            self.total_rows = envelope.total_rows
            self.plan_cache_hit = envelope.plan_cache_hit
            self.spans = envelope.spans
            if isinstance(self.trace, TraceContext):
                self.trace.attach(envelope.spans)
        return envelope

    def fetch_page(self) -> list[str]:
        """The next server page (empty at end of results)."""
        if self._eof:
            return []
        return self.fetch_envelope().rows

    def __iter__(self):
        return self

    def __next__(self) -> str:
        while self._index >= len(self._buffer):
            if self._eof:
                raise StopIteration
            self._buffer = self.fetch_page()
            self._index = 0
        row = self._buffer[self._index]
        self._index += 1
        return row

    def fetchall(self) -> list[str]:
        """Every remaining row."""
        return list(self)

    def close(self) -> None:
        """Abandon the cursor early; the server frees it (idempotent)."""
        if self._eof:
            return
        self._eof = True
        self.client._close_cursor(self.handle)

    def __enter__(self) -> "RemoteCursor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
