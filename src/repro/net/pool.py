"""A small connection pool over :class:`~repro.net.client.NetClient`.

The shard mediator talks to every shard over this pool.  Two things
distinguish it from "a list of clients":

* **Reconnect on demand.**  A pooled connection can go stale between
  uses — the shard process restarted, the server recycled it, the OS
  dropped it.  ``run`` detects the failure (``ProtocolError``,
  ``ServerClosedError``, or a raw ``ConnectionError``/``OSError``),
  discards the dead connection, dials a fresh one, and retries the
  operation once.  That single retry is exactly what makes a shard
  *restart* invisible to mediator clients: the first request after the
  restart hits the stale socket, the retry hits the new process.

* **Typed unavailability.**  When the dial itself fails — nothing is
  listening — the pool raises
  :class:`~repro.errors.ShardUnavailableError` instead of a raw socket
  error, so callers up the stack can distinguish "this shard is down"
  from "this query is wrong".

The retry is applied only to operations the caller marks retryable.
Queries are read-only and idempotent; updates are not — an UPDATE whose
connection died *after* the server applied it must surface the failure
rather than silently apply twice.
"""

from __future__ import annotations

import threading
from typing import Callable, TypeVar

from repro.errors import (
    ProtocolError,
    ServerClosedError,
    ShardUnavailableError,
)
from repro.net.client import DEFAULT_TIMEOUT, NetClient

T = TypeVar("T")

#: Failures that mean "the connection is unusable", as opposed to an
#: application-level error travelling over a healthy connection.
_CONNECTION_FAILURES = (ProtocolError, ServerClosedError,
                        ConnectionError, OSError, TimeoutError)


class ConnectionPool:
    """A bounded pool of :class:`NetClient` connections to one address.

    Connections are created lazily on :meth:`acquire`, reused after
    :meth:`release`, and capped at ``capacity`` live connections; an
    acquire beyond capacity blocks until a release.  The pool never
    health-checks idle connections — staleness is detected (and healed)
    at use time by :meth:`run`.
    """

    def __init__(self, host: str, port: int, capacity: int = 4,
                 timeout: float | None = DEFAULT_TIMEOUT,
                 shard: int | None = None):
        """Remember the address; no connection is dialed yet.

        ``shard`` is an optional shard index stamped onto the
        :class:`~repro.errors.ShardUnavailableError` raised when the
        address stops answering, purely for diagnostics.
        """
        self.host = host
        self.port = port
        self.capacity = capacity
        self.timeout = timeout
        self.shard = shard
        self._idle: list[NetClient] = []
        self._lock = threading.Lock()
        self._slots = threading.BoundedSemaphore(capacity)
        self._closed = False
        # Observability counters, read by the mediator's stats().
        self.connects = 0
        self.reuses = 0
        self.discards = 0
        self.retries = 0

    # -- connection lifecycle ------------------------------------------------

    def _dial(self) -> NetClient:
        try:
            client = NetClient(self.host, self.port,
                               timeout=self.timeout)
        except _CONNECTION_FAILURES as error:
            raise ShardUnavailableError(
                f"shard at {self.host}:{self.port} is unreachable: "
                f"{error}", shard=self.shard) from error
        with self._lock:
            self.connects += 1
        return client

    def acquire(self) -> NetClient:
        """A ready connection: a pooled one if available, else fresh.

        Blocks while ``capacity`` connections are checked out.  Raises
        :class:`~repro.errors.ShardUnavailableError` when a fresh
        connection is needed and the dial fails.
        """
        if self._closed:
            raise ServerClosedError("acquire() on a closed pool")
        self._slots.acquire()
        with self._lock:
            if self._idle:
                self.reuses += 1
                return self._idle.pop()
        try:
            return self._dial()
        except BaseException:
            self._slots.release()
            raise

    def release(self, client: NetClient, discard: bool = False) -> None:
        """Return a connection to the pool (or drop it for good)."""
        if discard or self._closed:
            with self._lock:
                self.discards += 1
            client.close()
        else:
            with self._lock:
                self._idle.append(client)
        self._slots.release()

    # -- the retrying entry point --------------------------------------------

    def run(self, operation: Callable[[NetClient], T],
            retryable: bool = True) -> T:
        """Run ``operation(client)`` on a pooled connection.

        On a connection-level failure the dead connection is discarded
        and — when ``retryable`` — the operation is retried exactly
        once on a freshly dialed connection, which absorbs the stale
        socket left behind by a shard restart.  If the redial fails,
        :class:`~repro.errors.ShardUnavailableError` propagates.
        Application-level errors (a typed ERROR frame over a healthy
        connection) are never retried.
        """
        client = self.acquire()
        try:
            result = operation(client)
        except _CONNECTION_FAILURES as error:
            self.release(client, discard=True)
            if not retryable:
                raise
            with self._lock:
                self.retries += 1
            fresh = self.acquire()       # ShardUnavailableError if dead
            try:
                result = operation(fresh)
            except _CONNECTION_FAILURES as again:
                self.release(fresh, discard=True)
                raise ShardUnavailableError(
                    f"shard at {self.host}:{self.port} failed "
                    f"twice: {error}; retry: {again}",
                    shard=self.shard) from again
            except BaseException:
                self.release(fresh)
                raise
            self.release(fresh)
            return result
        except BaseException:
            self.release(client)
            raise
        self.release(client)
        return result

    def record_retry(self) -> None:
        """Count a retry performed by a caller managing its own lease.

        Streaming callers (the shard mediator's cursors) acquire and
        release connections around a whole result stream, outside
        :meth:`run`; this keeps their reconnect attempts visible in the
        same ``retries`` counter.
        """
        with self._lock:
            self.retries += 1

    def stats(self) -> dict:
        """Counters: dials, reuses, discards, retry attempts."""
        with self._lock:
            return {
                "connects": self.connects,
                "reuses": self.reuses,
                "discards": self.discards,
                "retries": self.retries,
                "idle": len(self._idle),
            }

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Close every idle connection; in-flight ones close on release."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
        for client in idle:
            client.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
