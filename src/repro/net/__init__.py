"""The network front door: wire protocol, asyncio server, client.

This package puts the in-process serving layer
(:class:`~repro.core.server.QueryServer`) behind a TCP socket:

* :mod:`repro.net.protocol` — the length-prefixed binary frame codec
  and the typed message vocabulary (HELLO, PREPARE, EXECUTE, FETCH,
  UPDATE, CLOSE, STATS, ERROR), including the mapping that carries the
  library's exception taxonomy across the wire;
* :mod:`repro.net.server` — an asyncio front end owning connection
  lifecycle and per-connection statement/cursor tables, bridging the
  event loop to the threaded worker pool;
* :mod:`repro.net.client` — a blocking client library used by the
  tests, examples and benchmarks;
* :mod:`repro.net.pool` — a reconnecting connection pool, the building
  block the shard mediator (:mod:`repro.shard`) uses to survive shard
  restarts.

Start a server from the command line with ``python -m repro.serve``,
or a sharded cluster with ``python -m repro.shard``.
"""

from repro.net.client import NetClient, RemoteCursor, RemoteStatement
from repro.net.pool import ConnectionPool
from repro.net.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    FrameDecoder,
    MsgKind,
    decode_error,
    encode_error,
    encode_frame,
)
from repro.net.server import NetworkServer

__all__ = [
    "NetworkServer",
    "NetClient",
    "RemoteStatement",
    "RemoteCursor",
    "ConnectionPool",
    "MsgKind",
    "FrameDecoder",
    "encode_frame",
    "encode_error",
    "decode_error",
    "PROTOCOL_VERSION",
    "MAX_FRAME",
]
