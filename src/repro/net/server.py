"""The asyncio front end: TCP connections feeding the worker pool.

One :class:`NetworkServer` owns an asyncio event loop serving any
number of connections, and bridges them to the *threaded*
:class:`~repro.core.server.QueryServer`:

* cheap control operations (admission, statement bookkeeping) run
  directly on the loop — ``submit``/``submit_stream`` never block;
* blocking waits (a stream's next page, an update's result) hop to a
  thread pool via ``run_in_executor`` / ``asyncio.wrap_future``, so a
  slow query stalls only its own connection, never the loop.

Deadlines and load shedding come from the admission-control machinery
underneath: an EXECUTE that overruns ``max_pending`` fails with a typed
``AdmissionError`` frame immediately, a query whose deadline expires —
in the queue, mid-execution, or blocked on a slow client's backpressure
— surfaces as ``ResourceLimitExceeded``.  Either way the connection
stays up; only protocol violations (bad framing) drop it.

Per connection the server keeps a statement table (PREPARE handle →
parsed program) and a cursor table (EXECUTE handle → live
:class:`~repro.core.server.QueryStream`).  Both are torn down
unconditionally when the connection ends, however it ends — the stream
close is what releases a worker blocked producing pages for a client
that vanished, so disconnects can never leak cursors or workers.

Observability: every query that reaches EXECUTE gets a per-query record
(rows, bytes, wall latency, plan-cache hit, outcome), aggregated into a
latency histogram and counters exposed through the STATS message — next
to the ``QueryServer``'s own queue-wait/execution histograms — and
summarized by a periodic structured log line on the ``repro.net``
logger.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
import logging
import struct
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor

from repro.core.server import (
    DEFAULT_MAX_BUFFERED_PAGES,
    DEFAULT_PAGE_SIZE,
    LatencyHistogram,
    PageEnvelope,
    QueryServer,
)
from repro.errors import ProtocolError, ReproError, ServerError, UpdateError
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    TraceContext,
    registry_of,
)
from repro.net.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    MsgKind,
    decode_body,
    encode_error,
    encode_frame,
)
from repro.xq.parser import parse_program

logger = logging.getLogger("repro.net")

_HEADER = struct.Struct("!I")

#: Seconds a fresh connection gets to complete the HELLO handshake.
HANDSHAKE_TIMEOUT = 10.0


class _NetMetrics:
    """Network-layer counters and per-query records.

    Locked because STATS snapshots may be read from outside the event
    loop (tests, the owner's thread) while the loop is recording.
    """

    def __init__(self, recent_capacity: int = 256):
        self._lock = threading.Lock()
        # guarded by: self._lock
        self.connections_open = 0
        # guarded by: self._lock
        self.connections_total = 0
        # guarded by: self._lock
        self.protocol_errors = 0
        # guarded by: self._lock
        self.bytes_sent = 0
        # guarded by: self._lock
        self.bytes_received = 0
        # guarded by: self._lock
        self.queries = 0
        # guarded by: self._lock
        self.updates = 0
        # guarded by: self._lock
        self.errors_sent = 0
        # guarded by: self._lock
        self.rows_sent = 0
        # guarded by: self._lock
        self.latency = LatencyHistogram()
        # guarded by: self._lock
        self.recent: deque[dict] = deque(maxlen=recent_capacity)

    def record_query(self, record: dict) -> None:
        with self._lock:
            self.queries += 1
            self.rows_sent += record["rows"]
            self.latency.record(record["seconds"])
            self.recent.append(record)

    def count(self, attribute: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, attribute, getattr(self, attribute) + amount)

    def snapshot(self, recent: int = 0) -> dict:
        with self._lock:
            payload = {
                "connections_open": self.connections_open,
                "connections_total": self.connections_total,
                "protocol_errors": self.protocol_errors,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "queries": self.queries,
                "updates": self.updates,
                "errors_sent": self.errors_sent,
                "rows_sent": self.rows_sent,
                "latency": self.latency.snapshot().as_dict(),
            }
            if recent:
                payload["recent"] = list(self.recent)[-recent:]
            return payload


class _Connection:
    """One client connection: handshake, dispatch loop, cleanup."""

    def __init__(self, server: "NetworkServer",
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.statements: dict[int, tuple[str, object]] = {}
        self.cursors: dict[int, dict] = {}
        self._next_id = 1

    # -- framing -------------------------------------------------------------

    async def _read_frame(self) -> tuple[MsgKind, dict]:
        header = await self.reader.readexactly(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length == 0:
            raise ProtocolError("zero-length frame")
        if length > self.server.max_frame:
            raise ProtocolError(
                f"frame of {length} bytes exceeds the "
                f"{self.server.max_frame}-byte limit")
        body = await self.reader.readexactly(length)
        self.server.metrics.count("bytes_received",
                                  _HEADER.size + length)
        return decode_body(body)

    async def _send(self, kind: MsgKind, payload: dict) -> None:
        frame = encode_frame(kind, payload)
        self.writer.write(frame)
        self.server.metrics.count("bytes_sent", len(frame))
        await self.writer.drain()

    async def _send_error(self, error: BaseException) -> None:
        self.server.metrics.count("errors_sent")
        await self._send(MsgKind.ERROR, encode_error(error))

    # -- lifecycle -----------------------------------------------------------

    async def run(self) -> None:
        try:
            kind, payload = await asyncio.wait_for(self._read_frame(),
                                                   HANDSHAKE_TIMEOUT)
            if kind is not MsgKind.HELLO:
                raise ProtocolError(f"expected HELLO, got {kind.name}")
            if payload.get("version") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"protocol version mismatch: client speaks "
                    f"{payload.get('version')!r}, server speaks "
                    f"{PROTOCOL_VERSION}")
        except ProtocolError as error:
            self.server.metrics.count("protocol_errors")
            with contextlib.suppress(Exception):
                await self._send_error(error)
            return
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                ConnectionError):
            return
        hello_ok = {
            "server": "repro", "version": PROTOCOL_VERSION,
            "max_frame": self.server.max_frame,
            "page_size": self.server.page_size}
        if self.server.shard_id is not None:
            hello_ok["shard_id"] = self.server.shard_id
        await self._send(MsgKind.HELLO_OK, hello_ok)

        while True:
            try:
                kind, payload = await self._read_frame()
            except (asyncio.IncompleteReadError, ConnectionError):
                return                       # client went away
            except ProtocolError as error:
                # Broken framing cannot be resynchronized: answer once
                # (best effort) and drop the connection.
                self.server.metrics.count("protocol_errors")
                with contextlib.suppress(Exception):
                    await self._send_error(error)
                return
            try:
                await self._dispatch(kind, payload)
            except ProtocolError as error:
                self.server.metrics.count("protocol_errors")
                with contextlib.suppress(Exception):
                    await self._send_error(error)
                return
            except ReproError as error:
                # Application-level failure: typed frame, connection
                # stays up.
                await self._send_error(error)
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            except asyncio.CancelledError:
                raise
            except Exception as error:      # noqa: BLE001 — typed frame
                logger.exception("unexpected error serving %s", kind)
                await self._send_error(error)

    def cleanup(self) -> None:
        """Tear down this connection's server-side state.

        Closing every live stream is what unblocks (and frees) a worker
        mid-production for a vanished client — the leak-proofing the
        disconnect tests pin down.
        """
        for state in self.cursors.values():
            state["stream"].close()
        self.cursors.clear()
        self.statements.clear()

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(self, kind: MsgKind, payload: dict) -> None:
        if kind is MsgKind.PREPARE:
            await self._on_prepare(payload)
        elif kind is MsgKind.EXECUTE:
            await self._on_execute(payload)
        elif kind is MsgKind.FETCH:
            await self._on_fetch(payload)
        elif kind is MsgKind.UPDATE:
            await self._on_update(payload)
        elif kind is MsgKind.LOAD:
            await self._on_load(payload)
        elif kind is MsgKind.CLOSE:
            await self._on_close(payload)
        elif kind is MsgKind.STATS:
            await self._on_stats(payload)
        elif kind is MsgKind.METRICS:
            await self._on_metrics(payload)
        else:
            raise ProtocolError(f"unexpected {kind.name} frame from a "
                                f"client")

    @staticmethod
    def _field(payload: dict, name: str, kinds, where: str):
        value = payload.get(name)
        if not isinstance(value, kinds):
            raise ProtocolError(f"{where} requires {name!r}")
        return value

    async def _on_prepare(self, payload: dict) -> None:
        document = self._field(payload, "document", str, "PREPARE")
        text = self._field(payload, "query", str, "PREPARE")
        loop = asyncio.get_running_loop()
        # Parsing is pure CPU but can be nontrivial for pathological
        # inputs; keep the loop responsive by hopping off it.
        program = await loop.run_in_executor(self.server.executor,
                                             parse_program, text)
        if program.is_updating:
            raise UpdateError("updating statements cannot be prepared; "
                              "send them as UPDATE frames")
        handle = self._next_id
        self._next_id += 1
        self.statements[handle] = (document, program)
        await self._send(MsgKind.PREPARE_OK, {
            "statement": handle,
            "document": document,
            "externals": sorted(program.required_variables())})

    def _execute_target(self, payload: dict) -> tuple[str, object]:
        if "statement" in payload:
            handle = payload["statement"]
            try:
                return self.statements[handle]
            except (KeyError, TypeError):
                raise ServerError(
                    f"unknown statement handle {handle!r}") from None
        document = self._field(payload, "document", str, "EXECUTE")
        query = self._field(payload, "query", str, "EXECUTE")
        return document, query

    async def _on_execute(self, payload: dict) -> None:
        document, query = self._execute_target(payload)
        bindings = payload.get("bindings") or None
        if bindings is not None and not (
                isinstance(bindings, dict)
                and all(isinstance(value, str)
                        for value in bindings.values())):
            raise ProtocolError("EXECUTE bindings must map names to "
                                "strings")
        page_size = payload.get("page_size") or self.server.page_size
        if not isinstance(page_size, int) or page_size < 1:
            raise ProtocolError(f"bad page_size {page_size!r}")
        overrides = {}
        if "time_limit" in payload:
            time_limit = payload["time_limit"]
            if time_limit is not None and not isinstance(
                    time_limit, (int, float)):
                raise ProtocolError(f"bad time_limit {time_limit!r}")
            overrides["time_limit"] = time_limit
        trace = self._trace_context(payload, "EXECUTE", document)
        # Admission control happens right here, synchronously: an
        # AdmissionError propagates to the dispatch loop and leaves as
        # a typed frame while the connection lives on.
        stream = self.server.query_server.submit_stream(
            document, query, bindings=bindings, serialize=True,
            page_size=page_size,
            max_buffered_pages=self.server.max_buffered_pages,
            trace=trace, **overrides)
        handle = self._next_id
        self._next_id += 1
        self.cursors[handle] = {
            "stream": stream, "document": document, "rows": 0,
            "bytes": 0, "started": time.monotonic(), "trace": trace}
        await self._send(MsgKind.EXECUTE_OK, {"cursor": handle})

    def _trace_context(self, payload: dict,
                       where: str, document: str) -> TraceContext | None:
        """Rebuild the caller's trace context, if the frame carries one."""
        wire = payload.get("trace")
        if wire is None:
            return None
        if not isinstance(wire, dict):
            raise ProtocolError(f"{where} trace must be an object")
        name = "shard" if self.server.shard_id is not None else "server"
        trace = TraceContext.from_payload(wire, name=name,
                                          document=document)
        if self.server.shard_id is not None:
            trace.root.attributes["shard"] = self.server.shard_id
        return trace

    async def _on_fetch(self, payload: dict) -> None:
        handle = payload.get("cursor")
        state = self.cursors.get(handle)
        if state is None:
            raise ServerError(f"unknown cursor handle {handle!r}")
        stream = state["stream"]
        loop = asyncio.get_running_loop()
        try:
            page = await loop.run_in_executor(self.server.executor,
                                              stream.next_page)
        except BaseException as error:
            self.cursors.pop(handle, None)
            stream.close()
            self._finish_query(state, "error", type(error).__name__)
            raise
        if page is None:
            self.cursors.pop(handle, None)
            spans = self._finish_query(state, "ok", None)
            envelope = PageEnvelope(
                document=state["document"], base=state["rows"],
                rows=[], eof=True, total_rows=state["rows"],
                plan_cache_hit=stream.plan_cache_hit, spans=spans)
            await self._send(MsgKind.PAGE,
                             {"cursor": handle, **envelope.as_payload()})
            return
        envelope = PageEnvelope(document=state["document"],
                                base=state["rows"], rows=page, eof=False)
        state["rows"] += len(page)
        state["bytes"] += sum(len(row) for row in page)
        await self._send(MsgKind.PAGE,
                         {"cursor": handle, **envelope.as_payload()})

    def _finish_query(self, state: dict, status: str,
                      error: str | None) -> list | None:
        record = {
            "document": state["document"],
            "rows": state["rows"],
            "bytes": state["bytes"],
            "seconds": round(time.monotonic() - state["started"], 6),
            "plan_cache_hit": state["stream"].plan_cache_hit,
            "status": status,
        }
        if error is not None:
            record["error"] = error
        spans = None
        trace = state.get("trace")
        if trace is not None:
            close_attrs = {"status": status, "rows": state["rows"]}
            if error is not None:
                close_attrs["error"] = error
            spans = trace.close(**close_attrs)
        self.server.metrics.record_query(record)
        self.server.slow_log.observe(record, spans)
        return spans

    async def _on_update(self, payload: dict) -> None:
        document = self._field(payload, "document", str, "UPDATE")
        statement = self._field(payload, "statement", str, "UPDATE")
        bindings = payload.get("bindings") or None
        trace = self._trace_context(payload, "UPDATE", document)
        future = self.server.query_server.submit(document, statement,
                                                 bindings=bindings,
                                                 trace=trace)
        result = await asyncio.wrap_future(future)
        self.server.metrics.count("updates")
        body = dataclasses.asdict(result)
        if trace is not None:
            body["spans"] = trace.close(status="ok")
        await self._send(MsgKind.UPDATE_OK, body)

    async def _on_load(self, payload: dict) -> None:
        document = self._field(payload, "document", str, "LOAD")
        xml = self._field(payload, "xml", str, "LOAD")
        loop = asyncio.get_running_loop()
        # Parsing and storing a document is blocking work; hop off the
        # loop so one big LOAD doesn't stall every other connection.
        await loop.run_in_executor(
            self.server.executor,
            lambda: self.server.query_server.load(document, xml=xml))
        await self._send(MsgKind.LOAD_OK, {"document": document})

    async def _on_close(self, payload: dict) -> None:
        if "cursor" in payload:
            state = self.cursors.pop(payload["cursor"], None)
            if state is None:
                raise ServerError(
                    f"unknown cursor handle {payload['cursor']!r}")
            state["stream"].close()
            self._finish_query(state, "closed", None)
            await self._send(MsgKind.CLOSE_OK,
                             {"cursor": payload["cursor"]})
            return
        if "statement" in payload:
            if self.statements.pop(payload["statement"], None) is None:
                raise ServerError(
                    f"unknown statement handle {payload['statement']!r}")
            await self._send(MsgKind.CLOSE_OK,
                             {"statement": payload["statement"]})
            return
        raise ProtocolError("CLOSE requires 'cursor' or 'statement'")

    async def _on_stats(self, payload: dict) -> None:
        recent = payload.get("recent", 0)
        if not isinstance(recent, int) or recent < 0:
            raise ProtocolError(f"bad recent {recent!r}")
        await self._send(MsgKind.STATS_OK, self.server.stats(recent))

    async def _on_metrics(self, payload: dict) -> None:
        loop = asyncio.get_running_loop()
        # Producers may take subsystem locks; render off the loop.
        text = await loop.run_in_executor(
            self.server.executor,
            self.server.metrics_registry.render_text)
        await self._send(MsgKind.METRICS_OK, {"text": text})


class NetworkServer:
    """Serve a :class:`~repro.core.dbms.XmlDbms` over TCP.

    Owns (or wraps) a :class:`~repro.core.server.QueryServer` and an
    asyncio event loop.  Two ways to run it:

    * :meth:`start` / :meth:`stop` — spin the loop on a background
      thread (what the tests and the embedding use);
    * ``python -m repro.serve`` — the command-line entry point
      (:mod:`repro.serve`), which also handles document loading and
      signals.
    """

    def __init__(self, dbms, host: str = "127.0.0.1", port: int = 0,
                 workers: int = 4, max_pending: int = 64,
                 profile: str = "m4",
                 time_limit: float | None = None,
                 memory_budget: int | None = None,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 max_buffered_pages: int = DEFAULT_MAX_BUFFERED_PAGES,
                 max_frame: int = MAX_FRAME,
                 log_interval: float = 30.0,
                 query_server: QueryServer | None = None,
                 shard_id: int | None = None,
                 slow_query_seconds: float | None = None):
        self.dbms = dbms
        self.host = host
        self.port = port
        self.shard_id = shard_id
        self.page_size = page_size
        self.max_buffered_pages = max_buffered_pages
        self.max_frame = max_frame
        self.log_interval = log_interval
        self._owns_query_server = query_server is None
        self.query_server = query_server or QueryServer(
            dbms, workers=workers, max_pending=max_pending,
            profile=profile, time_limit=time_limit,
            memory_budget=memory_budget)
        workers = len(self.query_server._workers)
        self.executor = ThreadPoolExecutor(
            max_workers=max(8, workers * 2),
            thread_name_prefix="repro-net-io")
        self.metrics = _NetMetrics()
        # Join the wrapped layer's registry (a QueryServer or a
        # ShardedServer both carry one) so METRICS serves every layer's
        # counters off one page; start fresh only for exotic wrappers.
        self.metrics_registry = (registry_of(self.query_server)
                                 or MetricsRegistry())
        self.metrics_registry.register("network", self.metrics.snapshot)
        # Threshold None disables the slow-query log (nothing is ever
        # over an infinite threshold) but keeps its counter exported.
        self.slow_log = SlowQueryLog(
            float("inf") if slow_query_seconds is None
            else slow_query_seconds)
        self.metrics_registry.register("slowlog", self.slow_log)
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.Task] = set()
        self._log_task: asyncio.Task | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._start_error: BaseException | None = None

    # -- asyncio side --------------------------------------------------------

    async def start_async(self) -> tuple[str, int]:
        """Bind and start accepting connections on the running loop."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.address = self._server.sockets[0].getsockname()[:2]
        if self.log_interval > 0:
            self._log_task = asyncio.get_running_loop().create_task(
                self._log_periodically())
        logger.info("listening on %s:%d", *self.address)
        return self.address

    async def stop_async(self) -> None:
        """Stop accepting, drop every connection, release their state."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._log_task is not None:
            self._log_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._log_task
            self._log_task = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        connection = _Connection(self, reader, writer)
        task = asyncio.current_task()
        self._connections.add(task)
        self.metrics.count("connections_total")
        self.metrics.count("connections_open")
        try:
            await connection.run()
        except asyncio.CancelledError:
            # Shutdown cancelled us mid-read.  Swallowing the
            # cancellation here (after cleanup below) keeps the
            # streams-module connection callback from re-raising it
            # into the loop's exception handler on 3.11.
            pass
        finally:
            # Unconditional: whether the client said goodbye, broke the
            # protocol, or the task was cancelled by shutdown, the
            # statement/cursor tables empty and every stream closes.
            connection.cleanup()
            self.metrics.count("connections_open", -1)
            self._connections.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _log_periodically(self) -> None:
        while True:
            await asyncio.sleep(self.log_interval)
            logger.info("%s", json.dumps(self.stats(),
                                         sort_keys=True))

    # -- observability -------------------------------------------------------

    def stats(self, recent: int = 0) -> dict:
        """The STATS payload: worker-pool and network observability."""
        return {
            "server": dataclasses.asdict(self.query_server.stats()),
            "network": self.metrics.snapshot(recent=recent),
        }

    # -- background-thread harness -------------------------------------------

    def start(self) -> tuple[str, int]:
        """Run the event loop on a daemon thread; returns (host, port)."""
        if self._thread is not None:
            raise ServerError("NetworkServer is already started")
        loop = asyncio.new_event_loop()
        ready = threading.Event()

        def _run() -> None:
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start_async())
            except BaseException as error:  # surfaced to start()
                self._start_error = error
                ready.set()
                loop.close()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(target=_run,
                                        name="repro-net-loop",
                                        daemon=True)
        self._thread.start()
        ready.wait()
        if self._start_error is not None:
            self._thread.join()
            self._thread = None
            error, self._start_error = self._start_error, None
            raise error
        return self.address

    def stop(self) -> None:
        """Shut down the loop thread and (if owned) the worker pool."""
        if self._thread is not None:
            future = asyncio.run_coroutine_threadsafe(self.stop_async(),
                                                      self._loop)
            future.result(timeout=60.0)
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=60.0)
            self._thread = None
        self.executor.shutdown(wait=False)
        if self._owns_query_server:
            self.query_server.close()

    def __enter__(self) -> "NetworkServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
