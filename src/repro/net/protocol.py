"""The wire protocol: length-prefixed frames with typed JSON payloads.

Every message on the socket is one *frame*::

    +----------------+------+-------------------------+
    | length (4B BE) | kind | payload (UTF-8 JSON)    |
    +----------------+------+-------------------------+

``length`` counts the kind byte plus the payload, big-endian unsigned;
``kind`` is one byte from :class:`MsgKind`; the payload is a JSON
object (possibly empty).  A length of zero, a length above the
negotiated maximum (:data:`MAX_FRAME` by default), an unknown kind, or
an undecodable payload is a protocol violation —
:class:`~repro.errors.ProtocolError` — and the server answers it by
dropping the connection, because a peer whose framing is broken cannot
be resynchronized.

The request/response vocabulary (client speaks first):

=============  =========================  ==============================
request        response                   payload highlights
=============  =========================  ==============================
HELLO          HELLO_OK                   ``version`` (must match)
PREPARE        PREPARE_OK                 ``statement`` id, ``externals``
EXECUTE        EXECUTE_OK                 ``cursor`` id
FETCH          PAGE                       ``rows``, ``doc``, ``base``,
                                          ``eof``; the final page carries
                                          ``total_rows`` and
                                          ``plan_cache_hit``
UPDATE         UPDATE_OK                  per-kind node counts
LOAD           LOAD_OK                    load/replace a document
CLOSE          CLOSE_OK                   ``statement`` or ``cursor`` id
STATS          STATS_OK                   server + network observability
METRICS        METRICS_OK                 Prometheus-style ``text`` page
(any)          ERROR                      typed error, see below
=============  =========================  ==============================

EXECUTE and UPDATE accept an optional ``trace`` object (``{"id",
"time_left_ms"}``) propagating the caller's trace context; a traced
query's final PAGE (and a traced update's UPDATE_OK) carries the
server's serialized span tree back under ``spans`` — see
``docs/observability.md``.

The authoritative frame-by-frame specification — payload schemas,
version-negotiation rules, the error taxonomy table — lives in
``docs/wire-protocol.md``; this docstring is the summary.

Application-level failures travel as ERROR frames carrying the
library's exception taxonomy — ``error`` names the exception class
(:data:`WIRE_ERRORS`), ``message`` its text, plus class-specific detail
fields (``kind``/``limit``/``used`` for
:class:`~repro.errors.ResourceLimitExceeded`) — and leave the
connection open: an :class:`~repro.errors.AdmissionError` on one query
must not tear down the session that submitted it.
"""

from __future__ import annotations

import json
import struct
from enum import IntEnum

from repro.errors import (
    AdmissionError,
    BindingError,
    BTreeError,
    CatalogError,
    CursorClosedError,
    PageError,
    ProtocolError,
    ReproError,
    ResourceLimitExceeded,
    ServerClosedError,
    ServerError,
    ShardError,
    ShardUnavailableError,
    StorageError,
    UpdateError,
    WalError,
    XmlError,
    XQEvalError,
    XQSyntaxError,
    XQTypeError,
)

#: Protocol revision; HELLO frames must agree on it.  Version 2 added
#: the LOAD/LOAD_OK pair, the ``doc``/``base`` merge-key metadata on
#: PAGE frames, and the shard error classes.  Version 3 added the
#: METRICS/METRICS_OK pair, the optional ``trace`` field on
#: EXECUTE/UPDATE, and the ``spans`` trace payload on a traced query's
#: final PAGE/UPDATE_OK — see ``docs/wire-protocol.md`` for the
#: negotiation rules.
PROTOCOL_VERSION = 3

#: Default ceiling on a frame's body (kind byte + payload).  Large
#: result pages split across FETCHes long before this; anything bigger
#: is a corrupt or hostile length prefix.
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct("!I")


class MsgKind(IntEnum):
    """One byte on the wire identifying the frame's meaning."""

    HELLO = 1
    HELLO_OK = 2
    PREPARE = 3
    PREPARE_OK = 4
    EXECUTE = 5
    EXECUTE_OK = 6
    FETCH = 7
    PAGE = 8
    UPDATE = 9
    UPDATE_OK = 10
    CLOSE = 11
    CLOSE_OK = 12
    STATS = 13
    STATS_OK = 14
    ERROR = 15
    LOAD = 16
    LOAD_OK = 17
    METRICS = 18
    METRICS_OK = 19


# --------------------------------------------------------------------------
# frame encoding / decoding
# --------------------------------------------------------------------------


def encode_frame(kind: MsgKind, payload: dict) -> bytes:
    """One wire frame: header, kind byte, compact JSON payload."""
    body = bytes([kind]) + json.dumps(
        payload, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> tuple[MsgKind, dict]:
    """Decode a frame body (everything after the length prefix)."""
    if not body:
        raise ProtocolError("empty frame body")
    try:
        kind = MsgKind(body[0])
    except ValueError:
        raise ProtocolError(f"unknown message kind {body[0]}") from None
    try:
        payload = json.loads(body[1:].decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable payload: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"payload must be a JSON object, got "
                            f"{type(payload).__name__}")
    return kind, payload


class FrameDecoder:
    """Incremental decoder: feed bytes, iterate complete frames.

    Used by both endpoints — the asyncio server feeds whatever the
    transport delivers, the blocking client feeds ``recv`` chunks — so
    frames split or coalesced arbitrarily by TCP reassemble here.
    Raises :class:`~repro.errors.ProtocolError` as soon as the stream
    is provably broken (zero or oversized length prefix, unknown kind,
    undecodable payload); the decoder is unusable afterwards.
    """

    def __init__(self, max_frame: int = MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Append raw received bytes to the decode buffer."""
        self._buffer.extend(data)

    @property
    def buffered(self) -> int:
        """Bytes fed but not yet consumed by a complete frame."""
        return len(self._buffer)

    def frames(self):
        """Yield every complete ``(kind, payload)`` in the buffer."""
        while True:
            frame = self.next_frame()
            if frame is None:
                return
            yield frame

    def next_frame(self) -> tuple[MsgKind, dict] | None:
        """One decoded frame, or ``None`` until more bytes arrive."""
        if len(self._buffer) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack_from(self._buffer)
        if length == 0:
            raise ProtocolError("zero-length frame")
        if length > self.max_frame:
            raise ProtocolError(f"frame of {length} bytes exceeds the "
                                f"{self.max_frame}-byte limit")
        if len(self._buffer) < _HEADER.size + length:
            return None
        body = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
        del self._buffer[:_HEADER.size + length]
        return decode_body(body)


# --------------------------------------------------------------------------
# the error taxonomy on the wire
# --------------------------------------------------------------------------

#: Exception classes that cross the wire under their own name.  A class
#: not listed here travels as its nearest listed ancestor (ultimately
#: ``ReproError``), so the client always raises *some* typed error.
WIRE_ERRORS: dict[str, type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        AdmissionError,
        BindingError,
        BTreeError,
        CatalogError,
        CursorClosedError,
        PageError,
        ProtocolError,
        ReproError,
        ResourceLimitExceeded,
        ServerClosedError,
        ServerError,
        ShardError,
        ShardUnavailableError,
        StorageError,
        UpdateError,
        WalError,
        XmlError,
        XQEvalError,
        XQSyntaxError,
        XQTypeError,
    )
}


def encode_error(error: BaseException) -> dict:
    """An ERROR frame payload for any exception.

    Non-library exceptions (a bug surfacing as ``KeyError``) map to
    ``ServerError`` — the client still gets a typed failure, and the
    class name is preserved in the message for debugging.
    """
    for cls in type(error).__mro__:
        if cls.__name__ in WIRE_ERRORS:
            name = cls.__name__
            break
    else:
        name = "ServerError"
    payload = {"error": name, "message": str(error)}
    if not isinstance(error, ReproError):
        payload["message"] = (f"{type(error).__name__}: "
                              f"{error}")
    if isinstance(error, ResourceLimitExceeded):
        payload.update(kind=error.kind, limit=error.limit,
                       used=error.used)
    if isinstance(error, ShardUnavailableError):
        payload.update(shard=error.shard, document=error.document)
    return payload


def decode_error(payload: dict) -> ReproError:
    """Rebuild the typed exception an ERROR payload describes."""
    cls = WIRE_ERRORS.get(payload.get("error", ""), ServerError)
    message = payload.get("message", "unspecified server error")
    if cls is ResourceLimitExceeded:
        try:
            return ResourceLimitExceeded(payload["kind"],
                                         float(payload["limit"]),
                                         float(payload["used"]))
        except (KeyError, TypeError, ValueError):
            return ServerError(message)
    if cls is ShardUnavailableError:
        return ShardUnavailableError(message,
                                     shard=payload.get("shard"),
                                     document=payload.get("document"))
    return cls(message)
