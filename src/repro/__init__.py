"""repro — a native XML-DBMS.

A complete reproduction of the system built in *"Building a Native
XML-DBMS as a Term Project in a Database Systems Course"* (Koch, Olteanu,
Scherzinger; XIME-P/SIGMOD 2006): the XQ query language, an in-memory
evaluator, a paged storage manager with B+-trees, the XASR shredding of
XML into relations, the TPM algebra with its rewrite rules, physical
operators, a cost-based optimizer — plus the course's grading testbed and
workload generators used to reproduce the paper's evaluation.

Quick start — the session API (prepare once, bind, execute many,
stream)::

    from repro import XmlDbms

    with XmlDbms("library.db") as dbms:
        dbms.load("doc", xml="<journal><name>Ana</name></journal>")
        session = dbms.session()
        prepared = session.prepare("doc", '''
            declare variable $who external;
            for $n in //name return
            if (some $t in $n/text() satisfies $t = $who)
            then $n else ()
        ''')
        with prepared.execute(bindings={"who": "Ana"}) as cursor:
            print(cursor.serialize())

One-shot convenience wrappers remain::

    with XmlDbms("library.db") as dbms:
        dbms.load("doc", xml="<journal><name>Ana</name></journal>")
        print(dbms.query("doc", "for $n in //name return $n"))

Stored documents are writable — ``dbms.update`` runs an XQuery Update
subset atomically and durably through a write-ahead log::

    with XmlDbms("library.db") as dbms:
        result = dbms.update("doc",
            "insert node <name>Bo</name> into /journal")
        result.nodes_inserted   # -> 2 (element + text)
"""

from repro.core.dbms import XmlDbms
from repro.updates.pul import UpdateResult
from repro.core.session import (
    CacheInfo,
    Cursor,
    ExecutionOptions,
    ExplainReport,
    PreparedQuery,
    Session,
)
from repro.engine.profiles import (
    ENGINE_PROFILES,
    EngineProfile,
    MILESTONE_PROFILES,
    TOP_FIVE,
)

__version__ = "1.2.0"

__all__ = [
    "XmlDbms",
    "UpdateResult",
    "Session",
    "PreparedQuery",
    "Cursor",
    "ExecutionOptions",
    "ExplainReport",
    "CacheInfo",
    "EngineProfile",
    "ENGINE_PROFILES",
    "MILESTONE_PROFILES",
    "TOP_FIVE",
    "__version__",
]
