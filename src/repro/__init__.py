"""repro — a native XML-DBMS.

A complete reproduction of the system built in *"Building a Native
XML-DBMS as a Term Project in a Database Systems Course"* (Koch, Olteanu,
Scherzinger; XIME-P/SIGMOD 2006): the XQ query language, an in-memory
evaluator, a paged storage manager with B+-trees, the XASR shredding of
XML into relations, the TPM algebra with its rewrite rules, physical
operators, a cost-based optimizer — plus the course's grading testbed and
workload generators used to reproduce the paper's evaluation.

Quick start::

    from repro import XmlDbms

    with XmlDbms("library.db") as dbms:
        dbms.load("doc", xml="<journal><name>Ana</name></journal>")
        print(dbms.query("doc", "for $n in //name return $n"))
"""

from repro.core.dbms import XmlDbms
from repro.engine.profiles import (
    ENGINE_PROFILES,
    EngineProfile,
    MILESTONE_PROFILES,
    TOP_FIVE,
)

__version__ = "1.0.0"

__all__ = [
    "XmlDbms",
    "EngineProfile",
    "ENGINE_PROFILES",
    "MILESTONE_PROFILES",
    "TOP_FIVE",
    "__version__",
]
