"""DOM construction from the event stream.

Whitespace policy: text that consists purely of whitespace *between* markup
is dropped by default (``strip_whitespace=True``), which matches how the
course's data files (DBLP, TREEBANK) are pretty-printed.  Mixed content with
significant whitespace can be preserved by passing
``strip_whitespace=False``.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import XmlError
from repro.xmlkit.dom import Document, Element, Node, Text
from repro.xmlkit.events import (
    Characters,
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    XmlEvent,
)
from repro.xmlkit.tokenizer import iterparse, iterparse_file


def build(events: Iterable[XmlEvent], strip_whitespace: bool = True
          ) -> Document:
    """Fold an event stream into a :class:`~repro.xmlkit.dom.Document`."""
    document = Document()
    stack: list[Node] = [document]
    for event in events:
        if isinstance(event, StartElement):
            element = Element(event.name, event.attributes)
            stack[-1].append(element)
            stack.append(element)
        elif isinstance(event, EndElement):
            stack.pop()
        elif isinstance(event, Characters):
            text = event.text
            if strip_whitespace and not text.strip():
                continue
            stack[-1].append(Text(text))
        elif isinstance(event, (StartDocument, EndDocument)):
            continue
        else:  # pragma: no cover - defensive
            raise XmlError(f"unexpected event {event!r}")
    return document


def parse(text: str, strip_whitespace: bool = True) -> Document:
    """Parse XML ``text`` into a document tree."""
    return build(iterparse(text), strip_whitespace=strip_whitespace)


def parse_file(path: str, strip_whitespace: bool = True) -> Document:
    """Parse the UTF-8 XML file at ``path`` into a document tree."""
    return build(iterparse_file(path), strip_whitespace=strip_whitespace)
