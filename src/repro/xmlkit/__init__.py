"""A from-scratch XML toolkit (the paper's "scanner and parser" skeleton).

This package deliberately avoids both ``lxml`` and the standard library's
``xml`` modules: the course handed students a bare scanner/parser skeleton,
and this reproduction builds the equivalent substrate natively.

Supported XML subset (sufficient for the paper's documents — DBLP,
TREEBANK, handmade test files):

* elements with attributes,
* text content with the five predefined entities and numeric references,
* comments, processing instructions and an XML declaration (skipped),
* CDATA sections,
* UTF-8 input.

Not supported (and not needed by the paper): DTDs, namespaces-aware
processing (prefixes are kept verbatim in names), external entities.

Public API
----------
:func:`parse` / :func:`parse_file`
    Build a :class:`~repro.xmlkit.dom.Document` tree.
:func:`iterparse` / :func:`iterparse_file`
    Stream :class:`~repro.xmlkit.events.XmlEvent` objects without
    materialising a tree (used by the XASR bulk loader).
:func:`serialize`
    Render a DOM node back to XML text.
"""

from repro.xmlkit.dom import Document, Element, Node, NodeKind, Text
from repro.xmlkit.events import (
    Characters,
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    XmlEvent,
)
from repro.xmlkit.parser import parse, parse_file
from repro.xmlkit.serializer import serialize
from repro.xmlkit.tokenizer import iterparse, iterparse_file

__all__ = [
    "Document",
    "Element",
    "Node",
    "NodeKind",
    "Text",
    "XmlEvent",
    "StartDocument",
    "EndDocument",
    "StartElement",
    "EndElement",
    "Characters",
    "parse",
    "parse_file",
    "iterparse",
    "iterparse_file",
    "serialize",
]
