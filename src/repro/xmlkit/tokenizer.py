"""Streaming XML tokenizer.

:func:`iterparse` turns XML text into a stream of
:class:`~repro.xmlkit.events.XmlEvent` objects.  The tokenizer is a single
forward pass with O(depth) memory, which is the property the paper's
milestone 2 relies on ("does not require building the DOM tree").

The grammar implemented is the well-formed-document subset described in
:mod:`repro.xmlkit`.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import XmlError
from repro.xmlkit.events import (
    Characters,
    EndDocument,
    EndElement,
    StartDocument,
    StartElement,
    XmlEvent,
)

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:.-·")
_WHITESPACE = set(" \t\r\n")


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Cursor:
    """Position-tracking cursor over the source text."""

    __slots__ = ("text", "pos", "line", "column")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index >= len(self.text):
            return ""
        return self.text[index]

    def startswith(self, prefix: str) -> bool:
        return self.text.startswith(prefix, self.pos)

    def advance(self, count: int = 1) -> str:
        """Consume ``count`` characters, updating line/column."""
        consumed = self.text[self.pos:self.pos + count]
        for ch in consumed:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return consumed

    def error(self, message: str) -> XmlError:
        return XmlError(message, self.line, self.column)


def _skip_whitespace(cur: _Cursor) -> None:
    while not cur.at_end() and cur.peek() in _WHITESPACE:
        cur.advance()


def _read_name(cur: _Cursor) -> str:
    if cur.at_end() or not _is_name_start(cur.peek()):
        raise cur.error(f"expected a name, found {cur.peek()!r}")
    start = cur.pos
    cur.advance()
    while not cur.at_end() and _is_name_char(cur.peek()):
        cur.advance()
    return cur.text[start:cur.pos]


def _expect(cur: _Cursor, literal: str) -> None:
    if not cur.startswith(literal):
        raise cur.error(f"expected {literal!r}")
    cur.advance(len(literal))


def _read_until(cur: _Cursor, terminator: str, what: str) -> str:
    end = cur.text.find(terminator, cur.pos)
    if end < 0:
        raise cur.error(f"unterminated {what}")
    content = cur.text[cur.pos:end]
    cur.advance(end - cur.pos + len(terminator))
    return content


def _normalize_line_endings(text: str) -> str:
    """XML end-of-line handling: literal ``\\r\\n`` and bare ``\\r``
    become ``\\n`` on input.  Only *literal* characters normalize —
    ``&#13;`` survives, which is how the serializer round-trips stored
    carriage returns byte-identically."""
    if "\r" not in text:
        return text
    return text.replace("\r\n", "\n").replace("\r", "\n")


def _resolve_entity(cur: _Cursor, body: str) -> str:
    """Resolve the body of ``&body;`` into its character."""
    if body.startswith("#x") or body.startswith("#X"):
        try:
            return chr(int(body[2:], 16))
        except ValueError:
            raise cur.error(
                f"bad hexadecimal character reference &{body};") from None
    if body.startswith("#"):
        try:
            return chr(int(body[1:], 10))
        except ValueError:
            raise cur.error(
                f"bad decimal character reference &{body};") from None
    try:
        return _PREDEFINED_ENTITIES[body]
    except KeyError:
        raise cur.error(f"unknown entity &{body};") from None


def _read_attribute_value(cur: _Cursor) -> str:
    quote = cur.peek()
    if quote not in ("'", '"'):
        raise cur.error("attribute value must be quoted")
    cur.advance()
    parts: list[str] = []
    while True:
        if cur.at_end():
            raise cur.error("unterminated attribute value")
        ch = cur.peek()
        if ch == quote:
            cur.advance()
            return "".join(parts)
        if ch == "<":
            raise cur.error("'<' not allowed in attribute value")
        if ch == "&":
            cur.advance()
            body = _read_until(cur, ";", "entity reference")
            # Characters from references are exempt from normalization.
            parts.append(_resolve_entity(cur, body))
        elif ch in "\t\n\r":
            # Attribute-value normalization: literal whitespace becomes
            # a space (an \r\n pair one space, after line-ending
            # normalization).  The serializer writes these characters as
            # references, which survive.
            cur.advance()
            if ch == "\r" and cur.peek() == "\n":
                cur.advance()
            parts.append(" ")
        else:
            parts.append(cur.advance())


def _read_tag(cur: _Cursor) -> tuple[str, tuple[tuple[str, str], ...], bool]:
    """Parse an opening tag after the ``<``; returns (name, attrs, empty)."""
    name = _read_name(cur)
    attributes: list[tuple[str, str]] = []
    seen: set[str] = set()
    while True:
        _skip_whitespace(cur)
        if cur.at_end():
            raise cur.error(f"unterminated start tag <{name}")
        if cur.startswith("/>"):
            cur.advance(2)
            return name, tuple(attributes), True
        if cur.peek() == ">":
            cur.advance()
            return name, tuple(attributes), False
        attr_name = _read_name(cur)
        if attr_name in seen:
            raise cur.error(f"duplicate attribute {attr_name!r}")
        seen.add(attr_name)
        _skip_whitespace(cur)
        _expect(cur, "=")
        _skip_whitespace(cur)
        attributes.append((attr_name, _read_attribute_value(cur)))


def iterparse(text: str) -> Iterator[XmlEvent]:
    """Stream events from XML ``text``.

    Yields :class:`StartDocument`, then tag/text events, then
    :class:`EndDocument`.  Raises :class:`~repro.errors.XmlError` on
    malformed input, including unbalanced tags and trailing garbage.
    """
    cur = _Cursor(text)
    yield StartDocument(line=cur.line, column=cur.column)

    open_tags: list[str] = []
    seen_root = False
    pending_text: list[str] = []
    pending_pos: tuple[int, int] | None = None

    def flush_text() -> Iterator[Characters]:
        nonlocal pending_pos
        if pending_text:
            content = "".join(pending_text)
            pending_text.clear()
            line, column = pending_pos or (cur.line, cur.column)
            pending_pos = None
            if open_tags:
                yield Characters(content, line=line, column=column)
            elif content.strip():
                raise XmlError("text content outside the root element",
                               line, column)

    while not cur.at_end():
        ch = cur.peek()
        if ch == "<":
            if cur.startswith("<?"):
                yield from flush_text()
                cur.advance(2)
                _read_until(cur, "?>", "processing instruction")
                continue
            if cur.startswith("<!--"):
                yield from flush_text()
                cur.advance(4)
                _read_until(cur, "-->", "comment")
                continue
            if cur.startswith("<![CDATA["):
                if not open_tags:
                    raise cur.error("CDATA outside the root element")
                if pending_pos is None:
                    pending_pos = (cur.line, cur.column)
                cur.advance(9)
                cdata = _read_until(cur, "]]>", "CDATA section")
                pending_text.append(_normalize_line_endings(cdata))
                continue
            if cur.startswith("<!DOCTYPE"):
                yield from flush_text()
                cur.advance(9)
                # Skip to the matching '>' allowing one internal-subset
                # bracket pair; full DTD parsing is out of scope.
                depth = 0
                while not cur.at_end():
                    c = cur.advance()
                    if c == "[":
                        depth += 1
                    elif c == "]":
                        depth -= 1
                    elif c == ">" and depth <= 0:
                        break
                else:
                    raise cur.error("unterminated DOCTYPE")
                continue
            if cur.startswith("</"):
                yield from flush_text()
                line, column = cur.line, cur.column
                cur.advance(2)
                name = _read_name(cur)
                _skip_whitespace(cur)
                _expect(cur, ">")
                if not open_tags:
                    raise XmlError(f"closing tag </{name}> with no open "
                                   "element", line, column)
                expected = open_tags.pop()
                if name != expected:
                    raise XmlError(f"mismatched closing tag </{name}>, "
                                   f"expected </{expected}>", line, column)
                yield EndElement(name, line=line, column=column)
                if not open_tags:
                    seen_root = True
                continue
            # Plain start tag.
            yield from flush_text()
            line, column = cur.line, cur.column
            cur.advance()
            if open_tags and not _is_name_start(cur.peek()):
                raise cur.error("malformed markup")
            if not open_tags and seen_root:
                raise XmlError("multiple root elements", line, column)
            name, attributes, empty = _read_tag(cur)
            yield StartElement(name, attributes, line=line, column=column)
            if empty:
                yield EndElement(name, line=line, column=column)
                if not open_tags:
                    seen_root = True
            else:
                open_tags.append(name)
        elif ch == "&":
            if not open_tags:
                raise cur.error("entity reference outside the root element")
            if pending_pos is None:
                pending_pos = (cur.line, cur.column)
            cur.advance()
            body = _read_until(cur, ";", "entity reference")
            pending_text.append(_resolve_entity(cur, body))
        else:
            if pending_pos is None:
                pending_pos = (cur.line, cur.column)
            start = cur.pos
            while (not cur.at_end()
                   and cur.peek() != "<" and cur.peek() != "&"):
                cur.advance()
            chunk = _normalize_line_endings(cur.text[start:cur.pos])
            pending_text.append(chunk)
            if open_tags:
                pass
            elif chunk.strip():
                raise XmlError("text content outside the root element",
                               *(pending_pos or (cur.line, cur.column)))
            if not open_tags and seen_root:
                # Whitespace after the root is fine; drop it.
                pending_text.clear()
                pending_pos = None

    yield from flush_text()
    if open_tags:
        raise cur.error(f"unclosed element <{open_tags[-1]}>")
    if not seen_root:
        raise cur.error("document has no root element")
    yield EndDocument(line=cur.line, column=cur.column)


def iterparse_file(path: str) -> Iterator[XmlEvent]:
    """Stream events from the UTF-8 file at ``path``.

    The file is read fully into memory before tokenizing; the documents this
    library targets (scaled DBLP/TREEBANK) comfortably fit, while the *tree*
    they would expand into is what milestone 2 avoids materialising.
    """
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    yield from iterparse(text)
