"""In-memory document tree (the milestone-1 data model).

The tree deliberately mirrors the paper's node taxonomy: a document has a
virtual *root* node whose single child is the root element; inner nodes are
*element* nodes; leaves carrying character data are *text* nodes.  These are
exactly the three ``type`` values of the XASR relation
(:mod:`repro.xasr.schema`).

Navigation follows the two XQ axes, ``child`` and ``descendant``; both honor
document order.
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Iterator


class NodeKind(enum.Enum):
    """The three node types of the paper's data model."""

    ROOT = "root"
    ELEMENT = "element"
    TEXT = "text"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Node:
    """Base class for tree nodes.

    Attributes
    ----------
    parent:
        The parent node, or ``None`` for the document root.
    children:
        Child nodes in document order (always empty for text nodes).
    """

    __slots__ = ("parent", "children")

    kind: NodeKind

    def __init__(self) -> None:
        self.parent: Node | None = None
        self.children: list[Node] = []

    # -- construction ------------------------------------------------------

    def append(self, child: Node) -> Node:
        """Attach ``child`` as the last child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    # -- navigation --------------------------------------------------------

    def iter_children(self) -> Iterator[Node]:
        """Children in document order (the ``child`` axis)."""
        return iter(self.children)

    def iter_descendants(self) -> Iterator[Node]:
        """Proper descendants in document order (the ``descendant`` axis)."""
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_self_and_descendants(self) -> Iterator[Node]:
        """This node, then its descendants, in document order."""
        return itertools.chain((self,), self.iter_descendants())

    # -- content -----------------------------------------------------------

    def string_value(self) -> str:
        """Concatenation of all descendant-or-self text, in document order."""
        parts = [node.text for node in self.iter_self_and_descendants()
                 if isinstance(node, Text)]
        return "".join(parts)

    def is_text(self) -> bool:
        return self.kind is NodeKind.TEXT

    def is_element(self) -> bool:
        return self.kind is NodeKind.ELEMENT

    @property
    def label(self) -> str | None:
        """Element label, text content, or ``None`` for the root.

        This is the XASR ``value`` column.
        """
        return None


class Document(Node):
    """The virtual root node of a document tree.

    The paper assigns it XASR type ``root`` and value ``NULL``; its in-value
    is always 1 (the anchor for absolute paths like ``/journal``).
    """

    __slots__ = ()
    kind = NodeKind.ROOT

    @property
    def root_element(self) -> Element | None:
        """The document's root element, if any."""
        for child in self.children:
            if isinstance(child, Element):
                return child
        return None

    def __repr__(self) -> str:
        root = self.root_element
        name = root.name if root is not None else "<empty>"
        return f"Document(root={name!r})"


class Element(Node):
    """An element node with a label and, optionally, attributes.

    Attributes are preserved for round-tripping but are *not* part of the XQ
    data model (the paper's XQ fragment has no attribute axis); the XASR
    loader ignores them.
    """

    __slots__ = ("name", "attributes")
    kind = NodeKind.ELEMENT

    def __init__(self, name: str,
                 attributes: tuple[tuple[str, str], ...] = ()):
        super().__init__()
        self.name = name
        self.attributes = attributes

    @property
    def label(self) -> str | None:
        return self.name

    def __repr__(self) -> str:
        return f"Element({self.name!r}, children={len(self.children)})"


class Text(Node):
    """A text node."""

    __slots__ = ("text",)
    kind = NodeKind.TEXT

    def __init__(self, text: str):
        super().__init__()
        self.text = text

    @property
    def label(self) -> str | None:
        return self.text

    def string_value(self) -> str:
        return self.text

    def __repr__(self) -> str:
        preview = self.text if len(self.text) <= 24 else self.text[:21] + "..."
        return f"Text({preview!r})"


def deep_equal(left: Node, right: Node) -> bool:
    """Structural equality: same kinds, labels and child sequences.

    Used by the correctness tester to compare engine output against the
    oracle without depending on serialization details.
    """
    if left.kind is not right.kind:
        return False
    if isinstance(left, Element) and isinstance(right, Element):
        if left.name != right.name:
            return False
    if isinstance(left, Text) and isinstance(right, Text):
        if left.text != right.text:
            return False
    if len(left.children) != len(right.children):
        return False
    return all(deep_equal(lc, rc)
               for lc, rc in zip(left.children, right.children,
                                 strict=True))
