"""Serialization of DOM trees back to XML text."""

from __future__ import annotations

from repro.xmlkit.dom import Document, Element, Node, Text

#: ``&`` must be escaped first; a literal ``\r`` must leave as a
#: character reference because XML parsers normalize bare carriage
#: returns to ``\n`` on input — emitting it raw would corrupt the value
#: on the next reparse (the update-path round-trip guarantee).
_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;", "\r": "&#13;"}
#: Attribute values additionally protect the quote and the whitespace
#: characters that attribute-value normalization would fold into spaces.
_ATTR_ESCAPES = {**_TEXT_ESCAPES, '"': "&quot;", "\t": "&#9;",
                 "\n": "&#10;"}


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    for raw, escaped in _TEXT_ESCAPES.items():
        text = text.replace(raw, escaped)
    return text


def escape_attribute(text: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    for raw, escaped in _ATTR_ESCAPES.items():
        text = text.replace(raw, escaped)
    return text


def serialize(node: Node, indent: int | None = None) -> str:
    """Render ``node`` (and its subtree) as XML text.

    ``indent=None`` produces compact output — the canonical form used when
    comparing engine results.  An integer ``indent`` pretty-prints with that
    many spaces per level; text nodes are then kept on their own lines, so
    pretty output is for human eyes, not for equality checks.
    """
    parts: list[str] = []
    _write(node, parts, indent, 0)
    return "".join(parts)


def _write(node: Node, parts: list[str], indent: int | None,
           depth: int) -> None:
    pad = "" if indent is None else " " * (indent * depth)
    newline = "" if indent is None else "\n"
    if isinstance(node, Document):
        for child in node.children:
            _write(child, parts, indent, depth)
        return
    if isinstance(node, Text):
        parts.append(f"{pad}{escape_text(node.text)}{newline}")
        return
    if isinstance(node, Element):
        attrs = "".join(f' {name}="{escape_attribute(value)}"'
                        for name, value in node.attributes)
        if not node.children:
            parts.append(f"{pad}<{node.name}{attrs}/>{newline}")
            return
        only_text = (len(node.children) == 1
                     and isinstance(node.children[0], Text))
        if indent is not None and only_text:
            text = escape_text(node.children[0].text)  # type: ignore[union-attr]
            parts.append(f"{pad}<{node.name}{attrs}>{text}"
                         f"</{node.name}>{newline}")
            return
        parts.append(f"{pad}<{node.name}{attrs}>{newline}")
        for child in node.children:
            _write(child, parts, indent, depth + 1)
        parts.append(f"{pad}</{node.name}>{newline}")
        return
    raise TypeError(f"cannot serialize {type(node).__name__}")
