"""Event objects produced by the streaming XML tokenizer.

The streaming interface mirrors SAX: a document is a flat sequence of
events.  The XASR bulk loader consumes these events directly, which is what
lets milestone 2 load arbitrarily large documents "without building the DOM
tree of the input XML document".
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class XmlEvent:
    """Base class of all streaming events.

    ``line``/``column`` locate the event in the source text (1-based), which
    makes loader and parser errors reportable.
    """

    line: int = field(default=0, kw_only=True)
    column: int = field(default=0, kw_only=True)


@dataclass(frozen=True)
class StartDocument(XmlEvent):
    """Emitted once, before any other event."""


@dataclass(frozen=True)
class EndDocument(XmlEvent):
    """Emitted once, after the root element closes."""


@dataclass(frozen=True)
class StartElement(XmlEvent):
    """An opening tag ``<name a="v" ...>``.

    Self-closing tags ``<name/>`` produce a :class:`StartElement`
    immediately followed by a matching :class:`EndElement`.
    """

    name: str
    attributes: tuple[tuple[str, str], ...] = ()

    def get(self, attribute: str, default: str | None = None) -> str | None:
        """Return the value of ``attribute`` or ``default``."""
        for key, value in self.attributes:
            if key == attribute:
                return value
        return default


@dataclass(frozen=True)
class EndElement(XmlEvent):
    """A closing tag ``</name>``."""

    name: str


@dataclass(frozen=True)
class Characters(XmlEvent):
    """Text content between tags, entity references already resolved.

    The tokenizer coalesces adjacent raw text, entity references and CDATA
    sections into a single :class:`Characters` event, so consumers never see
    two Characters events in a row.
    """

    text: str
