"""Exception hierarchy for the XML-DBMS.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-hierarchies mirror the
subsystems: XML parsing, XQ parsing, query typing/evaluation, storage, and
the grading testbed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by this library."""


# --------------------------------------------------------------------------
# XML layer
# --------------------------------------------------------------------------


class XmlError(ReproError):
    """Malformed XML input.

    Carries an optional (line, column) position of the offending token.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


# --------------------------------------------------------------------------
# XQ language layer
# --------------------------------------------------------------------------


class XQSyntaxError(ReproError):
    """Malformed XQ query text."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class XQTypeError(ReproError):
    """Runtime typing violation.

    The paper restricts equality comparisons to text nodes; engines "were
    allowed to check this at runtime and exit with an error message if two
    nodes to be compared are not text nodes".  This is that error message.
    """


class XQEvalError(ReproError):
    """Any other failure during query evaluation (e.g. unbound variable)."""


class BindingError(ReproError):
    """External-variable bindings do not match a prepared query.

    Raised when a required external variable is missing from the supplied
    bindings, when a binding names a variable the query neither declares
    external nor leaves free, or when a bound value has an unsupported
    type.
    """


class CursorClosedError(ReproError):
    """Operation on a :class:`~repro.core.session.Cursor` after close()."""


# --------------------------------------------------------------------------
# Serving layer
# --------------------------------------------------------------------------


class ServerError(ReproError):
    """Base class for :class:`~repro.core.server.QueryServer` failures."""


class AdmissionError(ServerError):
    """The server refused a submission (queue at capacity).

    Raised by ``QueryServer.submit`` instead of blocking, so callers see
    back-pressure immediately and can shed load or retry.
    """


class ServerClosedError(ServerError):
    """Submission to a :class:`~repro.core.server.QueryServer` after
    close()."""


class ShardError(ServerError):
    """Base class for sharded-serving (mediator) failures.

    Raised by :mod:`repro.shard` for cluster-level problems that are not
    attributable to one shard being down — an unknown logical document,
    an operation the mediator cannot decompose (e.g. updating a
    partitioned document), or a shard subprocess that failed to start.
    """


class ShardUnavailableError(ShardError):
    """A shard process is unreachable (crashed, restarting, or gone).

    The mediator raises this for queries and updates whose documents
    live on the unreachable shard *after* exhausting its reconnect
    retries; documents owned by other shards keep being served.
    ``shard`` is the shard index, ``document`` the logical document the
    failed operation addressed (either may be ``None`` when unknown).
    """

    def __init__(self, message: str, shard: int | None = None,
                 document: str | None = None):
        self.shard = shard
        self.document = document
        super().__init__(message)


class ProtocolError(ServerError):
    """Malformed traffic on the network wire protocol.

    Raised by the frame codec (:mod:`repro.net.protocol`) on an
    oversized length prefix, an unknown message type, or an undecodable
    payload — and by either endpoint when the other side violates the
    request/response protocol.  The server answers a protocol violation
    by dropping the connection; application-level errors (the rest of
    this taxonomy) travel as typed error frames and keep it open.
    """


# --------------------------------------------------------------------------
# Storage layer
# --------------------------------------------------------------------------


class StorageError(ReproError):
    """Base class for storage-manager failures."""


class PageError(StorageError):
    """Invalid page access (bad page id, overflow, corrupt header)."""


class BufferPoolError(StorageError):
    """Buffer-pool protocol violation (e.g. all frames pinned)."""


class BTreeError(StorageError):
    """B+-tree structural violation or unsupported operation."""


class CatalogError(StorageError):
    """Unknown table/index/document, or duplicate creation."""


class WalError(StorageError):
    """Write-ahead-log protocol violation or unreadable log file."""


# --------------------------------------------------------------------------
# Update layer
# --------------------------------------------------------------------------


class UpdateError(ReproError):
    """An update expression is invalid against the target document.

    Raised when a target selects the wrong number or kind of nodes (e.g.
    ``insert ... into`` a text node), when two primitives in one pending
    update list conflict (two ``replace value of`` on the same node), or
    when an update would produce an ill-formed document.
    """


# --------------------------------------------------------------------------
# Optimizer / algebra layer
# --------------------------------------------------------------------------


class AlgebraError(ReproError):
    """Illegal algebraic transformation or malformed TPM tree."""


class PlanningError(ReproError):
    """The planner could not produce a physical plan."""


# --------------------------------------------------------------------------
# Testbed layer
# --------------------------------------------------------------------------


class GradingError(ReproError):
    """Submission/testbed protocol violations."""


class ResourceLimitExceeded(ReproError):
    """An engine exceeded the tester's time or memory budget.

    ``kind`` is ``"time"`` or ``"memory"``; the tester converts this into
    the capped scores described in the Figure 7 caption.
    """

    def __init__(self, kind: str, limit: float, used: float):
        self.kind = kind
        self.limit = limit
        self.used = used
        super().__init__(f"{kind} limit exceeded: used {used:.3f}, "
                         f"limit {limit:.3f}")
