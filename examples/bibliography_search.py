#!/usr/bin/env python3
"""Bibliographic workload: the DBLP scenario from the paper's testbed.

Demonstrates the optimizer on realistic bibliography queries:

* finding the authors of articles with volume information (Example 6);
* detecting people who both author and edit (a text-value join);
* showing how plan choice changes page I/O by orders of magnitude.

Run with::

    python examples/bibliography_search.py [--articles N]
"""

import argparse
import tempfile
import time
from pathlib import Path

from repro import XmlDbms
from repro.workloads.dblp import DblpConfig, generate_dblp

EXAMPLE6 = ("for $x in //article return "
            "if (some $v in $x/volume satisfies true()) "
            "then for $y in $x//author return $y else ()")

AUTHOR_EDITORS = ("for $t1 in //editor/text() return "
                  "for $t2 in //author/text() return "
                  "if ($t1 = $t2) then <person>{ $t1 }</person> else ()")

RECENT_TITLES = ("for $x in //article return "
                 "if (some $y in $x/year/text() satisfies $y = \"2005\") "
                 "then $x/title else ()")


def timed(dbms, document, query, profile):
    dbms.reset_buffer_stats()
    started = time.perf_counter()
    result = dbms.query(document, query, profile=profile)
    elapsed = time.perf_counter() - started
    return result, elapsed, dbms.buffer_stats.accesses


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--articles", type=int, default=400)
    args = parser.parse_args()

    config = DblpConfig(articles=args.articles,
                        inproceedings=args.articles // 3,
                        name_pool=40)
    workdir = Path(tempfile.mkdtemp(prefix="repro-dblp-"))
    with XmlDbms(str(workdir / "dblp.db"), buffer_capacity=4096) as dbms:
        stats = dbms.load("dblp", xml=generate_dblp(config))
        print(f"synthetic DBLP: {stats.total_nodes} nodes, "
              f"{stats.label_counts.get('author', 0)} authors, "
              f"{stats.label_counts.get('volume', 0)} volumes")

        print("\n--- Example 6: authors of articles with volumes ---")
        for profile in ("m2", "m3", "m4"):
            result, elapsed, page_io = timed(dbms, "dblp", EXAMPLE6,
                                             profile)
            print(f"{profile}: {elapsed * 1000:7.1f} ms, "
                  f"{page_io:7d} page accesses, "
                  f"{result.count('<author>')} authors")

        print("\nthe milestone-4 plan (note the semijoin / volume-driven "
              "order):")
        print(dbms.explain("dblp", EXAMPLE6))

        print("\n--- people who both author and edit ---")
        result, elapsed, page_io = timed(dbms, "dblp", AUTHOR_EDITORS,
                                         "m4")
        people = sorted({
            part.split("</person>")[0]
            for part in result.split("<person>")[1:]})
        print(f"m4: {elapsed * 1000:.1f} ms, {page_io} page accesses")
        print("found:", ", ".join(people) if people else "(nobody)")

        print("\n--- titles of 2005 articles ---")
        result, elapsed, page_io = timed(dbms, "dblp", RECENT_TITLES,
                                         "m4")
        print(f"m4: {elapsed * 1000:.1f} ms, {page_io} page accesses, "
              f"{result.count('<title>')} titles")


if __name__ == "__main__":
    main()
