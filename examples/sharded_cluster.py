#!/usr/bin/env python3
"""Sharded serving: a mediator over real shard server processes.

Spawns a 3-member cluster (each member a ``python -m repro.serve``
subprocess with its own database), then walks the mediator surface:
whole-document placement and routing, a document partitioned across
every shard with order-preserving merged streaming, updates, cluster
observability — and the failure model, by killing a member mid-run.

Run with::

    python examples/sharded_cluster.py
"""

import sys
import tempfile
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, SRC)

from repro.errors import ShardUnavailableError, UpdateError  # noqa: E402
from repro.shard import ShardCluster, ShardedServer          # noqa: E402
from repro.workloads.dblp import DblpConfig, generate_dblp   # noqa: E402

SHARDS = 3


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="repro-cluster-")
    with ShardCluster.spawn(SHARDS, data_dir, workers=2) as cluster:
        cluster.health_check()
        print(f"{SHARDS} shard processes up:",
              [f"{h}:{p}" for h, p in cluster.endpoints])

        with ShardedServer(cluster.endpoints) as mediator:
            # 1. Whole documents go to the least-loaded shard; queries
            #    against them are routed to that one process.
            for name in ("alpha", "beta", "gamma"):
                mediator.load(name, xml=f"<lib><t>{name}</t></lib>")
            placements = mediator.documents()
            print("placements:", placements)
            print("routed query:", mediator.query("alpha", "//t"))

            # 2. A big document partitioned across every shard: each
            #    member holds a contiguous chunk under the same name,
            #    and fan-out queries merge the streams back into
            #    document order.
            xml = generate_dblp(DblpConfig(articles=90))
            mediator.load("dblp", xml=xml, parts=SHARDS)
            titles = mediator.execute("dblp", "//article/title")
            print(f"\npartitioned fan-out: {len(titles)} titles, "
                  f"first = {titles[0][:50]}...")

            # 3. "*" queries every document, parts in name order.
            everything = mediator.execute("*", "//t")
            print("'*' fan-out over whole docs:", everything)

            # 4. Updates route to the owning shard; partitioned
            #    documents refuse them (no cross-process atomicity).
            result = mediator.update(
                "alpha", "insert node <t>added</t> into /lib")
            print(f"\nupdate: inserted {result.nodes_inserted} node(s)")
            try:
                mediator.update("dblp", "delete nodes //article")
            except UpdateError as error:
                print(f"partitioned update refused: {error}")

            # 5. Observability: the mediator's own counters plus every
            #    member's STATS payload, aggregated.
            stats = mediator.stats()
            print(f"\nmediator stats: {stats.queries} routed, "
                  f"{stats.fanouts} fanned out, {stats.updates} "
                  f"updates, {stats.rows_streamed} rows streamed")
            cluster_stats = mediator.cluster_stats()
            print("cluster aggregate submitted:",
                  cluster_stats["aggregate"]["server"]["submitted"])

            # 6. The failure model: kill one member.  Documents on it
            #    fail with a typed, scoped error; everything else keeps
            #    answering.
            victim = placements["beta"][0]
            print(f"\nkilling shard {victim} (owns 'beta')...")
            cluster.shards[victim].kill()
            try:
                mediator.query("beta", "//t")
            except ShardUnavailableError as error:
                print(f"typed failure: shard={error.shard}: {error}")
            survivor = next(name for name, (shard,) in placements.items()
                            if shard != victim)
            print(f"survivor still serving: "
                  f"{mediator.query(survivor, '//t')}")

    print("\ncluster stopped cleanly")


if __name__ == "__main__":
    main()
