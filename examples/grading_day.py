#!/usr/bin/env python3
"""A day in the course: the submission system, Figure 7, and grades.

Simulates the Section 3/4 infrastructure end to end:

1. five teams submit their engines (the Figure 7 profiles) to the
   submission pool;
2. the fair scheduler tests them — correctness suite first, efficiency
   suite under time/memory limits — and e-mails reports;
3. the Figure 7 table is printed;
4. the grade book applies early-bird points, lateness penalties, team
   bonuses and the top-10 %/25 % scalability bonus.

Run with::

    python examples/grading_day.py
"""

import tempfile
from pathlib import Path

from repro import TOP_FIVE, XmlDbms
from repro.grading.scoring import GradeBook, StudentRecord
from repro.grading.submission import SubmissionSystem
from repro.grading.tester import Tester, format_figure7
from repro.workloads.dblp import DblpConfig, generate_dblp
from repro.workloads.queries import CORRECTNESS_QUERIES

TEAMS = {
    "team-red": "engine-1",
    "team-blue": "engine-2",
    "team-green": "engine-3",
    "team-gold": "engine-4",
    "team-gray": "engine-5",
}

#: Per-team course trajectories (delays in weeks; None = not submitted).
TRAJECTORIES = {
    "team-red": dict(exam=91, delays=(0, 0, 0, 0)),
    "team-blue": dict(exam=88, delays=(0, 0, 1, 0)),
    "team-green": dict(exam=76, delays=(0, 1, 0, 2)),
    "team-gold": dict(exam=64, delays=(1, 0, 2, 3)),
    "team-gray": dict(exam=55, delays=(0, 2, 3, 3)),
}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-grading-"))
    config = DblpConfig(articles=150, inproceedings=50, name_pool=30)
    with XmlDbms(str(workdir / "testbed.db"),
                 buffer_capacity=4096) as dbms:
        dbms.load("dblp", xml=generate_dblp(config))
        tester = Tester(dbms, "dblp", time_limit=0.5)
        system = SubmissionSystem(tester, CORRECTNESS_QUERIES)

        print("== submissions arrive ==")
        for team, profile_name in TEAMS.items():
            system.submit(team, TOP_FIVE[profile_name])
            print(f"  {team} submitted ({profile_name})")

        print("\n== the tester drains the pool (fair round-robin) ==")
        submissions = system.process_all()
        for submission in submissions:
            print()
            print(system.render_report(submission))

        print("\n== Figure 7 (scaled) ==")
        rows = tester.run_figure7(list(TOP_FIVE))
        print(format_figure7(rows))

        print("\n== the grade book ==")
        totals = {submission.team: submission.total_seconds
                  for submission in submissions}
        book = GradeBook()
        for team, trajectory in TRAJECTORIES.items():
            book.add(StudentRecord(
                name=team, team=team, team_size=2,
                exam_points=trajectory["exam"],
                milestone_delays=list(trajectory["delays"]),
                engine_total_seconds=totals.get(team)))
        book.apply_scalability_bonus()
        print(f"{'team':>12} {'exam':>6} {'milest.':>8} {'bonus':>6} "
              f"{'total':>7}")
        for record in book.records:
            print(f"{record.name:>12} {record.exam_points:>6.0f} "
                  f"{book.milestone_points(record):>8.1f} "
                  f"{record.bonus_points:>6.1f} "
                  f"{book.total_points(record):>7.1f}")
        summary = book.summary()
        print(f"\npassed: {summary['passed']:.0f} / "
              f"{summary['students']:.0f}; over 100 points: "
              f"{summary['over_100']:.0f} "
              f"({summary['over_100_fraction']:.0%})")


if __name__ == "__main__":
    main()
