#!/usr/bin/env python3
"""Deeply nested data: the TREEBANK scenario.

TREEBANK is the structural opposite of DBLP: parse trees nest 10–20
levels deep, so the descendant axis dominates and the clustered primary
B+-tree's interval property (descendants = one range scan) carries the
workload.

Run with::

    python examples/treebank_linguistics.py [--sentences N]
"""

import argparse
import tempfile
import time
from pathlib import Path

from repro import XmlDbms
from repro.workloads.treebank import TreebankConfig, generate_treebank

#: Noun phrases nested inside other noun phrases (recursion depth probe).
NESTED_NP = "for $np in //NP return for $inner in $np//NP return <hit/>"

#: Sentences containing the word written by a 'lazy' adjective.
LAZY_SENTENCES = ("for $s in //S return "
                  "if (some $adj in $s//JJ/text() satisfies "
                  "$adj = \"lazy\") then <lazy-sentence/> else ()")

#: All verbs, in document order.
ALL_VERBS = "//VB/text()"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sentences", type=int, default=150)
    args = parser.parse_args()

    config = TreebankConfig(sentences=args.sentences, max_depth=18)
    workdir = Path(tempfile.mkdtemp(prefix="repro-treebank-"))
    with XmlDbms(str(workdir / "treebank.db"),
                 buffer_capacity=4096) as dbms:
        stats = dbms.load("treebank", xml=generate_treebank(config))
        print(f"treebank: {stats.total_nodes} nodes, "
              f"max depth {stats.max_depth}, "
              f"average depth {stats.average_depth:.1f}")

        for name, query in [("nested noun phrases", NESTED_NP),
                            ("sentences with 'lazy'", LAZY_SENTENCES),
                            ("all verbs", ALL_VERBS)]:
            dbms.reset_buffer_stats()
            started = time.perf_counter()
            result = dbms.query("treebank", query, profile="m4")
            elapsed = time.perf_counter() - started
            size = result.count("<") or len(result.split())
            print(f"\n{name}: {elapsed * 1000:.1f} ms, "
                  f"{dbms.buffer_stats.accesses} page accesses, "
                  f"result size {size}")

        print("\nplan for the nested-NP query (the descendant range "
              "probe):")
        print(dbms.explain("treebank", NESTED_NP))


if __name__ == "__main__":
    main()
