#!/usr/bin/env python3
"""Quickstart: the session API on the paper's Figure 2 document.

Load a document, prepare a parameterized query once, execute it many
times with different bindings, and stream results through a cursor.

Run with::

    python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import XmlDbms
from repro.workloads.handmade import FIGURE2_XML
from repro.xmlkit.serializer import serialize


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-quickstart-"))
    with XmlDbms(str(workdir / "library.db")) as dbms:
        # 1. Load the journal document from Figure 2 of the paper.
        stats = dbms.load("fig2", xml=FIGURE2_XML)
        print(f"loaded {stats.total_nodes} nodes; labels: "
              f"{stats.label_counts}")

        # 2. Open a session: per-session defaults plus a plan cache.
        session = dbms.session(profile="m4")

        # 3. The paper's Example 2 query: all names under the journal.
        query = ("<names>{ for $j in /journal return "
                 "for $n in $j//name return $n }</names>")
        print("\nExample 2 query result:")
        print(session.query("fig2", query, indent=2))

        # 4. Prepare once, execute many: an external variable binds a
        #    fresh parameter value per execution while the compiled plan
        #    is reused.
        prepared = session.prepare("fig2", """
            declare variable $who external;
            for $n in //name return
            if (some $t in $n/text() satisfies $t = $who)
            then $n else ()
        """)
        for who in ("Ana", "Bob", "Eve"):
            print(f"authors named {who}:",
                  prepared.query(bindings={"who": who}) or "(none)")

        # 5. Cursors stream: fetch a batch, then close early — the rest
        #    of the result is never materialised.
        with prepared.execute(bindings={"who": "Ana"}) as cursor:
            first = cursor.fetch(1)
            print("first match only:", serialize(first[0]))

        # 6. Look under the hood: the structured explain report carries
        #    the TPM tree, the chosen plans, costs, and cache state.
        report = session.explain("fig2", query)
        print(f"\nplan cache hit: {report.cache_hit}; "
              f"estimated cost: {report.estimated_cost:.1f}")
        print(report)

        # 7. The same query runs identically on every milestone engine,
        #    and the one-shot facade still works.
        for profile in ("m1", "m2", "m3", "m4"):
            result = dbms.query("fig2", query, profile=profile)
            print(f"{profile}: {result}")

        print("\nplan cache:", session.cache_info())


if __name__ == "__main__":
    main()
