#!/usr/bin/env python3
"""Quickstart: load the paper's Figure 2 document and query it.

Run with::

    python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import XmlDbms
from repro.workloads.handmade import FIGURE2_XML


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-quickstart-"))
    with XmlDbms(str(workdir / "library.db")) as dbms:
        # 1. Load the journal document from Figure 2 of the paper.
        stats = dbms.load("fig2", xml=FIGURE2_XML)
        print(f"loaded {stats.total_nodes} nodes; labels: "
              f"{stats.label_counts}")

        # 2. The paper's Example 2 query: all names under the journal.
        query = ("<names>{ for $j in /journal return "
                 "for $n in $j//name return $n }</names>")
        print("\nExample 2 query result:")
        print(dbms.query("fig2", query, indent=2))

        # 3. A condition: which names have the text 'Ana'?
        print("authors named Ana:")
        print(dbms.query("fig2",
                         'for $n in //name return '
                         'if (some $t in $n/text() satisfies $t = "Ana") '
                         'then $n else ()'))

        # 4. Look under the hood: the TPM translation and physical plan
        #    the milestone-4 optimizer chooses.
        print("\nTPM tree and physical plan:")
        print(dbms.explain("fig2", query))

        # 5. The same query runs identically on every milestone engine.
        for profile in ("m1", "m2", "m3", "m4"):
            result = dbms.query("fig2", query, profile=profile)
            print(f"{profile}: {result}")


if __name__ == "__main__":
    main()
