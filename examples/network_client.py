#!/usr/bin/env python3
"""The network front door: serve a database over TCP and talk to it.

Spawns ``python -m repro.serve`` as a subprocess with a synthetic DBLP
document, then walks the whole client surface: prepared statements with
external-variable bindings, streamed multi-page fetches, updates, typed
errors crossing the wire, and the STATS observability payload.

Run with::

    python examples/network_client.py
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")
sys.path.insert(0, SRC)

from repro.errors import CatalogError, XQSyntaxError          # noqa: E402
from repro.net import NetClient                               # noqa: E402


def main() -> None:
    # 1. Start a server on a free port; it prints "LISTENING host port"
    #    once it is ready to accept connections.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in (env.get("PYTHONPATH"),) if p] + [SRC])
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.serve",
         "--generate", "dblp=dblp:60", "--port", "0",
         "--workers", "4", "--log-interval", "0"],
        env=env, stdout=subprocess.PIPE, text=True)
    __, host, port = server.stdout.readline().split()
    print(f"server up on {host}:{port}")

    try:
        with NetClient(host, int(port)) as client:
            print("handshake:", client.server_info)

            # 2. One-shot query; rows arrive as serialized XML strings.
            first = client.execute("dblp", "//article/title",
                                   page_size=8)
            rows = first.fetchall()
            print(f"\n{len(rows)} titles streamed "
                  f"(plan cache hit: {first.plan_cache_hit})")
            print("first:", rows[0])

            # 3. Prepare once server-side, execute many with bindings.
            statement = client.prepare("dblp", """
                declare variable $who external;
                for $a in //author return
                if (some $t in $a/text() satisfies $t = $who)
                then $a else ()
            """)
            print("\nstatement externals:", statement.externals)
            author = rows and client.execute(
                "dblp", "//author").fetch_page()[0]
            name = author[author.index(">") + 1:author.index("</")]
            hits = statement.query(bindings={"who": name})
            print(f"articles by {name!r}: {hits.count('<author>')}")
            statement.close()

            # 4. Streaming with early close: the server stops producing
            #    as soon as the cursor is abandoned (bounded buffer —
            #    nothing was materialized server-side either).
            with client.execute("dblp", "//title",
                                page_size=2) as cursor:
                print("\npeek:", cursor.fetch_page())

            # 5. Updates run through the same worker pool, serialized
            #    per document, durable through the WAL.
            counts = client.update(
                "dblp",
                'insert node <article><title>On Wires</title></article> '
                'as last into /dblp')
            print("\nupdate applied:", counts)

            # 6. Failures come back as the same typed exceptions the
            #    in-process API raises — the connection survives them.
            try:
                client.query("dblp", "for $x in")
            except XQSyntaxError as error:
                print("typed syntax error:", error)
            try:
                client.query("nope", "//title")
            except CatalogError as error:
                print("typed catalog error:", error)

            # 7. Observability: worker-pool and network counters plus
            #    latency histograms, over the wire like everything else.
            stats = client.stats(recent=2)
            pool, net = stats["server"], stats["network"]
            print(f"\npool: {pool['completed']} completed, queue-wait "
                  f"p99 {pool['queue_wait']['p99_ms']} ms, execution "
                  f"p99 {pool['execution']['p99_ms']} ms")
            print(f"net: {net['queries']} queries, {net['rows_sent']} "
                  f"rows, {net['bytes_sent']} bytes sent")
            print("last query record:", net["recent"][-1])
    finally:
        server.send_signal(signal.SIGTERM)
        print("\nserver exited:", server.wait(timeout=30))


if __name__ == "__main__":
    main()
