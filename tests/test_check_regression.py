"""The CI perf-gate script: floors, duplicate metrics, unbaselined
metrics.

Loads ``benchmarks/check_regression.py`` by path (the benchmarks
directory is not a package).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def write_json(path: Path, payload: dict) -> str:
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


@pytest.fixture
def baseline(tmp_path):
    return write_json(tmp_path / "baseline.json", {
        "tolerance": 0.2,
        "metrics": {"suite.speedup": 2.0}})


class TestLoadMetrics:
    def test_merges_files(self, tmp_path):
        a = write_json(tmp_path / "a.json", {"metrics": {"m1": 1.0}})
        b = write_json(tmp_path / "b.json", {"metrics": {"m2": 2.0}})
        assert check_regression.load_metrics([a, b]) == \
            {"m1": 1.0, "m2": 2.0}

    def test_duplicate_metric_raises(self, tmp_path):
        """A later file must not silently overwrite an earlier metric —
        that could mask a regression in whichever file loses."""
        a = write_json(tmp_path / "a.json", {"metrics": {"m": 9.0}})
        b = write_json(tmp_path / "b.json", {"metrics": {"m": 0.1}})
        with pytest.raises(check_regression.DuplicateMetricError):
            check_regression.load_metrics([a, b])


class TestMain:
    def test_passing_run(self, tmp_path, baseline, capsys):
        bench = write_json(tmp_path / "BENCH_x.json",
                           {"metrics": {"suite.speedup": 2.5}})
        assert check_regression.main(
            ["--baseline", baseline, bench]) == 0
        assert "ok   suite.speedup" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, baseline):
        bench = write_json(tmp_path / "BENCH_x.json",
                           {"metrics": {"suite.speedup": 1.0}})
        assert check_regression.main(
            ["--baseline", baseline, bench]) == 1

    def test_missing_metric_fails(self, tmp_path, baseline):
        bench = write_json(tmp_path / "BENCH_x.json", {"metrics": {}})
        assert check_regression.main(
            ["--baseline", baseline, bench]) == 1

    def test_duplicate_metric_fails_run(self, tmp_path, baseline):
        a = write_json(tmp_path / "BENCH_a.json",
                       {"metrics": {"suite.speedup": 2.5}})
        b = write_json(tmp_path / "BENCH_b.json",
                       {"metrics": {"suite.speedup": 2.6}})
        assert check_regression.main(
            ["--baseline", baseline, a, b]) == 1

    def test_unbaselined_metric_warns_but_passes(self, tmp_path, baseline,
                                                 capsys):
        bench = write_json(tmp_path / "BENCH_x.json", {"metrics": {
            "suite.speedup": 2.5, "suite.new_metric": 1.3}})
        assert check_regression.main(
            ["--baseline", baseline, bench]) == 0
        out = capsys.readouterr().out
        assert "WARN suite.new_metric" in out
        assert "no committed floor" in out
