"""B+-tree tests: lookups, splits, range scans, bulk load, persistence."""

import random

import pytest

from repro.errors import BTreeError
from repro.storage.btree import BTree
from repro.storage.buffer import BufferPool
from repro.storage.pager import Pager
from repro.storage.record import encode_key


@pytest.fixture
def pool(tmp_path):
    pager = Pager(str(tmp_path / "btree.db"), create=True, page_size=512)
    pool = BufferPool(pager, capacity=64)
    yield pool
    pool.flush_and_clear()
    pager.close()


@pytest.fixture
def tree(pool):
    return BTree.create(pool)


def k(value):
    return encode_key((value,))


class TestPointOperations:
    def test_empty_tree_search(self, tree):
        assert tree.search(k(1)) is None
        assert len(tree) == 0

    def test_insert_then_search(self, tree):
        tree.insert(k(5), b"five")
        assert tree.search(k(5)) == b"five"
        assert len(tree) == 1

    def test_contains(self, tree):
        tree.insert(k(5), b"v")
        assert k(5) in tree
        assert k(6) not in tree

    def test_duplicate_insert_rejected(self, tree):
        tree.insert(k(1), b"a")
        with pytest.raises(BTreeError):
            tree.insert(k(1), b"b")

    def test_replace(self, tree):
        tree.insert(k(1), b"a")
        tree.insert(k(1), b"b", replace=True)
        assert tree.search(k(1)) == b"b"
        assert len(tree) == 1

    def test_oversized_entry_rejected(self, tree):
        with pytest.raises(BTreeError):
            tree.insert(k(1), b"x" * 4096)


class TestSplitsAndOrder:
    def test_many_random_inserts(self, tree):
        keys = list(range(1500))
        random.Random(42).shuffle(keys)
        for key in keys:
            tree.insert(k(key), str(key).encode())
        assert tree.height > 1
        for probe in (0, 1, 499, 750, 1499):
            assert tree.search(k(probe)) == str(probe).encode()

    def test_full_scan_is_sorted(self, tree):
        keys = list(range(500))
        random.Random(1).shuffle(keys)
        for key in keys:
            tree.insert(k(key), b"")
        scanned = [key for key, __ in tree.items()]
        assert scanned == sorted(scanned)
        assert len(scanned) == 500

    def test_string_keys(self, tree):
        words = ["journal", "author", "title", "year", "volume"]
        for word in words:
            tree.insert(encode_key((word,)), word.encode())
        scanned = [value for __, value in tree.items()]
        assert scanned == [word.encode() for word in sorted(words)]

    def test_leaf_page_count_grows(self, tree):
        for key in range(800):
            tree.insert(k(key), b"v" * 20)
        assert tree.leaf_page_count() > 1


class TestRangeScan:
    @pytest.fixture(autouse=True)
    def populate(self, tree):
        for key in range(0, 100, 2):  # even keys 0..98
            tree.insert(k(key), str(key).encode())
        self.tree = tree

    def decode(self, pairs):
        return [int(value) for __, value in pairs]

    def test_inclusive_range(self):
        assert self.decode(self.tree.range_scan(k(10), k(20))) == \
            [10, 12, 14, 16, 18, 20]

    def test_exclusive_bounds(self):
        got = self.decode(self.tree.range_scan(k(10), k(20),
                                               include_low=False,
                                               include_high=False))
        assert got == [12, 14, 16, 18]

    def test_bounds_between_keys(self):
        assert self.decode(self.tree.range_scan(k(11), k(15))) == [12, 14]

    def test_open_ended_low(self):
        assert self.decode(self.tree.range_scan(None, k(6))) == [0, 2, 4, 6]

    def test_open_ended_high(self):
        assert self.decode(self.tree.range_scan(k(94), None)) == [94, 96, 98]

    def test_empty_range(self):
        assert self.decode(self.tree.range_scan(k(11), k(11))) == []

    def test_prefix_scan(self, pool):
        tree = BTree.create(pool)
        for label, in_ in [("aa", 1), ("aa", 5), ("ab", 2), ("b", 3)]:
            tree.insert(encode_key((label, in_)), b"")
        got = list(tree.prefix_scan(encode_key(("aa",))))
        assert len(got) == 2


class TestBulkLoad:
    def test_bulk_load_matches_inserts(self, pool):
        items = [(k(key), str(key).encode()) for key in range(2000)]
        bulk = BTree.create(pool)
        bulk.bulk_load(iter(items))
        assert len(bulk) == 2000
        assert bulk.search(k(1234)) == b"1234"
        assert [key for key, __ in bulk.items()] == [key for key, __ in
                                                     items]

    def test_bulk_load_empty(self, tree):
        tree.bulk_load(iter([]))
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_bulk_load_requires_sorted_input(self, tree):
        with pytest.raises(BTreeError):
            tree.bulk_load(iter([(k(2), b""), (k(1), b"")]))

    def test_bulk_load_rejects_duplicates(self, tree):
        with pytest.raises(BTreeError):
            tree.bulk_load(iter([(k(1), b""), (k(1), b"")]))

    def test_bulk_load_on_nonempty_rejected(self, tree):
        tree.insert(k(1), b"")
        with pytest.raises(BTreeError):
            tree.bulk_load(iter([(k(2), b"")]))

    def test_insert_after_bulk_load(self, tree):
        tree.bulk_load((k(key), b"v") for key in range(0, 100, 2))
        tree.insert(k(51), b"new")
        scanned = [key for key, __ in tree.items()]
        assert scanned == sorted(scanned)
        assert tree.search(k(51)) == b"new"


class TestPersistence:
    def test_reopen_by_meta_page(self, tmp_path):
        path = str(tmp_path / "persist.db")
        pager = Pager(path, create=True, page_size=512)
        pool = BufferPool(pager, capacity=16)
        tree = BTree.create(pool)
        for key in range(300):
            tree.insert(k(key), str(key).encode())
        meta = tree.meta_page_id
        pool.flush_and_clear()
        pager.close()

        pager = Pager(path)
        pool = BufferPool(pager, capacity=16)
        reopened = BTree(pool, meta)
        assert len(reopened) == 300
        assert reopened.search(k(250)) == b"250"
        pager.close()

    def test_small_buffer_pool_still_correct(self, tmp_path):
        """The tree works with only a handful of frames (heavy
        eviction)."""
        pager = Pager(str(tmp_path / "tiny.db"), create=True,
                      page_size=512)
        pool = BufferPool(pager, capacity=4)
        tree = BTree.create(pool)
        for key in range(400):
            tree.insert(k(key), str(key).encode())
        assert [int(value) for __, value in tree.items()] == \
            list(range(400))
        assert pool.stats.evictions > 0
        pager.close()
