"""Serialization round-trips of special characters, against the DOM
oracle and through the update path.

The contract: for any stored text value, ``serialize → reparse →
reload`` is byte-identical — including characters XML parsers treat
specially.  A conforming parser normalizes literal ``\\r``/``\\r\\n``
to ``\\n`` in content and folds literal tabs/newlines in attribute
values to spaces, so the serializer must emit those characters as
references (``&#13;`` etc.); the stdlib :mod:`xml.etree` parser is the
conformance oracle, and the milestone-1 DOM engine is the semantic
oracle for the update path.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.xmlkit.dom import Element, Text
from repro.xmlkit.events import Characters, StartElement
from repro.xmlkit.serializer import escape_text, serialize
from repro.xmlkit.tokenizer import iterparse

#: Values that have historically broken XML round-trips somewhere.
SPECIAL_VALUES = [
    "<a&b>",
    "a\rb",
    "a\r\nb",
    "]]>",
    "&amp;",          # a literal, pre-escaped-looking string
    'say "hi"',
    "it's",
    "tab\there",
    "line\nbreak",
    "mixed\r\n\t <&> '\"",
    "é — 中文 🚀",
]


def our_text(xml: str) -> str:
    return "".join(event.text for event in iterparse(xml)
                   if isinstance(event, Characters))


def our_attr(xml: str, name: str) -> str:
    start = next(event for event in iterparse(xml)
                 if isinstance(event, StartElement))
    return dict(start.attributes)[name]


class TestTextContent:
    @pytest.mark.parametrize("value", SPECIAL_VALUES)
    def test_round_trip_through_own_parser(self, value):
        xml = f"<r>{escape_text(value)}</r>"
        assert our_text(xml) == value

    @pytest.mark.parametrize("value", SPECIAL_VALUES)
    def test_round_trip_through_stdlib_oracle(self, value):
        """The serialized form must survive a *conforming* parser too —
        a bare \\r would be normalized away (the pre-fix bug)."""
        root = Element("r")
        root.append(Text(value))
        xml = serialize(root)
        assert ET.fromstring(xml).text == value

    def test_line_ending_normalization_matches_oracle(self):
        raw = "<r>l1\r\nl2\rl3</r>"
        assert our_text(raw) == ET.fromstring(raw).text == "l1\nl2\nl3"


class TestAttributeValues:
    @pytest.mark.parametrize("value", SPECIAL_VALUES)
    def test_round_trip_matches_stdlib_oracle(self, value):
        xml = serialize(Element("r", attributes=(("k", value),)))
        assert our_attr(xml, "k") == value
        assert ET.fromstring(xml).get("k") == value

    def test_literal_whitespace_normalizes_like_oracle(self):
        raw = "<r k='a\tb\nc\r\nd'/>"
        assert our_attr(raw, "k") == ET.fromstring(raw).get("k") \
            == "a b c d"


class TestUpdatePathRoundTrip:
    """``replace value of node … with <special>`` must survive
    serialize → reparse → reload byte-identically, and agree with the
    DOM oracle (m1) at every stage."""

    @pytest.mark.parametrize("value", SPECIAL_VALUES)
    def test_replace_serialize_reload_identity(self, dbms, value):
        dbms.load("d", xml="<r><x>old</x></r>")
        dbms.update("d", "declare variable $v external; "
                         "replace value of node /r/x/text() with $v",
                    bindings={"v": value})
        assert dbms.execute("d", "/r/x/text()")[0].text == value
        serialized = dbms.query("d", "/r")
        # The DOM oracle reads back the same value from the same pages.
        assert dbms.query("d", "/r", profile="m1") == serialized
        # Reload the serialized form: bytes and stored value identical.
        dbms.load("d2", xml=serialized)
        assert dbms.query("d2", "/r") == serialized
        assert dbms.execute("d2", "/r/x/text()")[0].text == value

    def test_inserted_text_round_trips(self, dbms):
        dbms.load("d", xml="<r/>")
        dbms.update("d", "declare variable $v external; "
                         "insert node $v as last into /r",
                    bindings={"v": "cr\rlf\nquote\""})
        serialized = dbms.query("d", "/r")
        dbms.load("d2", xml=serialized)
        assert dbms.query("d2", "/r") == serialized
