"""Record codecs, key ordering, heap files, overflow store, database
facade."""

import pytest

from repro.errors import CatalogError, StorageError
from repro.storage.db import Database
from repro.storage.heap import HeapFile, RecordId
from repro.storage.overflow import OverflowStore
from repro.storage.record import (
    KeyCodec,
    RecordCodec,
    decode_key,
    encode_key,
)


class TestRecordCodec:
    def test_round_trip_xasr_shape(self):
        codec = RecordCodec(["u32", "u32", "u32", "u8", "u8", "str"])
        record = (2, 17, 1, 1, 0, "journal")
        assert codec.decode(codec.encode(record)) == record

    def test_empty_string(self):
        codec = RecordCodec(["str"])
        assert codec.decode(codec.encode(("",))) == ("",)

    def test_unicode_string(self):
        codec = RecordCodec(["str"])
        assert codec.decode(codec.encode(("héllo→",))) == ("héllo→",)

    def test_arity_mismatch(self):
        codec = RecordCodec(["u32"])
        with pytest.raises(StorageError):
            codec.encode((1, 2))

    def test_unknown_type_rejected(self):
        with pytest.raises(StorageError):
            RecordCodec(["float"])

    def test_trailing_bytes_rejected(self):
        codec = RecordCodec(["u32"])
        with pytest.raises(StorageError):
            codec.decode(codec.encode((1,)) + b"xx")


class TestKeyOrdering:
    def test_int_order_preserved(self):
        keys = [encode_key((value,)) for value in (0, 1, 2, 100, 2**31)]
        assert keys == sorted(keys)

    def test_string_order_preserved(self):
        words = ["", "a", "aa", "ab", "b", "ba"]
        keys = [encode_key((word,)) for word in words]
        assert keys == sorted(keys)

    def test_composite_order_matches_tuple_order(self):
        tuples = [(1, "b", 5), (1, "b", 6), (1, "c", 0), (2, "a", 0)]
        keys = [encode_key(t, ("u32", "str", "u32")) for t in tuples]
        assert keys == sorted(keys)
        assert [decode_key(k, ("u32", "str", "u32")) for k in keys] == \
            tuples

    def test_string_prefix_sorts_before_extension(self):
        assert encode_key(("ab",)) < encode_key(("abc",))

    def test_embedded_nul_round_trips(self):
        value = "a\x00b"
        key = encode_key((value,))
        assert decode_key(key, ("str",)) == (value,)

    def test_int_out_of_range_rejected(self):
        with pytest.raises(StorageError):
            encode_key((2**33,))

    def test_key_codec_round_trip(self):
        codec = KeyCodec(["u32", "str"])
        assert codec.decode(codec.encode((7, "x"))) == (7, "x")


class TestHeapFile:
    def test_insert_and_read(self, database):
        heap = HeapFile.create(database.buffer_pool)
        rid = heap.insert(b"hello")
        assert heap.read(rid) == b"hello"

    def test_scan_in_insertion_order(self, database):
        heap = HeapFile.create(database.buffer_pool)
        payloads = [f"record-{index}".encode() for index in range(300)]
        for payload in payloads:
            heap.insert(payload)
        assert [raw for __, raw in heap.scan()] == payloads

    def test_spans_multiple_pages(self, database):
        heap = HeapFile.create(database.buffer_pool)
        for _ in range(300):
            heap.insert(b"x" * 100)
        assert len(heap.page_ids()) > 1

    def test_delete_removes_from_scan(self, database):
        heap = HeapFile.create(database.buffer_pool)
        keep = heap.insert(b"keep")
        drop = heap.insert(b"drop")
        heap.delete(drop)
        assert [raw for __, raw in heap.scan()] == [b"keep"]
        assert heap.read(keep) == b"keep"

    def test_read_deleted_raises(self, database):
        heap = HeapFile.create(database.buffer_pool)
        rid = heap.insert(b"x")
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.read(rid)

    def test_bad_slot_raises(self, database):
        heap = HeapFile.create(database.buffer_pool)
        heap.insert(b"x")
        with pytest.raises(StorageError):
            heap.read(RecordId(heap.head_page_id, 99))

    def test_oversized_record_rejected(self, database):
        heap = HeapFile.create(database.buffer_pool)
        with pytest.raises(StorageError):
            heap.insert(b"x" * database.pager.page_size)

    def test_drop_frees_pages(self, database):
        heap = HeapFile.create(database.buffer_pool)
        for __ in range(200):
            heap.insert(b"y" * 100)
        pages = heap.page_ids()
        heap.drop()
        assert database.pager.free_head in pages


class TestOverflowStore:
    def test_round_trip_small(self, database):
        store = database.overflow
        head, length = store.store(b"abc")
        assert store.load(head, length) == b"abc"

    def test_round_trip_multi_page(self, database):
        store = database.overflow
        data = bytes(range(256)) * 100   # ~25 KiB, several pages
        head, length = store.store(data)
        assert store.load(head, length) == data

    def test_empty_value_rejected(self, database):
        with pytest.raises(StorageError):
            database.overflow.store(b"")

    def test_free_releases_chain(self, database):
        store = database.overflow
        head, __ = store.store(b"z" * 10000)
        store.free(head)
        assert database.pager.free_head != 0


class TestDatabaseFacade:
    def test_create_and_reopen_btree(self, tmp_path):
        path = str(tmp_path / "db.db")
        with Database.create(path) as db:
            tree = db.create_btree("t")
            tree.insert(encode_key((1,)), b"one")
        with Database.open(path) as db:
            assert db.open_btree("t").search(encode_key((1,))) == b"one"

    def test_duplicate_name_rejected(self, database):
        database.create_btree("t")
        with pytest.raises(CatalogError):
            database.create_btree("t")
        with pytest.raises(CatalogError):
            database.create_heap("t")

    def test_unknown_name_rejected(self, database):
        with pytest.raises(CatalogError):
            database.open_btree("nope")
        with pytest.raises(CatalogError):
            database.open_heap("nope")

    def test_wrong_kind_rejected(self, database):
        database.create_heap("h")
        with pytest.raises(CatalogError):
            database.open_btree("h")

    def test_list_names_sorted_and_live(self, database):
        database.create_btree("b")
        database.create_heap("a")
        database.put_meta("m", {"x": 1})
        assert database.list_names() == ["a", "b", "m"]

    def test_drop_removes_name(self, database):
        database.create_heap("h")
        database.drop("h")
        assert not database.exists("h")
        with pytest.raises(CatalogError):
            database.drop("h")

    def test_meta_upsert(self, database):
        database.put_meta("m", {"v": 1})
        database.put_meta("m", {"v": 2})
        assert database.get_meta("m") == {"v": 2}

    def test_get_meta_missing_returns_none(self, database):
        assert database.get_meta("missing") is None
